//! Cross-crate integration: the probe client, connection core, HPACK and
//! framing layers working together over the simulated network.

use h2ready::netsim::LinkSpec;
use h2ready::scope::{ProbeConn, Target};
use h2ready::server::{ServerProfile, SiteSpec};
use h2ready::wire::{Frame, SettingId, Settings};

fn target(profile: ServerProfile) -> Target {
    Target::testbed(profile, SiteSpec::benchmark())
}

#[test]
fn large_transfer_is_byte_exact_through_flow_control() {
    // 256 KiB through a 65,535-octet connection window: many
    // WINDOW_UPDATE round trips, every byte accounted for.
    let mut conn = ProbeConn::establish(&target(ServerProfile::rfc7540()), Settings::new(), 3);
    conn.exchange();
    let (frames, _) = conn.fetch(1, "/big/0");
    let mut received = Vec::new();
    for tf in &frames {
        if let Frame::Data(d) = &tf.frame {
            received.extend_from_slice(&d.data);
        }
    }
    let expected = SiteSpec::benchmark()
        .resource("/big/0")
        .unwrap()
        .body
        .clone();
    assert_eq!(received.len(), expected.len());
    assert_eq!(
        received,
        expected.to_vec(),
        "payload integrity across chunking"
    );
}

#[test]
fn transfer_survives_a_lossy_jittery_link() {
    let mut t = target(ServerProfile::apache());
    t.link = LinkSpec::mobile(40, 0.05);
    let mut conn = ProbeConn::establish(&t, Settings::new(), 11);
    conn.exchange();
    let (frames, at) = conn.fetch(1, "/big/2");
    let received: usize = frames
        .iter()
        .filter_map(|tf| match &tf.frame {
            Frame::Data(d) => Some(d.data.len()),
            _ => None,
        })
        .sum();
    assert_eq!(
        received,
        256 * 1024,
        "loss shows up as delay, not corruption"
    );
    assert!(at.as_nanos() > 0);
}

#[test]
fn hpack_contexts_stay_synchronized_across_many_requests() {
    let mut conn = ProbeConn::establish(&target(ServerProfile::gse()), Settings::new(), 5);
    conn.exchange();
    for k in 0..20u32 {
        let stream = 1 + 2 * k;
        let (frames, _) = conn.fetch(stream, "/");
        let headers = frames
            .iter()
            .find_map(|tf| {
                if matches!(tf.frame, Frame::Headers(_)) {
                    tf.headers.clone()
                } else {
                    None
                }
            })
            .expect("response headers");
        assert!(
            headers
                .iter()
                .any(|h| h.name == ":status" && h.value == "200"),
            "req {k}"
        );
        assert!(
            headers
                .iter()
                .any(|h| h.name == "server" && h.value == "GSE"),
            "req {k}"
        );
    }
}

#[test]
fn pushed_responses_arrive_on_even_streams_with_bodies() {
    let site = SiteSpec::page_with_assets(4, 3_000);
    let t = Target::testbed(ServerProfile::nghttpd(), site);
    let mut conn = ProbeConn::establish(&t, Settings::new().with(SettingId::EnablePush, 1), 9);
    conn.exchange();
    let (frames, _) = conn.fetch(1, "/");
    let mut promised = std::collections::HashSet::new();
    let mut pushed_bytes: std::collections::HashMap<u32, usize> = Default::default();
    for tf in &frames {
        match &tf.frame {
            Frame::PushPromise(p) => {
                assert!(p.promised_stream_id.is_server_initiated());
                promised.insert(p.promised_stream_id.value());
            }
            Frame::Data(d) if d.stream_id.is_server_initiated() => {
                *pushed_bytes.entry(d.stream_id.value()).or_default() += d.data.len();
            }
            _ => {}
        }
    }
    assert_eq!(promised.len(), 4);
    for stream in &promised {
        assert_eq!(pushed_bytes.get(stream), Some(&3_000), "stream {stream}");
    }
}

#[test]
fn giant_response_headers_split_into_continuations_and_reassemble() {
    // Give the server ~40 KiB of response headers: the block must split
    // into HEADERS + CONTINUATION frames (client max frame size 16,384)
    // and the probe's assembler must put it back together.
    let mut profile = ServerProfile::rfc7540();
    for i in 0..1_500 {
        profile
            .behavior
            .extra_response_headers
            .push((format!("x-large-{i}"), format!("value-{i:020}")));
    }
    let t = Target::testbed(profile, SiteSpec::benchmark());
    let mut conn = ProbeConn::establish(&t, Settings::new(), 21);
    conn.exchange();
    let (frames, _) = conn.fetch(1, "/");
    let continuations = frames
        .iter()
        .filter(|tf| matches!(tf.frame, Frame::Continuation(_)))
        .count();
    assert!(
        continuations >= 1,
        "block must span frames: {continuations} continuations"
    );
    // The decoded list arrives on the frame that completes the block.
    let decoded = frames
        .iter()
        .find_map(|tf| tf.headers.clone())
        .expect("assembled block decodes");
    assert!(decoded.iter().any(|h| h.name == "x-large-1499"));
    assert!(decoded.iter().any(|h| h.name == ":status"));
}

#[test]
fn padded_client_data_is_flow_accounted_by_the_server() {
    // Upload a padded DATA frame; the server must charge padding against
    // the flow-control windows (RFC 7540 §6.9) and keep functioning.
    use h2ready::wire::{DataFrame, HeadersFrame};
    let t = target(ServerProfile::rfc7540());
    let mut conn = ProbeConn::establish(&t, Settings::new(), 23);
    conn.exchange();
    // POST-ish request: HEADERS without END_STREAM, then padded DATA.
    conn.send(Frame::Headers(HeadersFrame {
        stream_id: h2ready::wire::StreamId::new(1),
        fragment: {
            let mut enc = h2ready::hpack::Encoder::new();
            enc.encode_block(&[
                h2ready::hpack::Header::new(":method", "POST"),
                h2ready::hpack::Header::new(":scheme", "https"),
                h2ready::hpack::Header::new(":path", "/"),
                h2ready::hpack::Header::new(":authority", "testbed.example"),
            ])
            .into()
        },
        end_stream: false,
        end_headers: true,
        priority: None,
        pad_len: None,
    }));
    conn.exchange();
    conn.send(Frame::Data(DataFrame {
        stream_id: h2ready::wire::StreamId::new(1),
        data: bytes_crate::Bytes::from(vec![7u8; 100]),
        end_stream: true,
        pad_len: Some(55),
    }));
    let frames = conn.exchange();
    // The server replenishes its receive windows for the full
    // flow-controlled size: 100 + 55 + 1 = 156 octets.
    let updates: Vec<u32> = frames
        .iter()
        .filter_map(|tf| match &tf.frame {
            Frame::WindowUpdate(wu) => Some(wu.increment),
            _ => None,
        })
        .collect();
    assert!(
        updates.contains(&156),
        "window replenishment covers padding: {updates:?}"
    );
}

#[test]
fn goaway_after_fatal_error_stops_the_server() {
    let mut conn = ProbeConn::establish(&target(ServerProfile::h2o()), Settings::new(), 13);
    conn.exchange();
    // A HEADERS frame with a garbage HPACK block is a compression error.
    conn.send(Frame::Headers(h2ready::wire::HeadersFrame {
        stream_id: h2ready::wire::StreamId::new(1),
        fragment: bytes_from(&[0xff, 0xff, 0xff, 0xff, 0x00]),
        end_stream: true,
        end_headers: true,
        priority: None,
        pad_len: None,
    }));
    let frames = conn.exchange();
    assert!(
        frames.iter().any(|tf| matches!(&tf.frame, Frame::Goaway(g)
            if g.code == h2ready::wire::ErrorCode::CompressionError)),
        "{frames:?}"
    );
    // The connection is dead: further requests go unanswered.
    conn.get(3, "/", None);
    assert!(conn.exchange().is_empty());
}

fn bytes_from(bytes: &[u8]) -> bytes_crate::Bytes {
    bytes_crate::Bytes::copy_from_slice(bytes)
}

use bytes as bytes_crate;
