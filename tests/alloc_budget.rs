//! Allocation budget for the per-site probe path.
//!
//! The campaign scheduler's throughput lives and dies on how much heap
//! churn one site survey causes: at scan scale every stray `Vec` clone
//! in the frame path multiplies by millions of sites. This test pins the
//! allocation count of a full single-site survey under a fixed budget so
//! a regression (a dropped scratch buffer, a deep profile clone on the
//! connect path) fails loudly instead of silently halving throughput.
//!
//! The budget is calibrated with headroom above the current count
//! (~2.6k allocations per survey) — it guards against coarse
//! regressions, not single allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use h2scope::{H2Scope, Target};
use h2server::{ServerProfile, SiteSpec};

/// Counts every allocation and reallocation made through the global
/// allocator. Deallocations are free passes: reuse is the whole point.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn single_site_survey_stays_under_allocation_budget() {
    let scope = H2Scope::new();
    let target = Target::testbed(ServerProfile::nginx(), SiteSpec::benchmark());
    // Warm up lazy statics (static HPACK tables, etc.) and the first
    // report so only steady-state per-survey cost is measured.
    let warmup = scope.survey(&target);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = scope.survey(&target);
    let spent = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(report, warmup, "warmup and measured surveys agree");
    eprintln!("survey allocations: {spent}");
    const BUDGET: u64 = 6_000;
    assert!(
        spent <= BUDGET,
        "one site survey allocated {spent} times (budget {BUDGET}); \
         the zero-copy probe path has regressed"
    );
}
