//! Integration test: the headline result. Running H2Scope against all six
//! simulated servers must regenerate the paper's Table III cell-for-cell,
//! via the public facade API only.

use h2ready::scope::probes::flow_control::SmallWindowOutcome;
use h2ready::scope::probes::Reaction;
use h2ready::scope::testbed::Testbed;
use h2ready::scope::H2Scope;
use h2ready::server::{ServerProfile, SiteSpec};

struct Expected {
    name: &'static str,
    npn: bool,
    fc_on_headers: bool,
    zero_wu_stream: Reaction,
    zero_wu_conn: Reaction,
    push: bool,
    priority_pass: bool,
    self_dep: Reaction,
    hpack_partial: bool,
}

const EXPECTED: &[Expected] = &[
    Expected {
        name: "Nginx",
        npn: true,
        fc_on_headers: false,
        zero_wu_stream: Reaction::Ignored,
        zero_wu_conn: Reaction::Ignored,
        push: false,
        priority_pass: false,
        self_dep: Reaction::RstStream,
        hpack_partial: true,
    },
    Expected {
        name: "LiteSpeed",
        npn: true,
        fc_on_headers: true,
        zero_wu_stream: Reaction::RstStream,
        zero_wu_conn: Reaction::Goaway,
        push: false,
        priority_pass: false,
        self_dep: Reaction::Ignored,
        hpack_partial: false,
    },
    Expected {
        name: "H2O",
        npn: true,
        fc_on_headers: false,
        zero_wu_stream: Reaction::RstStream,
        zero_wu_conn: Reaction::Goaway,
        push: true,
        priority_pass: true,
        self_dep: Reaction::Goaway,
        hpack_partial: false,
    },
    Expected {
        name: "nghttpd",
        npn: true,
        fc_on_headers: false,
        zero_wu_stream: Reaction::Goaway,
        zero_wu_conn: Reaction::Goaway,
        push: true,
        priority_pass: true,
        self_dep: Reaction::Goaway,
        hpack_partial: false,
    },
    Expected {
        name: "Tengine",
        npn: true,
        fc_on_headers: false,
        zero_wu_stream: Reaction::Ignored,
        zero_wu_conn: Reaction::Ignored,
        push: false,
        priority_pass: false,
        self_dep: Reaction::RstStream,
        hpack_partial: true,
    },
    Expected {
        name: "Apache",
        npn: false,
        fc_on_headers: false,
        zero_wu_stream: Reaction::Goaway,
        zero_wu_conn: Reaction::Goaway,
        push: true,
        priority_pass: true,
        self_dep: Reaction::Goaway,
        hpack_partial: false,
    },
];

#[test]
fn table_iii_regenerates_cell_for_cell() {
    let scope = H2Scope::new();
    for (profile, expected) in ServerProfile::testbed().into_iter().zip(EXPECTED) {
        assert_eq!(profile.name, expected.name, "column order");
        let push_site = SiteSpec::page_with_assets(2, 1_000);
        let report = scope.characterize(&Testbed::new(profile.clone(), SiteSpec::benchmark()));
        let push = h2ready::scope::probes::push::probe(
            &h2ready::scope::Target::testbed(profile, push_site),
            &["/"],
        );
        let name = expected.name;

        assert!(report.negotiation.alpn_h2, "{name}: ALPN");
        assert_eq!(report.negotiation.npn_h2, expected.npn, "{name}: NPN");
        assert!(report.multiplexing.parallel, "{name}: multiplexing");
        assert_eq!(
            !report.flow_control.headers_at_zero_window, expected.fc_on_headers,
            "{name}: flow control on HEADERS"
        );
        assert_eq!(
            report.flow_control.zero_update_stream, expected.zero_wu_stream,
            "{name}: zero WU stream"
        );
        assert_eq!(
            report.flow_control.zero_update_conn, expected.zero_wu_conn,
            "{name}: zero WU conn"
        );
        assert_eq!(
            report.flow_control.large_update_stream,
            Reaction::RstStream,
            "{name}: large WU stream"
        );
        assert_eq!(
            report.flow_control.large_update_conn,
            Reaction::Goaway,
            "{name}: large WU conn"
        );
        assert_eq!(push.supported, expected.push, "{name}: push");
        assert_eq!(
            report.priority.passes(),
            expected.priority_pass,
            "{name}: Algorithm 1"
        );
        assert_eq!(
            report.priority.self_dependency, expected.self_dep,
            "{name}: self-dep"
        );
        assert_eq!(
            (report.hpack.ratio - 1.0).abs() < 1e-9,
            expected.hpack_partial,
            "{name}: HPACK ratio {}",
            report.hpack.ratio
        );
        assert!(report.ping.supported, "{name}: PING");
        // Flow control on DATA: either the 1-byte frame or (LiteSpeed)
        // total silence — never an oversized frame.
        assert!(
            !matches!(
                report.flow_control.small_window,
                SmallWindowOutcome::Oversized
            ),
            "{name}: DATA flow control"
        );
    }
}

#[test]
fn rfc_reference_is_fully_conformant() {
    let scope = H2Scope::new();
    let report = scope.characterize(&Testbed::new(
        ServerProfile::rfc7540(),
        SiteSpec::benchmark(),
    ));
    assert!(report.negotiation.alpn_h2 && report.negotiation.npn_h2);
    assert!(report.multiplexing.parallel);
    assert_eq!(
        report.flow_control.small_window,
        SmallWindowOutcome::OneByteData
    );
    assert!(report.flow_control.headers_at_zero_window);
    assert_eq!(report.flow_control.zero_update_stream, Reaction::RstStream);
    assert_eq!(report.flow_control.zero_update_conn, Reaction::Goaway);
    assert_eq!(report.flow_control.large_update_stream, Reaction::RstStream);
    assert_eq!(report.flow_control.large_update_conn, Reaction::Goaway);
    assert!(report.priority.by_both);
    assert_eq!(report.priority.self_dependency, Reaction::RstStream);
    assert!(report.hpack.ratio < 0.5);
    assert!(report.ping.supported);
}
