//! Integration test: a miniature scan campaign end-to-end — population
//! generation, surveys, and the aggregate shapes the paper reports.

use h2ready::scope::probes::flow_control::SmallWindowOutcome;
use h2ready::scope::probes::Reaction;
use h2ready::scope::H2Scope;
use h2ready::webpop::{ExperimentSpec, Family, Population};

const SCALE: f64 = 0.004; // ~209 h2 sites of experiment 1

#[test]
fn scan_campaign_reproduces_the_papers_shapes() {
    let population = Population::new(ExperimentSpec::first(), SCALE);
    let scope = H2Scope::new();
    let reports: Vec<(Family, h2ready::scope::SiteReport)> = population
        .iter_h2_sites()
        .map(|site| (site.family, scope.survey(&site.target())))
        .collect();

    let total = reports.len() as f64;
    assert!(total > 150.0, "population too small to be meaningful");

    // Funnel: headers-returning sites are ~85% of h2 sites (44,390/52,300).
    let headers = reports.iter().filter(|(_, r)| r.headers_received).count() as f64;
    let ratio = headers / total;
    assert!(
        (0.78..=0.92).contains(&ratio),
        "headers funnel ratio {ratio}"
    );

    // §V-D1: the large majority respects the 1-octet window.
    let one_byte = reports
        .iter()
        .filter(|(_, r)| {
            r.flow_control
                .as_ref()
                .is_some_and(|fc| fc.small_window == SmallWindowOutcome::OneByteData)
        })
        .count() as f64;
    assert!(
        (0.75..=0.95).contains(&(one_byte / headers)),
        "paper: 37,525 of 44,390 ≈ 0.85, got {}",
        one_byte / headers
    );

    // §V-D3: RST vs ignore split is roughly half/half, RST slightly ahead.
    let rst = reports
        .iter()
        .filter(|(_, r)| {
            r.flow_control
                .as_ref()
                .is_some_and(|fc| fc.zero_update_stream == Reaction::RstStream)
        })
        .count() as f64;
    assert!(
        (0.4..=0.68).contains(&(rst / headers)),
        "zero-WU RST share {}",
        rst / headers
    );

    // §V-E: priority support is rare (~2.6% by the last-frame rule).
    let by_last = reports
        .iter()
        .filter(|(_, r)| r.priority.as_ref().is_some_and(|p| p.by_last_frame))
        .count() as f64;
    assert!(
        (0.005..=0.06).contains(&(by_last / headers)),
        "priority pass share {}",
        by_last / headers
    );

    // Figures 4/5 family shapes: every surveyed GSE site compresses well;
    // nginx sites overwhelmingly sit at ratio 1.
    let gse: Vec<f64> = reports
        .iter()
        .filter(|(f, r)| *f == Family::Gse && r.headers_received)
        .filter_map(|(_, r)| r.hpack.as_ref().map(|h| h.ratio))
        .collect();
    assert!(!gse.is_empty());
    assert!(gse.iter().all(|&r| r < 0.3), "GSE ratios all below 0.3");

    let nginx: Vec<f64> = reports
        .iter()
        .filter(|(f, r)| *f == Family::Nginx && r.headers_received)
        .filter_map(|(_, r)| r.hpack.as_ref().map(|h| h.ratio))
        .collect();
    let at_one = nginx.iter().filter(|&&r| (r - 1.0).abs() < 1e-9).count() as f64;
    assert!(
        at_one / nginx.len() as f64 > 0.8,
        "paper: 93.5% of Nginx at ratio 1, got {}",
        at_one / nginx.len() as f64
    );

    // Server names drive Table IV: families identify themselves.
    let litespeed_named = reports
        .iter()
        .filter(|(f, r)| {
            *f == Family::Litespeed
                && r.server_name
                    .as_deref()
                    .is_some_and(|n| n.starts_with("LiteSpeed"))
        })
        .count();
    let litespeed_total = reports
        .iter()
        .filter(|(f, r)| *f == Family::Litespeed && r.headers_received)
        .count();
    assert_eq!(litespeed_named, litespeed_total);
}

#[test]
fn both_experiments_generate_and_differ() {
    let first = Population::new(ExperimentSpec::first(), 0.002);
    let second = Population::new(ExperimentSpec::second(), 0.002);
    // Experiment 2 has more h2 sites (adoption grew between campaigns).
    assert!(second.h2_count() > first.h2_count());
    // Tengine/Aserver exists only in experiment 2 (at sufficient scale).
    let has_aserver = |pop: &Population| {
        pop.iter_headers_sites()
            .any(|s| s.family == Family::TengineAserver)
    };
    assert!(!has_aserver(&first));
    assert!(has_aserver(&Population::new(
        ExperimentSpec::second(),
        0.01
    )));
}
