//! Buffer-reuse equivalence for the zero-copy encode paths.
//!
//! The hot send paths encode into reused scratch buffers
//! ([`h2wire::encode_all_into`], `h2hpack::Encoder::encode_block_into`)
//! instead of allocating per batch. These properties pin the contract
//! that makes the reuse safe: appending to a dirty, previously-used
//! buffer produces byte-for-byte the same suffix a fresh allocation
//! would, regardless of what the buffer held before.

use bytes::Bytes;
use h2hpack::{Encoder, Header};
use h2wire::frame::{DataFrame, GoawayFrame, PingFrame, RstStreamFrame, WindowUpdateFrame};
use h2wire::{encode_all, encode_all_into, ErrorCode, Frame, StreamId};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    let stream = (1u32..=0xffff).prop_map(StreamId::new);
    prop_oneof![
        any::<[u8; 8]>().prop_map(|p| Frame::Ping(PingFrame::request(p))),
        (stream.clone(), prop::collection::vec(any::<u8>(), 0..200)).prop_map(
            |(stream_id, data)| {
                Frame::Data(DataFrame {
                    stream_id,
                    data: Bytes::from(data),
                    end_stream: false,
                    pad_len: None,
                })
            }
        ),
        (stream.clone(), 1u32..=0x7fff_ffff).prop_map(|(stream_id, increment)| {
            Frame::WindowUpdate(WindowUpdateFrame {
                stream_id,
                increment,
            })
        }),
        stream.prop_map(|stream_id| {
            Frame::RstStream(RstStreamFrame {
                stream_id,
                code: ErrorCode::Cancel,
            })
        }),
        (0u32..=0xffff).prop_map(|last| {
            Frame::Goaway(GoawayFrame {
                last_stream_id: StreamId::new(last),
                code: ErrorCode::NoError,
                debug_data: Bytes::new(),
            })
        }),
    ]
}

fn arb_headers() -> impl Strategy<Value = Vec<Header>> {
    prop::collection::vec(
        ("[a-z][a-z0-9-]{0,12}", "[ -~]{0,24}").prop_map(|(name, value)| Header::new(name, value)),
        1..8,
    )
}

proptest! {
    /// Encoding into a reused (non-empty) buffer appends exactly the
    /// bytes a fresh `encode_all` would produce, and leaves the prefix
    /// untouched.
    #[test]
    fn frame_encode_into_reused_buffer_matches_fresh_vec(
        frames in prop::collection::vec(arb_frame(), 0..6),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let fresh = encode_all(&frames);

        let mut reused = garbage.clone();
        encode_all_into(&frames, &mut reused);
        prop_assert_eq!(&reused[..garbage.len()], &garbage[..]);
        prop_assert_eq!(&reused[garbage.len()..], &fresh[..]);

        // Second generation: clear-and-reuse (the actual hot-path
        // pattern) is also identical to a fresh allocation.
        reused.clear();
        encode_all_into(&frames, &mut reused);
        prop_assert_eq!(reused, fresh);
    }

    /// Same property for HPACK blocks, with the extra wrinkle that the
    /// encoder is stateful: two encoders fed identical block sequences
    /// must produce identical bytes whether they write into fresh or
    /// reused buffers.
    #[test]
    fn hpack_encode_into_reused_buffer_matches_fresh_vec(
        blocks in prop::collection::vec(arb_headers(), 1..4),
        garbage in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut enc_fresh = Encoder::new();
        let mut enc_reused = Encoder::new();
        let mut scratch = garbage.clone();
        let mut first = true;
        for headers in &blocks {
            let fresh = enc_fresh.encode_block(headers);
            if first {
                // First block appends after the garbage prefix.
                enc_reused.encode_block_into(headers, &mut scratch);
                prop_assert_eq!(&scratch[..garbage.len()], &garbage[..]);
                prop_assert_eq!(&scratch[garbage.len()..], &fresh[..]);
                first = false;
            } else {
                scratch.clear();
                enc_reused.encode_block_into(headers, &mut scratch);
                prop_assert_eq!(&scratch[..], &fresh[..]);
            }
        }
    }
}
