//! RTT estimator comparison (Figure 6): HTTP/2 PING vs ICMP echo vs the
//! TCP handshake vs an HTTP/1.1 request, across link latencies and server
//! processing delays.
//!
//! ```sh
//! cargo run --release --example rtt_estimators
//! ```

use h2ready::netsim::time::SimDuration;
use h2ready::netsim::LinkSpec;
use h2ready::scope::probes::ping::{compare_rtt, median};
use h2ready::scope::Target;
use h2ready::server::{ServerProfile, SiteSpec};

fn main() {
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "RTT", "proc delay", "h2-ping", "icmp", "tcp-rtt", "h1-request"
    );
    for (delay_ms, proc_ms) in [(10u64, 1u64), (25, 1), (25, 10), (50, 5), (100, 20)] {
        let mut profile = ServerProfile::apache();
        profile.behavior.processing_delay = SimDuration::from_millis(proc_ms);
        let mut target = Target::testbed(profile, SiteSpec::benchmark());
        target.link = LinkSpec {
            delay: SimDuration::from_millis(delay_ms),
            jitter: SimDuration::from_micros(delay_ms * 30),
            bandwidth_bps: Some(100_000_000),
            loss: 0.0,
            retransmit_penalty: SimDuration::from_millis(200),
        };
        let comparison = compare_rtt(&target, 20, 0xe57);
        println!(
            "{:>6}ms {:>10}ms {:>9.1}m {:>9.1}m {:>9.1}m {:>11.1}m",
            delay_ms * 2,
            proc_ms,
            median(&comparison.h2_ping),
            median(&comparison.icmp),
            median(&comparison.tcp),
            median(&comparison.h1_request),
        );
    }
    println!(
        "\nHTTP/2 PING tracks the network RTT like ICMP and the TCP handshake do;\n\
         the HTTP/1.1 estimator absorbs the server's processing delay — exactly\n\
         the bias the paper reports in §V-H."
    );
}
