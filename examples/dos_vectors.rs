//! The paper's §VI DoS vectors, quantified: how much server memory or
//! state can an attacker pin per octet sent, and what the corresponding
//! mitigation buys.
//!
//! ```sh
//! cargo run --release --example dos_vectors
//! ```

use h2dos::{priority_churn, slow_receiver, table_thrash};
use h2ready::scope::Target;
use h2ready::server::{ServerProfile, SiteSpec};

fn main() {
    let victim = Target::testbed(ServerProfile::rfc7540(), SiteSpec::benchmark());

    println!("== slow receiver (flow control as a memory pin) ==");
    for streams in [1u32, 4, 16, 64] {
        let report = slow_receiver::attack(&victim, streams);
        println!(
            "  {streams:>3} streams: attacker sent {:>5} B, pinned {:>9} B  ({}x amplification)",
            report.attacker_octets, report.pinned_octets, report.amplification
        );
    }
    let defended = slow_receiver::attack_with_min_window_defense(&victim, 64, 1_024);
    println!(
        "  with a minimum-window policy (>= 1024): pinned {} B",
        defended.pinned_octets
    );
    let freeze = slow_receiver::connection_window_freeze(&victim, 16);
    println!(
        "  connection-window freeze variant: leaked {} B, pinned {} B \
         (window minimums cannot stop this one)",
        freeze.leaked_octets, freeze.pinned_octets
    );

    println!("\n== HPACK dynamic-table pressure ==");
    for requests in [50u32, 200, 800] {
        let report = table_thrash::attack(&table_thrash::vulnerable_victim(), 1 << 26, requests);
        println!(
            "  obedient victim, {requests:>3} requests: encoder table {:>7} B",
            report.encoder_table_octets
        );
    }
    let capped = table_thrash::attack(&table_thrash::capped_victim(), 1 << 26, 800);
    println!(
        "  capped victim (4 KiB ceiling),  800 requests: encoder table {:>7} B",
        capped.encoder_table_octets
    );

    println!("\n== priority-tree churn ==");
    for depth in [64u32, 256, 1_024] {
        let report = priority_churn::attack(&victim, depth, 20);
        println!(
            "  chain depth {depth:>5}: {:>5} frames ({:>6} B) -> {:>5} tree nodes \
             ({} after pruning)",
            report.frames_sent,
            report.attacker_octets,
            report.tree_nodes,
            report.tree_nodes_after_prune
        );
    }
    println!(
        "\nEvery vector uses only protocol-legal frames — the paper's point that\n\
         HTTP/2's new machinery must be provisioned and policed, not just implemented."
    );
}
