//! Quickstart: install a simulated server in the testbed and characterize
//! it with H2Scope — the paper's core workflow in a dozen lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use h2ready::scope::testbed::Testbed;
use h2ready::scope::H2Scope;
use h2ready::server::{ServerProfile, SiteSpec};

fn main() {
    let scope = H2Scope::new();

    // Pick a server implementation — here H2O, one of the three servers
    // the paper found to implement priorities and push.
    let testbed = Testbed::new(ServerProfile::h2o(), SiteSpec::benchmark());
    let report = scope.characterize(&testbed);

    println!("server          : {} {}", report.server, report.version);
    println!(
        "ALPN / NPN      : {} / {}",
        report.negotiation.alpn_h2, report.negotiation.npn_h2
    );
    println!("multiplexing    : {}", report.multiplexing.parallel);
    println!(
        "max concurrent  : {:?}",
        report.multiplexing.max_concurrent_streams
    );
    println!("1-octet window  : {:?}", report.flow_control.small_window);
    println!(
        "zero WU (stream): {}",
        report.flow_control.zero_update_stream
    );
    println!("zero WU (conn)  : {}", report.flow_control.zero_update_conn);
    println!(
        "priority test   : {}",
        if report.priority.passes() {
            "pass"
        } else {
            "fail"
        }
    );
    println!("self-dependency : {}", report.priority.self_dependency);
    println!("HPACK ratio     : {:.3}", report.hpack.ratio);
    println!(
        "PING RTT        : {:.3} ms median over {} samples",
        h2ready::scope::probes::ping::median(&report.ping.rtt_ms),
        report.ping.rtt_ms.len()
    );
}
