//! Server-push page-load experiment (Figure 3): load a page with many
//! subresources over links of increasing latency, with push enabled and
//! disabled, and watch where push pays off.
//!
//! ```sh
//! cargo run --release --example push_pageload
//! ```

use h2ready::netsim::LinkSpec;
use h2ready::scope::pageload::page_load;
use h2ready::scope::Target;
use h2ready::server::{ServerProfile, SiteSpec};

fn main() {
    println!("page: 16 KiB HTML + 8 assets x 20 KiB, server: H2O (push-capable)\n");
    println!(
        "{:>10} {:>14} {:>14} {:>9}",
        "RTT", "push (ms)", "no push (ms)", "saving"
    );
    for delay_ms in [5u64, 20, 40, 80, 160] {
        let mut target =
            Target::testbed(ServerProfile::h2o(), SiteSpec::page_with_assets(8, 20_000));
        target.link = LinkSpec::wan(delay_ms);
        let with_push = page_load(&target, true, 42);
        let without_push = page_load(&target, false, 42);
        let push_ms = with_push.load_time.as_millis_f64();
        let nopush_ms = without_push.load_time.as_millis_f64();
        println!(
            "{:>7}ms {:>14.1} {:>14.1} {:>8.1}%",
            delay_ms * 2,
            push_ms,
            nopush_ms,
            (1.0 - push_ms / nopush_ms) * 100.0
        );
    }
    println!(
        "\nThe saving grows with latency — the paper's §V-F observation that push\n\
         \"could reduce the page load time in most cases\", and Rosen et al.'s\n\
         finding that it helps most when latency is high (one round trip saved)."
    );

    // A push-incapable server for contrast.
    let mut target = Target::testbed(
        ServerProfile::nginx(),
        SiteSpec::page_with_assets(8, 20_000),
    );
    target.link = LinkSpec::wan(40);
    let report = page_load(&target, true, 42);
    println!(
        "\nNginx 1.9.15 with push requested: {} assets pushed (stock Nginx had no push)",
        report.pushed_assets
    );
}
