//! The §VI head-of-line-blocking experiment: one multiplexed HTTP/2
//! connection vs the same transfer split over several connections, as
//! packet loss rises.
//!
//! ```sh
//! cargo run --release --example lossy_link
//! ```

use h2ready::netsim::LinkSpec;
use h2ready::scope::multi_connection::compare;
use h2ready::scope::Target;
use h2ready::server::{ServerProfile, SiteSpec};

fn main() {
    let assets: Vec<String> = (1..=6).map(|k| format!("/big/{k}")).collect();
    println!("transfer: 16 KiB page + 6 x 256 KiB objects, 30 ms one-way, 3 connections\n");
    println!(
        "{:>7} {:>16} {:>16} {:>12}",
        "loss", "1 conn (ms)", "3 conns (ms)", "speedup"
    );
    for loss_pct in [0u32, 1, 2, 5, 8, 12] {
        let mut target = Target::testbed(ServerProfile::h2o(), SiteSpec::benchmark());
        target.link = LinkSpec {
            bandwidth_bps: Some(1_000_000_000),
            ..LinkSpec::mobile(30, loss_pct as f64 / 100.0)
        };
        let (single, multi) = compare(&target, &assets, 3, 6);
        println!(
            "{:>6}% {:>16.1} {:>16.1} {:>11.2}x",
            loss_pct,
            single,
            multi,
            single / multi
        );
    }
    println!(
        "\nWith no loss the single multiplexed connection is the right design;\n\
         as loss grows, transport head-of-line blocking stalls every stream at\n\
         once and splitting the transfer wins — the paper's §VI observation\n\
         (and the motivation for QUIC's per-stream delivery)."
    );
}
