//! Walk through the paper's Figure 1 (and RFC 7540 §5.3.3's example):
//! build the Table I dependency tree, then apply the two PRIORITY frames
//! of Table II and print the resulting trees.
//!
//! ```sh
//! cargo run --example priority_tree
//! ```

use h2ready::conn::PriorityTree;
use h2ready::wire::{PrioritySpec, StreamId};

/// Stream ids standing in for the paper's letters.
const NAMES: &[(u32, &str)] = &[(1, "A"), (3, "B"), (5, "C"), (7, "D"), (9, "E"), (11, "F")];

fn name(id: StreamId) -> String {
    NAMES
        .iter()
        .find(|(v, _)| *v == id.value())
        .map_or_else(|| format!("#{id}"), |(_, n)| (*n).to_string())
}

fn render(tree: &PriorityTree, node: StreamId, depth: usize, out: &mut String) {
    if depth > 0 {
        out.push_str(&"    ".repeat(depth - 1));
        out.push_str(&format!(
            "└── {} (weight {})\n",
            name(node),
            tree.weight_of(node).unwrap_or(0)
        ));
    }
    let mut children = tree.children_of(node);
    children.sort_by_key(|c| c.value());
    for child in children {
        render(tree, child, depth + 1, out);
    }
}

fn show(label: &str, tree: &PriorityTree) {
    let mut out = String::new();
    render(tree, StreamId::CONNECTION, 0, &mut out);
    println!("{label}\n{out}");
}

fn spec(dep: u32, weight: u16, exclusive: bool) -> PrioritySpec {
    PrioritySpec {
        exclusive,
        dependency: StreamId::new(dep),
        weight,
    }
}

fn table_i_tree() -> PriorityTree {
    // Table I: A depends on stream 0; B, C, D on A; E on B; F on D.
    let mut tree = PriorityTree::new();
    tree.declare(StreamId::new(1), spec(0, 1, false)).unwrap();
    tree.declare(StreamId::new(3), spec(1, 1, false)).unwrap();
    tree.declare(StreamId::new(5), spec(1, 1, false)).unwrap();
    tree.declare(StreamId::new(7), spec(1, 1, false)).unwrap();
    tree.declare(StreamId::new(9), spec(3, 1, false)).unwrap();
    tree.declare(StreamId::new(11), spec(7, 1, false)).unwrap();
    tree
}

fn main() {
    show(
        "Figure 1 (1) — the Table I dependency tree:",
        &table_i_tree(),
    );

    // Table II row 1: A depends on B, exclusive.
    let mut exclusive = table_i_tree();
    exclusive
        .declare(StreamId::new(1), spec(3, 1, true))
        .unwrap();
    show(
        "Figure 1 (2) — after PRIORITY {A -> B, exclusive}:",
        &exclusive,
    );

    // Table II row 2: A depends on B, non-exclusive.
    let mut non_exclusive = table_i_tree();
    non_exclusive
        .declare(StreamId::new(1), spec(3, 1, false))
        .unwrap();
    show(
        "Figure 1 (3) — after PRIORITY {A -> B, non-exclusive}:",
        &non_exclusive,
    );

    // And the self-dependency the paper probes servers with (§III-C2).
    let mut tree = table_i_tree();
    match tree.declare(StreamId::new(1), spec(1, 1, false)) {
        Err(err) => println!("self-dependency rejected as required: {err}"),
        Ok(()) => unreachable!("RFC 7540 §5.3.1 forbids self-dependency"),
    }
}
