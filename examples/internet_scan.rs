//! Internet scan: run a miniature version of the paper's top-1M campaign
//! against the synthetic population and print the adoption funnel plus a
//! Table IV-style server ranking.
//!
//! ```sh
//! cargo run --release --example internet_scan            # 0.5% of 1M
//! cargo run --release --example internet_scan -- 0.05    # 5%
//! ```

use std::collections::HashMap;

use h2ready::scope::H2Scope;
use h2ready::webpop::{ExperimentSpec, Population};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.005);
    let scope = H2Scope::new();

    for spec in ExperimentSpec::both() {
        let population = Population::new(spec, scale);
        let spec = population.spec();
        println!(
            "=== {} ({}) — scanning {} h2 sites of {} total (scale {scale}) ===",
            spec.name,
            spec.label,
            population.h2_count(),
            population.total_sites(),
        );

        let mut npn = 0u64;
        let mut alpn = 0u64;
        let mut headers = 0u64;
        let mut by_server: HashMap<String, u64> = HashMap::new();
        for site in population.iter_h2_sites() {
            let report = scope.survey(&site.target());
            if report.negotiation.npn_h2 {
                npn += 1;
            }
            if report.negotiation.alpn_h2 {
                alpn += 1;
            }
            if report.headers_received {
                headers += 1;
                let name = report
                    .server_name
                    .unwrap_or_else(|| "(no server header)".to_string());
                *by_server.entry(name).or_default() += 1;
            }
        }

        println!(
            "  NPN h2     : {npn:>7}  (paper {:>7} at full scale)",
            spec.npn_sites
        );
        println!(
            "  ALPN h2    : {alpn:>7}  (paper {:>7} at full scale)",
            spec.alpn_sites
        );
        println!(
            "  HEADERS    : {headers:>7}  (paper {:>7} at full scale)",
            spec.headers_sites
        );

        let mut ranking: Vec<(String, u64)> = by_server.into_iter().collect();
        ranking.sort_by_key(|r| std::cmp::Reverse(r.1));
        println!("  top servers:");
        for (name, count) in ranking.into_iter().take(8) {
            println!("    {count:>6}  {name}");
        }
        println!();
    }
}
