//! Conformance audit: probe all six of the paper's testbed servers plus
//! the RFC 7540 reference endpoint, printing a compact deviation report —
//! the reproduction of Table III viewed through a compliance lens.
//!
//! ```sh
//! cargo run --release --example conformance_audit
//! ```

use h2ready::scope::probes::Reaction;
use h2ready::scope::testbed::Testbed;
use h2ready::scope::H2Scope;
use h2ready::server::{ServerProfile, SiteSpec};

fn main() {
    let scope = H2Scope::new();
    let mut profiles = ServerProfile::testbed();
    profiles.push(ServerProfile::rfc7540());

    println!("HTTP/2 conformance audit — deviations from RFC 7540\n");
    for profile in profiles {
        let name = format!("{} {}", profile.name, profile.version);
        let h2c = h2ready::scope::probes::negotiation::h2c_upgrade(
            &h2ready::scope::Target::testbed(profile.clone(), SiteSpec::benchmark()),
        );
        let report = scope.characterize(&Testbed::new(profile, SiteSpec::benchmark()));
        let mut deviations: Vec<String> = Vec::new();

        if !report.flow_control.headers_at_zero_window {
            deviations
                .push("applies flow control to HEADERS (RFC 7540 §6.9: DATA only)".to_string());
        }
        if report.flow_control.zero_update_stream != Reaction::RstStream {
            deviations.push(format!(
                "zero WINDOW_UPDATE on a stream -> {} (RFC: stream error / RST_STREAM)",
                report.flow_control.zero_update_stream
            ));
        }
        if report.flow_control.zero_update_conn != Reaction::Goaway {
            deviations.push(format!(
                "zero WINDOW_UPDATE on the connection -> {} (RFC: connection error / GOAWAY)",
                report.flow_control.zero_update_conn
            ));
        }
        if report.flow_control.large_update_stream != Reaction::RstStream {
            deviations.push("stream window overflow not answered with RST_STREAM".to_string());
        }
        if report.flow_control.large_update_conn != Reaction::Goaway {
            deviations.push("connection window overflow not answered with GOAWAY".to_string());
        }
        if report.priority.self_dependency != Reaction::RstStream {
            deviations.push(format!(
                "self-dependent stream -> {} (RFC §5.3.1: stream error / RST_STREAM)",
                report.priority.self_dependency
            ));
        }
        if !report.priority.passes() {
            deviations.push("priority tree not honored when scheduling DATA".to_string());
        }
        if !report.push.supported && report.server != "RFC 7540" {
            // Push is optional; report it as a gap, not a violation.
            deviations.push("server push not implemented (optional feature)".to_string());
        }
        if (report.hpack.ratio - 1.0).abs() < 1e-9 {
            deviations
                .push("HPACK dynamic table unused for response headers (ratio = 1.0)".to_string());
        }

        println!("{name}  (h2c upgrade: {})", if h2c { "yes" } else { "no" });
        if deviations.is_empty() {
            println!("  fully conformant on every probe");
        }
        for d in &deviations {
            println!("  - {d}");
        }
        println!();
    }
}
