//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the API subset it uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`, raw
//! words), [`SeedableRng`] and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and
//! statistically strong enough for every simulation in this repository.
//!
//! NOTE: the byte streams differ from the real `rand` crate's ChaCha-based
//! `StdRng`. Everything in this workspace treats RNG draws as opaque (all
//! calibration is quota-based or tolerance-checked), so only determinism
//! per seed matters, not the exact stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: raw word output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1), matching the real crate's convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, span)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let v = u128::sample_standard(rng);
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// User-facing random value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool p must be in [0,1], got {p}"
        );
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64`, expanding via SplitMix64 (deterministic).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..=3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
