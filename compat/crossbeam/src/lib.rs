//! Offline stand-in for `crossbeam`.
//!
//! Provides the two facilities this workspace uses — `crossbeam::thread`
//! scoped spawning and `crossbeam::channel` unbounded channels — as thin
//! adapters over `std::thread::scope` (stable since 1.63) and
//! `std::sync::mpsc`.

#![warn(missing_docs)]

/// Scoped threads, adapted to the crossbeam call shape
/// (`scope(|s| { s.spawn(|_| ...); })` returning a `Result`).
pub mod thread {
    /// Handle passed to the scope closure; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// returning. Panics in workers propagate on join (the caller's
    /// `.expect(..)` behaves the same as with real crossbeam).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Channels, adapted from `std::sync::mpsc`.
pub mod channel {
    /// Receiving half.
    pub use std::sync::mpsc::Receiver;
    /// Error returned when all receivers are gone.
    pub use std::sync::mpsc::SendError;
    /// Sending half (cloneable).
    pub use std::sync::mpsc::Sender;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_workers_fan_in_over_channel() {
        let (tx, rx) = super::channel::unbounded::<u64>();
        super::thread::scope(|scope| {
            for w in 0..4u64 {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    tx.send(w * 10).unwrap();
                });
            }
            drop(tx);
        })
        .expect("workers do not panic");
        let mut got: Vec<u64> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 10, 20, 30]);
    }
}
