//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as importable names in both the trait
//! and macro namespaces, so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The derives are
//! no-ops (see `serde_derive`); the traits are markers. Nothing in this
//! workspace performs serde-format serialization — persistence uses the
//! text codec in `h2scope::storage`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
