//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Bytes`], a cheaply
//! cloneable, sliceable, immutable byte buffer backed by `Arc<[u8]>`.
//! Semantics match the real crate for every operation exposed here;
//! `slice()` is zero-copy and clones share the same allocation.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing a `'static` slice. The stand-in copies into an
    /// `Arc` once; clones still share that single allocation.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view. Panics on out-of-range bounds, like the real
    /// crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not exceed end");
        assert!(end <= len, "range end out of bounds: {end} > {len}");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes as a plain slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        Bytes::as_ref(self).iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn equality_across_reprs() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, *b"hello");
        assert_eq!(b, b"hello");
        assert_eq!(b, b"hello".to_vec());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        let _ = Bytes::from(vec![1u8, 2]).slice(0..3);
    }
}
