//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Bytes`], a cheaply
//! cloneable, sliceable, immutable byte buffer backed by a shared
//! `Arc<Vec<u8>>`. Semantics match the real crate for every operation
//! exposed here; `slice()` is zero-copy, clones share the same
//! allocation, and — the property the workspace's zero-copy receive
//! path leans on — `From<Vec<u8>>` takes ownership of the vector's
//! existing heap block instead of copying it.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

/// One process-wide empty backing store, so `Bytes::new()` never
/// allocates a fresh `Arc` per empty buffer.
fn shared_empty() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes {
            data: shared_empty(),
            start: 0,
            end: 0,
        }
    }
}

impl Bytes {
    /// An empty buffer (no new allocation; all empties share one store).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing a `'static` slice. The stand-in copies into an
    /// `Arc` once; clones still share that single allocation.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view. Panics on out-of-range bounds, like the real
    /// crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not exceed end");
        assert!(end <= len, "range end out of bounds: {end} > {len}");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes as a plain slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Recovers the *full* backing `Vec` without copying when this
    /// handle is the only one alive, regardless of the range this view
    /// covers; otherwise the view is returned unchanged as the error.
    ///
    /// This is a stand-in extension (the real crate's closest analogue
    /// is `try_into_mut`): the simulated transport uses it to return a
    /// fully-decoded segment to its buffer pool once no frame retains a
    /// payload slice of it. Callers recycle the vector's capacity, so
    /// getting back more bytes than the view held is the point, not a
    /// hazard.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when other clones still share the storage.
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        let (start, end) = (self.start, self.end);
        Arc::try_unwrap(self.data).map_err(|data| Bytes { data, start, end })
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of the vector's heap block; no bytes are copied.
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        Bytes::as_ref(self).iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn equality_across_reprs() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, *b"hello");
        assert_eq!(b, b"hello");
        assert_eq!(b, b"hello".to_vec());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        let _ = Bytes::from(vec![1u8, 2]).slice(0..3);
    }

    #[test]
    fn from_vec_preserves_the_heap_block() {
        let v = vec![7u8; 64];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr, "no copy on Vec -> Bytes");
        let back = b.try_into_vec().expect("unique handle unwraps");
        assert_eq!(back.as_ptr(), ptr, "no copy on Bytes -> Vec either");
    }

    #[test]
    fn try_into_vec_fails_while_shared_and_recovers_the_full_buffer() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let kept = b.slice(1..3);
        let b = b.try_into_vec().expect_err("slice still shares storage");
        drop(kept);
        // A narrowed, fully-advanced cursor still recovers the whole
        // backing vector once it is the last handle.
        let cursor = b.slice(4..4);
        drop(b);
        assert_eq!(cursor.try_into_vec().expect("unique"), vec![1, 2, 3, 4]);
    }
}
