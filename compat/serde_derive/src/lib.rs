//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report types for
//! downstream consumers, but nothing in-tree performs serde-format
//! serialization (persistence uses the hand-rolled text codec in
//! `h2scope::storage`). These derives therefore accept the attribute
//! grammar and expand to nothing, which keeps the workspace building
//! without crates.io access.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
