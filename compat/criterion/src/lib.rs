//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use —
//! `benchmark_group` / `sample_size` / `throughput` / `bench_function` /
//! `Bencher::{iter, iter_batched}` plus the `criterion_group!` /
//! `criterion_main!` entry points — over a plain wall-clock measurement
//! loop. Each benchmark reports the median and minimum per-iteration time
//! (and derived throughput when declared) to stdout. No statistics engine,
//! no HTML reports, no saved baselines: the goal is that `cargo bench`
//! builds and produces honest relative numbers without crates.io access.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared per-iteration workload, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many logical elements.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched`. The stand-in runs one setup per
/// measured invocation regardless of the hint, so the variants only exist
/// to keep call sites source-compatible.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Explicit iterations per batch.
    NumIterations(u64),
}

/// One measured benchmark, as recorded by the harness.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` identifier.
    pub id: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Minimum per-iteration time.
    pub min: Duration,
    /// Number of samples taken.
    pub samples: usize,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

/// Benchmark manager; collects measurements across groups.
pub struct Criterion {
    measurements: Vec<Measurement>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurements: Vec::new(),
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            parent: self,
        }
    }

    /// All measurements recorded so far (used by `criterion_main!` for the
    /// closing summary, and available to custom `main` functions).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    parent: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let m = bencher.into_measurement(full_id, self.throughput);
        report(&m);
        self.parent.measurements.push(m);
        self
    }

    /// Closes the group. (Reporting is per-benchmark, so this is a no-op
    /// kept for source compatibility.)
    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, one sample per invocation, with a small warmup.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn into_measurement(mut self, id: String, throughput: Option<Throughput>) -> Measurement {
        if self.samples.is_empty() {
            // The closure never called iter/iter_batched; record a zero so
            // the harness still reports the benchmark as present.
            self.samples.push(Duration::ZERO);
        }
        self.samples.sort_unstable();
        let samples = self.samples.len();
        Measurement {
            id,
            median: self.samples[samples / 2],
            min: self.samples[0],
            samples,
            throughput,
        }
    }
}

fn report(m: &Measurement) {
    let mut line = format!(
        "bench: {:<48} median {:>12}  min {:>12}  ({} samples)",
        m.id,
        fmt_duration(m.median),
        fmt_duration(m.min),
        m.samples
    );
    if let Some(t) = m.throughput {
        let per_sec = |units: u64| {
            let secs = m.median.as_secs_f64();
            if secs > 0.0 {
                units as f64 / secs
            } else {
                f64::INFINITY
            }
        };
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.1} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            eprintln!("benchmarks complete: {} measurements", c.measurements().len());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(5);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    #[test]
    fn harness_records_measurements() {
        let mut c = Criterion::default();
        spin(&mut c);
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].id, "stub/sum");
        assert_eq!(c.measurements()[0].samples, 5);
        assert!(c.measurements()[1].median >= c.measurements()[1].min);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(200)), "200.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(35)), "35.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
