//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use — `proptest!`, `prop_compose!`, `prop_oneof!`, `any::<T>()`,
//! ranges, `Just`, tuples, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::Index`, and character-class string patterns — over a
//! deterministic per-test RNG. There is no shrinking and no failure
//! persistence: a failing case panics with the regular assertion message,
//! and the deterministic seeding (derived from the test's module path and
//! name) makes every failure reproducible by rerunning the same test.
//!
//! Case count defaults to 64 and can be overridden per test with
//! `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
//! the `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's configuration: the number of cases per test.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run for each property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Case count after applying the `PROPTEST_CASES` env override.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    /// Deterministic RNG driving value generation. Seeded from the test's
    /// fully qualified name so each property gets a stable, distinct
    /// stream.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for the named test (FNV-1a of the name seeds the stream).
        pub fn for_test(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest);
        }
    }
}

/// The `Strategy` trait and core combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking; a
    /// strategy simply produces a value from the deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn gen_value(&self, rng: &mut TestRng) -> V {
            (**self).gen_value(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Strategy defined by a generation closure; backs `prop_compose!`.
    pub struct FnStrategy<F>(F);

    impl<F> FnStrategy<F> {
        /// Wraps a generation closure.
        pub fn new(f: F) -> Self {
            FnStrategy(f)
        }
    }

    impl<T, F> Strategy for FnStrategy<F>
    where
        F: Fn(&mut TestRng) -> T,
    {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Weighted choice between boxed strategies; backs `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u32,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn gen_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm.gen_value(rng);
                }
                pick -= weight;
            }
            unreachable!("weights sum to total")
        }
    }

    /// Boxes one `prop_oneof!` arm, unifying arm types behind a trait
    /// object.
    pub fn weighted_arm<S>(weight: u32, strategy: S) -> (u32, Box<dyn Strategy<Value = S::Value>>)
    where
        S: Strategy + 'static,
    {
        (weight, Box::new(strategy))
    }

    macro_rules! numeric_range_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    numeric_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.gen_value(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    impl Strategy for &'static str {
        type Value = String;

        fn gen_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

/// Character-class string patterns (`"[a-z][a-z0-9-]{0,20}"` and the
/// like), the only regex subset the workspace uses.
pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;

    struct Segment {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Segment> {
        let mut chars = pattern.chars().peekable();
        let mut segments = Vec::new();
        while let Some(c) = chars.next() {
            let class = match c {
                '[' => {
                    let mut class = Vec::new();
                    loop {
                        let mut entry = match chars.next() {
                            Some(']') => break,
                            Some('\\') => chars.next().expect("escape is followed by a char"),
                            Some(ch) => ch,
                            None => panic!("unterminated class in pattern {pattern:?}"),
                        };
                        if chars.peek() == Some(&'-') {
                            let mut look = chars.clone();
                            look.next();
                            if look.peek().is_some_and(|&next| next != ']') {
                                chars.next();
                                let hi = chars.next().expect("range has an upper bound");
                                while entry <= hi {
                                    class.push(entry);
                                    entry = char::from_u32(entry as u32 + 1)
                                        .expect("class ranges stay in valid chars");
                                }
                                continue;
                            }
                        }
                        class.push(entry);
                    }
                    assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
                    class
                }
                '\\' => vec![chars.next().expect("escape is followed by a char")],
                other => vec![other],
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("quantifier lower bound"),
                        hi.parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            segments.push(Segment {
                chars: class,
                min,
                max,
            });
        }
        segments
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for seg in parse(pattern) {
            let count = rng.gen_range(seg.min..=seg.max);
            for _ in 0..count {
                out.push(seg.chars[rng.gen_range(0..seg.chars.len())]);
            }
        }
        out
    }
}

/// The `Arbitrary` trait and `any::<T>()`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! arbitrary_via_gen {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )+};
    }

    arbitrary_via_gen!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, f32, f64);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary_value(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            rng.fill(&mut out[..]);
            out
        }
    }
}

/// Collection, option, and sampling strategies under the familiar
/// `prop::` paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Inclusive length range for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.end > r.start, "empty collection size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// Generates vectors of values from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.min..=self.size.max);
                (0..len).map(|_| self.elem.gen_value(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy for `Option<S::Value>`.
        pub struct OptionStrategy<S>(S);

        /// Generates `Some` three times out of four, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_range(0u32..4) == 0 {
                    None
                } else {
                    Some(self.0.gen_value(rng))
                }
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::arbitrary::Arbitrary;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// An index into a collection whose length is only known inside
        /// the test body.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Projects onto `0..len`. `len` must be positive.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index requires a non-empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                Index(rng.gen())
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (or unweighted) choice between strategies producing one value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::weighted_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::weighted_arm(1u32, $strat)),+
        ])
    };
}

/// Declares a function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:tt)*)
        ($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), __rng);)+
                    $body
                },
            )
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.effective_cases() {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = TestRng::for_test("string_patterns");
        for _ in 0..200 {
            let s = crate::string::generate("[a-z][a-z0-9-]{0,20}", &mut rng);
            assert!((1..=21).contains(&s.len()));
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));

            let p = crate::string::generate("[ -~|=\\\\]{0,120}", &mut rng);
            assert!(p.len() <= 120);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let strat = prop_oneof![
            4 => (0u32..1).prop_map(|_| true),
            1 => (0u32..1).prop_map(|_| false),
        ];
        let mut rng = TestRng::for_test("union_weights");
        let hits = (0..5_000)
            .filter(|_| Strategy::gen_value(&strat, &mut rng))
            .count();
        assert!((3_500..=4_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let strat = prop::collection::vec(any::<u64>(), 3..6);
        let mut a = TestRng::for_test("determinism");
        let mut b = TestRng::for_test("determinism");
        for _ in 0..50 {
            assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
        }
    }

    prop_compose! {
        fn arb_pair()(x in 0u8..10, y in 0u8..10) -> (u8, u8) {
            (x, y)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: ranges, tuples, options, vecs,
        /// compose, oneof, and Index all flow through generation.
        #[test]
        fn full_macro_surface(
            pair in arb_pair(),
            flag in any::<bool>(),
            opt in prop::option::of(1usize..4),
            bytes in prop::collection::vec(any::<u8>(), 0..16),
            pick in any::<prop::sample::Index>(),
            name in prop_oneof![Just("fixed".to_string()), "[a-z]{1,4}"],
        ) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert!(usize::from(flag) <= 1);
            if let Some(n) = opt {
                prop_assert!((1..4).contains(&n));
            }
            prop_assert!(bytes.len() < 16);
            prop_assert!(pick.index(7) < 7);
            prop_assert_ne!(name.len(), 0);
        }
    }
}
