//! `h2scope` — the measurement tool as a command-line binary, mirroring
//! the tool the paper released.
//!
//! ```text
//! h2scope characterize --server <name>     full probe suite (a Table III column)
//! h2scope probe <probe> --server <name>    one probe: negotiation | settings |
//!                                          multiplex | flowcontrol | priority |
//!                                          push | hpack | ping | h2c
//! h2scope survey --exp 1|2 --scale S [--limit N]
//!                                          scan the synthetic population
//! h2scope rtt --server <name> --delay MS   the Figure 6 estimator comparison
//! h2scope list-servers                     available server profiles
//! ```

use h2ready::netsim::time::SimDuration;
use h2ready::netsim::LinkSpec;
use h2ready::scope::pageload;
use h2ready::scope::probes::{
    flow_control, hpack, multiplexing, negotiation, ping, priority, push, settings,
};
use h2ready::scope::testbed::Testbed;
use h2ready::scope::{storage, trace, H2Scope, ProbeConn, Target};
use h2ready::server::{ServerProfile, SiteSpec};
use h2ready::webpop;

fn profile_by_name(name: &str) -> Option<ServerProfile> {
    let profile = match name.to_ascii_lowercase().as_str() {
        "nginx" => ServerProfile::nginx(),
        "litespeed" => ServerProfile::litespeed(),
        "h2o" => ServerProfile::h2o(),
        "nghttpd" => ServerProfile::nghttpd(),
        "tengine" => ServerProfile::tengine(),
        "apache" => ServerProfile::apache(),
        "rfc7540" | "reference" => ServerProfile::rfc7540(),
        "gse" => ServerProfile::gse(),
        "cloudflare-nginx" | "cloudflare" => ServerProfile::cloudflare_nginx(),
        "ideaweb" | "ideawebserver" => ServerProfile::ideaweb(),
        "tengine-aserver" | "aserver" => ServerProfile::tengine_aserver(),
        _ => return None,
    };
    Some(profile)
}

const SERVER_NAMES: &[&str] = &[
    "nginx",
    "litespeed",
    "h2o",
    "nghttpd",
    "tengine",
    "apache",
    "rfc7540",
    "gse",
    "cloudflare-nginx",
    "ideaweb",
    "tengine-aserver",
];

struct Args {
    positional: Vec<String>,
    server: String,
    exp: u8,
    scale: f64,
    limit: usize,
    delay_ms: u64,
    samples: usize,
    save: Option<String>,
    path: String,
}

fn parse() -> Args {
    let mut args = Args {
        positional: Vec::new(),
        server: "rfc7540".into(),
        exp: 1,
        scale: 0.001,
        limit: 10,
        delay_ms: 25,
        samples: 10,
        save: None,
        path: "/".into(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--server" => args.server = iter.next().unwrap_or_default(),
            "--exp" => args.exp = iter.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--scale" => args.scale = iter.next().and_then(|v| v.parse().ok()).unwrap_or(0.001),
            "--limit" => args.limit = iter.next().and_then(|v| v.parse().ok()).unwrap_or(10),
            "--delay" => args.delay_ms = iter.next().and_then(|v| v.parse().ok()).unwrap_or(25),
            "--samples" => args.samples = iter.next().and_then(|v| v.parse().ok()).unwrap_or(10),
            "--save" => args.save = iter.next(),
            "--path" => args.path = iter.next().unwrap_or_else(|| "/".into()),
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other if !other.starts_with('-') => args.positional.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn print_usage() {
    println!(
        "h2scope — HTTP/2 feature probing (reproduction of the ICDCS'17 tool)\n\n\
         USAGE:\n  h2scope characterize --server <name>\n  h2scope probe <probe> --server <name>\n  \
         h2scope survey [--exp 1|2] [--scale S] [--limit N]\n  h2scope rtt [--server <name>] [--delay MS] [--samples N]\n  \
         h2scope pageload [--server <name>] [--delay MS]\n  h2scope list-servers"
    );
}

fn resolve_target(args: &Args) -> Target {
    let Some(profile) = profile_by_name(&args.server) else {
        eprintln!(
            "unknown server '{}'; try: {}",
            args.server,
            SERVER_NAMES.join(", ")
        );
        std::process::exit(2);
    };
    Target::testbed(profile, SiteSpec::benchmark())
}

fn characterize(args: &Args) {
    let Some(profile) = profile_by_name(&args.server) else {
        eprintln!("unknown server '{}'", args.server);
        std::process::exit(2);
    };
    let scope = H2Scope::new();
    let report = scope.characterize(&Testbed::new(profile.clone(), SiteSpec::benchmark()));
    let push_report = push::probe(
        &Target::testbed(profile.clone(), SiteSpec::page_with_assets(3, 2_000)),
        &["/"],
    );
    let h2c = negotiation::h2c_upgrade(&Target::testbed(profile, SiteSpec::benchmark()));
    println!(
        "server                       : {} {}",
        report.server, report.version
    );
    println!(
        "ALPN h2 / NPN h2 / h2c       : {} / {} / {}",
        report.negotiation.alpn_h2, report.negotiation.npn_h2, h2c
    );
    println!(
        "request multiplexing         : {}",
        report.multiplexing.parallel
    );
    println!(
        "max concurrent streams       : {:?}",
        report.multiplexing.max_concurrent_streams
    );
    println!(
        "announced initial window     : {:?}",
        report.settings.initial_window_size
    );
    println!(
        "zero-window-then-update      : {}",
        report.settings.zero_window_then_update
    );
    println!(
        "1-octet window outcome       : {:?}",
        report.flow_control.small_window
    );
    println!(
        "HEADERS at zero window       : {}",
        report.flow_control.headers_at_zero_window
    );
    println!(
        "zero WINDOW_UPDATE (stream)  : {}",
        report.flow_control.zero_update_stream
    );
    println!(
        "zero WINDOW_UPDATE (conn)    : {}",
        report.flow_control.zero_update_conn
    );
    println!(
        "window overflow (stream)     : {}",
        report.flow_control.large_update_stream
    );
    println!(
        "window overflow (conn)       : {}",
        report.flow_control.large_update_conn
    );
    println!(
        "priority Algorithm 1         : {}",
        if report.priority.passes() {
            "pass"
        } else {
            "fail"
        }
    );
    println!(
        "  by first / last / both     : {} / {} / {}",
        report.priority.by_first_frame, report.priority.by_last_frame, report.priority.by_both
    );
    println!(
        "self-dependent stream        : {}",
        report.priority.self_dependency
    );
    println!("server push                  : {}", push_report.supported);
    println!("HPACK compression ratio      : {:.3}", report.hpack.ratio);
    println!(
        "HTTP/2 PING                  : {} ({:.3} ms median)",
        report.ping.supported,
        ping::median(&report.ping.rtt_ms)
    );
}

fn run_probe(args: &Args, which: &str) {
    let target = resolve_target(args);
    match which {
        "negotiation" => {
            let report = negotiation::probe(&target);
            println!(
                "ALPN h2: {}  NPN h2: {}  h2: {}",
                report.alpn_h2,
                report.npn_h2,
                report.h2()
            );
        }
        "settings" => println!("{:#?}", settings::probe(&target)),
        "multiplex" => println!("{:#?}", multiplexing::probe(&target, 4)),
        "flowcontrol" => println!("{:#?}", flow_control::probe(&target)),
        "priority" => println!("{:#?}", priority::algorithm1(&target)),
        "push" => {
            let push_target = Target::testbed(target.profile, SiteSpec::page_with_assets(3, 2_000));
            println!("{:#?}", push::probe(&push_target, &["/"]));
        }
        "hpack" => {
            let report = hpack::probe(&target, 8);
            println!(
                "H = {}   sizes = {:?}   r = {:.4}",
                report.h, report.sizes, report.ratio
            );
        }
        "ping" => {
            let report = ping::probe(&target, args.samples);
            println!(
                "supported: {}  median RTT: {:.3} ms  samples: {:?}",
                report.supported,
                ping::median(&report.rtt_ms),
                report.rtt_ms
            );
        }
        "h2c" => println!("h2c upgrade: {}", negotiation::h2c_upgrade(&target)),
        other => {
            eprintln!("unknown probe '{other}'");
            std::process::exit(2);
        }
    }
}

fn survey(args: &Args) {
    let spec = if args.exp == 2 {
        webpop::ExperimentSpec::second()
    } else {
        webpop::ExperimentSpec::first()
    };
    let population = webpop::Population::new(spec, args.scale);
    let scope = H2Scope::new();
    println!(
        "surveying {} h2 sites ({} at full scale)...",
        population.h2_count(),
        population.spec().h2_sites
    );
    let mut stored = Vec::new();
    for site in population.iter_h2_sites().take(args.limit) {
        let report = scope.survey(&site.target());
        if args.save.is_some() {
            stored.push(report.clone());
        }
        let server = report.server_name.as_deref().unwrap_or("-");
        let status = if !report.negotiation.h2() {
            "no-h2"
        } else if !report.headers_received {
            "mute"
        } else {
            "ok"
        };
        let (fc, prio, ratio) = match (&report.flow_control, &report.priority, &report.hpack) {
            (Some(fc), Some(p), Some(h)) => (
                format!("{}", fc.zero_update_stream),
                if p.passes() { "prio" } else { "fcfs" }.to_string(),
                format!("{:.2}", h.ratio),
            ),
            _ => ("-".into(), "-".into(), "-".into()),
        };
        println!(
            "  {:<28} {:<6} {:<22} zwu={:<12} {:<5} r={}",
            report.authority, status, server, fc, prio, ratio
        );
    }
    if let Some(path) = &args.save {
        let data = storage::write_reports(&stored);
        match std::fs::write(path, data) {
            Ok(()) => println!("saved {} records to {path}", stored.len()),
            Err(e) => eprintln!("failed to save {path}: {e}"),
        }
    }
}

fn trace_cmd(args: &Args) {
    let target = resolve_target(args);
    let mut conn = ProbeConn::establish(&target, h2ready::wire::Settings::new(), 0x7ace);
    conn.exchange();
    conn.fetch(1, &args.path);
    print!("{}", trace::render(&conn.received));
}

fn rtt(args: &Args) {
    let mut target = resolve_target(args);
    target.link = LinkSpec::wan(args.delay_ms);
    let comparison = ping::compare_rtt(&target, args.samples, 0xc11);
    println!("estimator      median (ms)");
    println!("h2-ping        {:>10.2}", ping::median(&comparison.h2_ping));
    println!("icmp           {:>10.2}", ping::median(&comparison.icmp));
    println!("tcp-rtt        {:>10.2}", ping::median(&comparison.tcp));
    println!(
        "h1-request     {:>10.2}",
        ping::median(&comparison.h1_request)
    );
}

fn pageload_cmd(args: &Args) {
    let Some(profile) = profile_by_name(&args.server) else {
        eprintln!("unknown server '{}'", args.server);
        std::process::exit(2);
    };
    let mut target = Target::testbed(profile, SiteSpec::page_with_assets(8, 20_000));
    target.link = LinkSpec::wan(args.delay_ms);
    let with_push = pageload::page_load(&target, true, 1);
    let without_push = pageload::page_load(&target, false, 1);
    println!(
        "push: {:.1} ms ({} assets pushed)   no push: {:.1} ms",
        with_push.load_time.as_millis_f64(),
        with_push.pushed_assets,
        without_push.load_time.as_millis_f64()
    );
    let _ = SimDuration::ZERO;
}

fn main() {
    let args = parse();
    match args.positional.first().map(String::as_str) {
        Some("characterize") => characterize(&args),
        Some("probe") => {
            let which = args.positional.get(1).cloned().unwrap_or_default();
            run_probe(&args, &which);
        }
        Some("survey") => survey(&args),
        Some("rtt") => rtt(&args),
        Some("pageload") => pageload_cmd(&args),
        Some("trace") => trace_cmd(&args),
        Some("list-servers") => println!("{}", SERVER_NAMES.join("\n")),
        _ => print_usage(),
    }
}
