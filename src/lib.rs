//! # h2ready — reproduction of *"Are HTTP/2 Servers Ready Yet?"* (ICDCS 2017)
//!
//! This facade crate re-exports the whole workspace so that examples and
//! downstream users can depend on a single crate:
//!
//! * [`wire`] — RFC 7540 binary framing ([`h2wire`]).
//! * [`hpack`] — RFC 7541 header compression ([`h2hpack`]).
//! * [`conn`] — connection/stream state machine, flow control and the
//!   priority dependency tree ([`h2conn`]).
//! * [`netsim`] — deterministic discrete-event network simulator.
//! * [`server`] — the configurable HTTP/2 server engine and the behavior
//!   profiles of the six servers the paper examines ([`h2server`]).
//! * [`scope`] — **H2Scope**, the paper's probing tool ([`h2scope`]).
//! * [`webpop`] — the synthetic top-1M website population.
//!
//! # Quickstart
//!
//! Probe a simulated Nginx server exactly as the paper probes its testbed:
//!
//! ```
//! use h2ready::server::{ServerProfile, SiteSpec};
//! use h2ready::scope::{H2Scope, testbed::Testbed};
//!
//! let testbed = Testbed::new(ServerProfile::nginx(), SiteSpec::benchmark());
//! let scope = H2Scope::new();
//! let report = scope.characterize(&testbed);
//! assert!(report.negotiation.alpn_h2);
//! assert!(!report.push.supported); // Nginx 1.9.15 did not implement push
//! ```

pub use h2conn as conn;
pub use h2dos as dos;
pub use h2hpack as hpack;
pub use h2scope as scope;
pub use h2server as server;
pub use h2wire as wire;
pub use netsim;
pub use webpop;
