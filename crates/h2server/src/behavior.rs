//! The server behavior quirk matrix.
//!
//! Every row of the paper's Table III that distinguishes real servers is a
//! field here. A profile (see [`crate::profiles`]) is just a filled-in
//! matrix; the engine consults it at each policy decision point. This is
//! the core modeling idea of the reproduction: RFC 7540 fixes the
//! *mechanics* (implemented in `h2conn`) but leaves the *reactions* to
//! violations open, and the paper's finding is precisely that deployed
//! servers chose different reactions.

use h2fault::ByzantineSpec;
use h2wire::settings::{DEFAULT_INITIAL_WINDOW_SIZE, DEFAULT_MAX_FRAME_SIZE};
use h2wire::{SettingId, Settings};
use netsim::time::SimDuration;
use netsim::TlsConfig;

/// How a server reacts to a protocol condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuirkAction {
    /// Silently ignore the offending frame (Nginx/Tengine on zero window
    /// updates).
    Ignore,
    /// Reset the affected stream.
    RstStream,
    /// Tear down the whole connection.
    Goaway,
}

/// How (and whether) the server's DATA scheduler honors the priority
/// tree.
///
/// The paper's wild scan (§V-E) found that sites fall into *four* groups,
/// not two: 1,147/2,187 sites order stream *completion* by priority,
/// only 46/117 order the *first* DATA frames, and just 38/111 do both —
/// so the reproduction needs the partial modes, not a boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityMode {
    /// Ignore priorities entirely; serve ready streams round-robin.
    None,
    /// Strict tree scheduling: a ready stream is always served before its
    /// descendants (passes both of H2Scope's ordering rules). This is
    /// what H2O, nghttpd and Apache do in the testbed.
    Strict,
    /// Each response's first chunk goes out in FCFS order (e.g. an
    /// eagerly-flushing front buffer), after which scheduling is strict —
    /// completion order follows priority but first-frame order does not.
    CompletionOrder,
    /// The first chunks are priority-ordered but the remainder is served
    /// round-robin — first-frame order follows priority, completion does
    /// not.
    FirstFrameOnly,
}

impl PriorityMode {
    /// Whether this mode would pass the paper's Table III priority test
    /// (which uses the last-DATA-frame rule).
    pub fn passes_table_iii(self) -> bool {
        matches!(self, PriorityMode::Strict | PriorityMode::CompletionOrder)
    }
}

/// The full behavior matrix for one server implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerBehavior {
    /// `Server:` response header value, e.g. `"nginx/1.9.15"`.
    pub server_name: String,
    /// TLS negotiation support (ALPN and/or NPN lists).
    pub tls: TlsConfig,
    /// Processes concurrent streams in parallel; `false` means strictly
    /// sequential request handling (responses never interleave).
    pub multiplexing: bool,
    /// Applies flow control to HEADERS frames as well as DATA — the
    /// LiteSpeed deviation (Table III row 5): response HEADERS are
    /// withheld until the stream window can cover the header block.
    pub fc_on_headers: bool,
    /// A weaker variant seen in the wild (§V-D2): HEADERS are withheld
    /// only while the stream window is exactly zero. Such sites answer the
    /// 1-octet-window probe normally but fail the zero-initial-window
    /// compliance test — the reason the paper's two flow-control tests
    /// disagree on counts.
    pub headers_gated_at_zero_window: bool,
    /// Negotiates h2 but never answers requests — the gap between the
    /// paper's negotiation counts (49,334 NPN / 47,966 ALPN sites) and its
    /// HEADERS-returning count (44,390).
    pub mute: bool,
    /// Site-specific response headers appended to every response (drives
    /// natural dispersion in the HPACK ratio CDFs of Figures 4/5).
    pub extra_response_headers: Vec<(String, String)>,
    /// Reaction to a zero-increment WINDOW_UPDATE on a stream
    /// (RFC says RST_STREAM).
    pub zero_window_update_stream: QuirkAction,
    /// Reaction to a zero-increment WINDOW_UPDATE on the connection
    /// (RFC says GOAWAY).
    pub zero_window_update_conn: QuirkAction,
    /// Debug text placed in GOAWAY frames for zero window updates (a few
    /// dozen sites in the paper sent "the window update shouldn't be
    /// zero" style messages).
    pub zero_window_debug: Option<String>,
    /// Reaction to a stream window exceeding 2^31-1 (RFC says RST_STREAM).
    pub large_window_update_stream: QuirkAction,
    /// Reaction to the connection window exceeding 2^31-1 (RFC says
    /// GOAWAY).
    pub large_window_update_conn: QuirkAction,
    /// Server push implemented.
    pub push: bool,
    /// Scheduling discipline with respect to the priority tree.
    pub priority_mode: PriorityMode,
    /// Reaction to a self-dependent stream (RFC says RST_STREAM; H2O,
    /// nghttpd and Apache send GOAWAY; LiteSpeed ignores).
    pub self_dependency: QuirkAction,
    /// Inserts *response* header fields into the HPACK dynamic table.
    /// `false` models Nginx/Tengine, whose repeated response header
    /// blocks never shrink (compression ratio 1 in Figures 4/5).
    pub hpack_index_responses: bool,
    /// Responds to PING (all measured servers do).
    pub ping: bool,
    /// The SETTINGS parameters announced at connection start.
    pub announced: Settings,
    /// Announce `INITIAL_WINDOW_SIZE = 0` and immediately re-open windows
    /// with WINDOW_UPDATE frames — the Nginx pattern behind the 3,072 /
    /// 7,499 zero entries in Table V.
    pub zero_window_then_update: Option<u32>,
    /// Sends zero-length DATA frames when flow-control-blocked instead of
    /// staying silent (a small population in §V-D1 did this).
    pub zero_len_data_when_blocked: bool,
    /// Adds a fresh `set-cookie` to every response, which makes the HPACK
    /// ratio exceed 1 (the paper filters r > 1; we must generate them to
    /// exercise that filter).
    pub cookie_injection: bool,
    /// Per-request application processing time (drives the HTTP/1.1 RTT
    /// estimator gap in Figure 6; PING replies skip it).
    pub processing_delay: SimDuration,
    /// Accept the HTTP/1.1 `Upgrade: h2c` cleartext upgrade (§IV-A of the
    /// paper; RFC 7540 §3.2). Browsers never use it, but H2Scope probes
    /// it on port 80.
    pub h2c_upgrade: bool,
    /// Honor any `SETTINGS_HEADER_TABLE_SIZE` the peer announces when
    /// sizing the response-header encoder table, instead of capping it at
    /// the 4,096-octet default. Obedient servers expose the HPACK
    /// memory-pressure vector sketched in the paper's discussion (§VI).
    pub honor_peer_header_table_size: bool,
    /// Injected byzantine misbehavior (fault campaigns only; `None` for
    /// every testbed profile). See [`h2fault::ByzantineSpec`].
    pub byzantine: Option<ByzantineSpec>,
    // ----- abuse-hardening quirks (robustness matrix, §VI) --------------
    //
    // RFC 7540 §10.5 only *permits* an endpoint to treat excessive
    // resource demand as ENHANCE_YOUR_CALM; it mandates nothing. Whether
    // a server bounds RST churn, CONTINUATION growth, SETTINGS floods or
    // stalled windows is therefore an implementation quirk exactly like
    // the Table III reactions — and the robustness probes re-measure it.
    /// Client RST_STREAM budget per connection: once exceeded the server
    /// sends GOAWAY(ENHANCE_YOUR_CALM). `None` = unbounded churn allowed
    /// (the rapid-reset exposure).
    pub rst_rate_limit: Option<u32>,
    /// Non-ack SETTINGS budget per connection, each of which costs the
    /// server an ack. `None` = unbounded (the SETTINGS-flood exposure).
    pub settings_rate_limit: Option<u32>,
    /// Cap on the octets buffered for one in-progress header block across
    /// HEADERS + CONTINUATION fragments; exceeding it tears the
    /// connection down. `None` = unbounded assembly (the
    /// CONTINUATION-flood exposure; §4.3 never bounds a block).
    pub continuation_cap: Option<u32>,
    /// How long a response may sit flow-control-blocked (or a request
    /// body may trickle) before the server gives up on the connection
    /// with GOAWAY(ENHANCE_YOUR_CALM). `None` = waits forever (the
    /// slow-read / slow-POST exposure).
    pub stall_timeout: Option<SimDuration>,
    /// Bound on a received request header list, measured as RFC 7540
    /// §6.5.2 defines `SETTINGS_MAX_HEADER_LIST_SIZE` (name + value + 32
    /// per field). Enforced internally rather than announced, matching
    /// the advisory nature of the setting. `None` = unbounded.
    pub header_list_limit: Option<u32>,
    /// Reaction when [`ServerBehavior::header_list_limit`] is exceeded
    /// (§10.5.1 leaves the choice open: stream error or connection
    /// error). Meaningless while the limit is `None`.
    pub oversized_header_list: QuirkAction,
}

impl ServerBehavior {
    /// The RFC 7540 reference behavior — the last column of Table III.
    pub fn rfc7540() -> ServerBehavior {
        ServerBehavior {
            server_name: "rfc7540-reference".into(),
            tls: TlsConfig::h2_full(),
            multiplexing: true,
            fc_on_headers: false,
            headers_gated_at_zero_window: false,
            mute: false,
            extra_response_headers: Vec::new(),
            zero_window_update_stream: QuirkAction::RstStream,
            zero_window_update_conn: QuirkAction::Goaway,
            zero_window_debug: None,
            large_window_update_stream: QuirkAction::RstStream,
            large_window_update_conn: QuirkAction::Goaway,
            push: true,
            priority_mode: PriorityMode::Strict,
            self_dependency: QuirkAction::RstStream,
            hpack_index_responses: true,
            ping: true,
            announced: Settings::new()
                .with(SettingId::MaxConcurrentStreams, 100)
                .with(SettingId::InitialWindowSize, DEFAULT_INITIAL_WINDOW_SIZE)
                .with(SettingId::MaxFrameSize, DEFAULT_MAX_FRAME_SIZE),
            zero_window_then_update: None,
            zero_len_data_when_blocked: false,
            cookie_injection: false,
            processing_delay: SimDuration::from_micros(500),
            h2c_upgrade: true,
            honor_peer_header_table_size: false,
            byzantine: None,
            // The reference endpoint implements RFC 7540 and nothing
            // more: the spec requires none of the abuse bounds, so the
            // reference has none — itself a row of the robustness matrix.
            rst_rate_limit: None,
            settings_rate_limit: None,
            continuation_cap: None,
            stall_timeout: None,
            header_list_limit: None,
            oversized_header_list: QuirkAction::Ignore,
        }
    }

    /// The announced value of a SETTINGS parameter, if present.
    pub fn announced_value(&self, id: SettingId) -> Option<u32> {
        self.announced.get(id)
    }

    /// Announced `SETTINGS_MAX_CONCURRENT_STREAMS` (None = unlimited).
    pub fn max_concurrent_streams(&self) -> Option<u32> {
        self.announced_value(SettingId::MaxConcurrentStreams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_reference_matches_table_iii_last_column() {
        let b = ServerBehavior::rfc7540();
        assert!(!b.fc_on_headers, "flow control must not gate HEADERS");
        assert_eq!(b.zero_window_update_stream, QuirkAction::RstStream);
        assert_eq!(b.zero_window_update_conn, QuirkAction::Goaway);
        assert_eq!(b.large_window_update_stream, QuirkAction::RstStream);
        assert_eq!(b.large_window_update_conn, QuirkAction::Goaway);
        assert!(b.push);
        assert_eq!(b.priority_mode, PriorityMode::Strict);
        assert_eq!(b.self_dependency, QuirkAction::RstStream);
        assert!(b.hpack_index_responses);
        assert!(b.ping);
    }

    #[test]
    fn rfc_reference_has_no_abuse_hardening() {
        // RFC 7540 mandates none of the abuse bounds (§10.5 is entirely
        // permissive), so the reference column of the robustness matrix
        // is all "no" — the finding that conformance alone does not
        // imply robustness.
        let b = ServerBehavior::rfc7540();
        assert_eq!(b.rst_rate_limit, None);
        assert_eq!(b.settings_rate_limit, None);
        assert_eq!(b.continuation_cap, None);
        assert_eq!(b.stall_timeout, None);
        assert_eq!(b.header_list_limit, None);
        assert_eq!(b.oversized_header_list, QuirkAction::Ignore);
    }

    #[test]
    fn announced_values_are_queryable() {
        let b = ServerBehavior::rfc7540();
        assert_eq!(b.max_concurrent_streams(), Some(100));
        assert_eq!(b.announced_value(SettingId::HeaderTableSize), None);
    }
}
