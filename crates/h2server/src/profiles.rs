//! Behavior profiles for the servers the paper examines.
//!
//! The six testbed profiles are filled in cell-for-cell from the paper's
//! Table III and §V-A; the four extra profiles cover server families that
//! only appear in the wild-scan population (Table IV, Figures 4/5). The
//! profiles are *inputs* to the reproduction — Table III itself is then
//! **re-measured** by running H2Scope against engines configured with
//! these profiles, which exercises the full probe pipeline.

use h2wire::{SettingId, Settings};
use netsim::time::SimDuration;
use netsim::TlsConfig;

use crate::behavior::{PriorityMode, QuirkAction, ServerBehavior};

/// A named server profile: behavior matrix plus display metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerProfile {
    /// Family name as it appears in the paper ("Nginx", "LiteSpeed", ...).
    pub name: String,
    /// Version string the paper tested.
    pub version: String,
    /// The behavior matrix.
    pub behavior: ServerBehavior,
}

impl ServerProfile {
    /// All six testbed profiles in the paper's column order.
    pub fn testbed() -> Vec<ServerProfile> {
        vec![
            ServerProfile::nginx(),
            ServerProfile::litespeed(),
            ServerProfile::h2o(),
            ServerProfile::nghttpd(),
            ServerProfile::tengine(),
            ServerProfile::apache(),
        ]
    }

    /// Nginx v1.9.15 (Table III column 1).
    pub fn nginx() -> ServerProfile {
        let mut b = ServerBehavior::rfc7540();
        b.server_name = "nginx/1.9.15".into();
        b.tls = TlsConfig::h2_full();
        b.zero_window_update_stream = QuirkAction::Ignore;
        b.zero_window_update_conn = QuirkAction::Ignore;
        b.push = false;
        b.priority_mode = PriorityMode::None;
        b.self_dependency = QuirkAction::RstStream;
        b.hpack_index_responses = false; // "support*" — partial HPACK
        b.announced = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 128)
            .with(SettingId::InitialWindowSize, 0)
            .with(SettingId::MaxFrameSize, 16_384);
        b.zero_window_then_update = Some(65_535);
        b.h2c_upgrade = false; // stock nginx 1.9 had no h2c upgrade path
                               // Robustness row: nginx bounds header growth and reaps stalled
                               // connections (http2_recv_timeout-style), but has no RST or
                               // SETTINGS budget — the rapid-reset exposure.
        b.continuation_cap = Some(32_768);
        b.stall_timeout = Some(SimDuration::from_secs(60));
        b.header_list_limit = Some(8_192);
        b.oversized_header_list = QuirkAction::Goaway;
        ServerProfile {
            name: "Nginx".into(),
            version: "1.9.15".into(),
            behavior: b,
        }
    }

    /// LiteSpeed v5.0.11 (column 2).
    pub fn litespeed() -> ServerProfile {
        let mut b = ServerBehavior::rfc7540();
        b.server_name = "LiteSpeed".into();
        b.tls = TlsConfig::h2_full();
        b.fc_on_headers = true; // the paper's headline LiteSpeed deviation
        b.zero_window_update_stream = QuirkAction::RstStream;
        b.zero_window_update_conn = QuirkAction::Goaway;
        b.push = false;
        b.priority_mode = PriorityMode::None;
        b.self_dependency = QuirkAction::Ignore;
        b.hpack_index_responses = true;
        b.announced = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 100)
            .with(SettingId::InitialWindowSize, 65_536)
            .with(SettingId::MaxFrameSize, 16_384);
        b.h2c_upgrade = false;
        // Robustness row: LiteSpeed only reaps stalled connections;
        // everything else is unbounded.
        b.stall_timeout = Some(SimDuration::from_secs(45));
        ServerProfile {
            name: "LiteSpeed".into(),
            version: "5.0.11".into(),
            behavior: b,
        }
    }

    /// H2O v1.6.2 (column 3).
    pub fn h2o() -> ServerProfile {
        let mut b = ServerBehavior::rfc7540();
        b.server_name = "h2o/1.6.2".into();
        b.tls = TlsConfig::h2_full();
        b.zero_window_update_stream = QuirkAction::RstStream;
        b.zero_window_update_conn = QuirkAction::Goaway;
        b.push = true;
        b.priority_mode = PriorityMode::Strict;
        b.self_dependency = QuirkAction::Goaway;
        b.hpack_index_responses = true;
        b.announced = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 100)
            .with(SettingId::InitialWindowSize, 16_777_216)
            .with(SettingId::MaxFrameSize, 16_384);
        // Robustness row: H2O budgets client resets and bounds request
        // header lists per stream, but never reaps stalled windows.
        b.rst_rate_limit = Some(400);
        b.header_list_limit = Some(10_240);
        b.oversized_header_list = QuirkAction::RstStream;
        ServerProfile {
            name: "H2O".into(),
            version: "1.6.2".into(),
            behavior: b,
        }
    }

    /// nghttpd v1.12.0 (column 4).
    pub fn nghttpd() -> ServerProfile {
        let mut b = ServerBehavior::rfc7540();
        b.server_name = "nghttpd nghttp2/1.12.0".into();
        b.tls = TlsConfig::h2_full();
        b.zero_window_update_stream = QuirkAction::Goaway; // stricter than RFC
        b.zero_window_update_conn = QuirkAction::Goaway;
        b.push = true;
        b.priority_mode = PriorityMode::Strict;
        b.self_dependency = QuirkAction::Goaway;
        b.hpack_index_responses = true;
        b.announced = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 100)
            .with(SettingId::InitialWindowSize, 65_535)
            .with(SettingId::MaxFrameSize, 16_384);
        // Robustness row: nghttpd is the most hardened testbed server —
        // generous but real budgets on resets, SETTINGS churn, header
        // block growth and list size (nghttp2's rate-limit lineage).
        b.rst_rate_limit = Some(1_000);
        b.settings_rate_limit = Some(1_000);
        b.continuation_cap = Some(65_536);
        b.header_list_limit = Some(10_240);
        b.oversized_header_list = QuirkAction::Goaway;
        ServerProfile {
            name: "nghttpd".into(),
            version: "1.12.0".into(),
            behavior: b,
        }
    }

    /// Tengine v2.1.2 (column 5) — an Nginx derivative and it shows.
    pub fn tengine() -> ServerProfile {
        let mut profile = ServerProfile::nginx();
        profile.name = "Tengine".into();
        profile.version = "2.1.2".into();
        profile.behavior.server_name = "Tengine/2.1.2".into();
        // Robustness row: the fork predates nginx's CONTINUATION bound,
        // so Tengine differs from its parent on exactly that cell.
        profile.behavior.continuation_cap = None;
        ServerProfile { ..profile }
    }

    /// Apache httpd v2.4.23 with mod_http2 (column 6).
    pub fn apache() -> ServerProfile {
        let mut b = ServerBehavior::rfc7540();
        b.server_name = "Apache/2.4.23".into();
        b.tls = TlsConfig::h2_alpn_only(); // "Apache doesn't support NPN over TLS"
        b.zero_window_update_stream = QuirkAction::Goaway;
        b.zero_window_update_conn = QuirkAction::Goaway;
        b.push = true;
        b.priority_mode = PriorityMode::Strict;
        b.self_dependency = QuirkAction::Goaway;
        b.hpack_index_responses = true;
        b.announced = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 100)
            .with(SettingId::InitialWindowSize, 65_535)
            .with(SettingId::MaxFrameSize, 16_384);
        // Robustness row: Apache hardens everything except RST churn —
        // tight header caps, a SETTINGS budget and the shortest stalled-
        // connection timeout in the testbed.
        b.settings_rate_limit = Some(100);
        b.continuation_cap = Some(16_384);
        b.stall_timeout = Some(SimDuration::from_secs(30));
        b.header_list_limit = Some(8_192);
        b.oversized_header_list = QuirkAction::RstStream;
        ServerProfile {
            name: "Apache".into(),
            version: "2.4.23".into(),
            behavior: b,
        }
    }

    /// The RFC 7540 reference endpoint — Table III's final column.
    pub fn rfc7540() -> ServerProfile {
        ServerProfile {
            name: "RFC 7540".into(),
            version: "reference".into(),
            behavior: ServerBehavior::rfc7540(),
        }
    }

    // ----- wild-scan-only families --------------------------------------

    /// GSE, Google's proprietary server: best HPACK ratios in Figures 4/5
    /// (all below 0.3).
    pub fn gse() -> ServerProfile {
        let mut b = ServerBehavior::rfc7540();
        b.server_name = "GSE".into();
        b.tls = TlsConfig::h2_full();
        b.push = false;
        b.priority_mode = PriorityMode::Strict;
        b.hpack_index_responses = true;
        b.announced = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 100)
            .with(SettingId::InitialWindowSize, 1_048_576)
            .with(SettingId::MaxFrameSize, 16_777_215)
            .with(SettingId::MaxHeaderListSize, 16_384);
        b.h2c_upgrade = false;
        // GSE actually enforces the header-list bound it announces.
        b.header_list_limit = Some(16_384);
        b.oversized_header_list = QuirkAction::RstStream;
        ServerProfile {
            name: "GSE".into(),
            version: "-".into(),
            behavior: b,
        }
    }

    /// cloudflare-nginx: an Nginx derivative with Cloudflare patches
    /// (notably server push support, which stock Nginx 1.9 lacked).
    pub fn cloudflare_nginx() -> ServerProfile {
        let mut profile = ServerProfile::nginx();
        profile.name = "cloudflare-nginx".into();
        profile.version = "-".into();
        profile.behavior.server_name = "cloudflare-nginx".into();
        profile.behavior.push = true;
        profile.behavior.announced = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 256)
            .with(SettingId::InitialWindowSize, 2_147_483_647)
            .with(SettingId::MaxFrameSize, 16_777_215);
        profile.behavior.zero_window_then_update = None;
        profile
    }

    /// IdeaWebServer v0.80 (a Polish hosting platform): worst HPACK
    /// ratios alongside Nginx in Figures 4/5.
    pub fn ideaweb() -> ServerProfile {
        let mut b = ServerBehavior::rfc7540();
        b.server_name = "IdeaWebServer/v0.80".into();
        b.tls = TlsConfig::h2_npn_only();
        b.push = false;
        b.priority_mode = PriorityMode::None;
        b.hpack_index_responses = false;
        b.zero_window_update_stream = QuirkAction::Ignore;
        b.zero_window_update_conn = QuirkAction::Ignore;
        b.announced = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 100)
            .with(SettingId::InitialWindowSize, 65_535)
            .with(SettingId::MaxFrameSize, 16_384)
            .with(SettingId::MaxHeaderListSize, 16_384);
        ServerProfile {
            name: "IdeaWebServer".into(),
            version: "0.80".into(),
            behavior: b,
        }
    }

    /// Tengine/Aserver — the tmall.com fleet that renamed itself between
    /// the paper's two experiments.
    pub fn tengine_aserver() -> ServerProfile {
        let mut profile = ServerProfile::tengine();
        profile.name = "Tengine/Aserver".into();
        profile.behavior.server_name = "Tengine/Aserver".into();
        profile.behavior.cookie_injection = true; // tmall sets per-response cookies
        profile
    }

    /// A convenience: the server's processing delay, used by RTT probes.
    pub fn processing_delay(&self) -> SimDuration {
        self.behavior.processing_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_six_profiles_in_paper_order() {
        let names: Vec<String> = ServerProfile::testbed()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            ["Nginx", "LiteSpeed", "H2O", "nghttpd", "Tengine", "Apache"]
        );
    }

    #[test]
    fn table_iii_zero_window_update_row() {
        use QuirkAction::*;
        let expected_stream = [Ignore, RstStream, RstStream, Goaway, Ignore, Goaway];
        let expected_conn = [Ignore, Goaway, Goaway, Goaway, Ignore, Goaway];
        for (profile, (s, c)) in ServerProfile::testbed()
            .iter()
            .zip(expected_stream.iter().zip(expected_conn.iter()))
        {
            assert_eq!(
                &profile.behavior.zero_window_update_stream, s,
                "{}",
                profile.name
            );
            assert_eq!(
                &profile.behavior.zero_window_update_conn, c,
                "{}",
                profile.name
            );
        }
    }

    #[test]
    fn table_iii_push_and_priority_rows() {
        let push = [false, false, true, true, false, true];
        let priority = [false, false, true, true, false, true];
        for (profile, (p, pr)) in ServerProfile::testbed()
            .iter()
            .zip(push.iter().zip(priority.iter()))
        {
            assert_eq!(&profile.behavior.push, p, "{} push", profile.name);
            assert_eq!(
                &profile.behavior.priority_mode.passes_table_iii(),
                pr,
                "{} priority",
                profile.name
            );
        }
    }

    #[test]
    fn table_iii_self_dependency_row() {
        use QuirkAction::*;
        let expected = [RstStream, Ignore, Goaway, Goaway, RstStream, Goaway];
        for (profile, e) in ServerProfile::testbed().iter().zip(expected.iter()) {
            assert_eq!(&profile.behavior.self_dependency, e, "{}", profile.name);
        }
    }

    #[test]
    fn only_apache_lacks_npn() {
        for profile in ServerProfile::testbed() {
            let has_npn = profile.behavior.tls.npn.is_some();
            assert_eq!(has_npn, profile.name != "Apache", "{}", profile.name);
        }
    }

    #[test]
    fn only_litespeed_flow_controls_headers() {
        for profile in ServerProfile::testbed() {
            assert_eq!(
                profile.behavior.fc_on_headers,
                profile.name == "LiteSpeed",
                "{}",
                profile.name
            );
        }
    }

    #[test]
    fn robustness_rows_genuinely_differ() {
        // The abuse-hardening matrix must discriminate: every testbed
        // profile has a distinct (rst, settings, continuation, stall,
        // header-list) row, and the RFC reference has none at all.
        let mut rows = Vec::new();
        for profile in ServerProfile::testbed() {
            let b = &profile.behavior;
            rows.push((
                b.rst_rate_limit,
                b.settings_rate_limit,
                b.continuation_cap,
                b.stall_timeout,
                b.header_list_limit,
                b.oversized_header_list,
            ));
        }
        for (i, a) in rows.iter().enumerate() {
            for (j, b) in rows.iter().enumerate() {
                if i < j {
                    assert_ne!(a, b, "rows {i} and {j} are identical");
                }
            }
        }
        let rfc = ServerProfile::rfc7540().behavior;
        assert!(
            rfc.rst_rate_limit.is_none()
                && rfc.settings_rate_limit.is_none()
                && rfc.continuation_cap.is_none()
                && rfc.stall_timeout.is_none()
                && rfc.header_list_limit.is_none(),
            "the reference column is all-no"
        );
    }

    #[test]
    fn hardening_limits_stay_under_the_probe_volumes() {
        // The abuse probes send fixed volumes (1,200 resets, 1,200
        // SETTINGS, ~98 KiB of CONTINUATION, a 120 s stall, a ~17 KiB
        // header list); every configured limit must sit below those
        // volumes or the probe cannot discriminate yes from no.
        for profile in ServerProfile::testbed() {
            let b = &profile.behavior;
            if let Some(limit) = b.rst_rate_limit {
                assert!(limit < 1_200, "{}", profile.name);
            }
            if let Some(limit) = b.settings_rate_limit {
                assert!(limit < 1_200, "{}", profile.name);
            }
            if let Some(cap) = b.continuation_cap {
                assert!(cap < 98_304, "{}", profile.name);
            }
            if let Some(timeout) = b.stall_timeout {
                assert!(timeout < SimDuration::from_secs(120), "{}", profile.name);
            }
            if let Some(limit) = b.header_list_limit {
                assert!(limit < 17_000, "{}", profile.name);
            }
        }
    }

    #[test]
    fn nginx_family_announces_zero_window_then_updates() {
        assert_eq!(
            ServerProfile::nginx().behavior.zero_window_then_update,
            Some(65_535)
        );
        assert_eq!(
            ServerProfile::tengine().behavior.zero_window_then_update,
            Some(65_535)
        );
        assert_eq!(
            ServerProfile::apache().behavior.zero_window_then_update,
            None
        );
    }
}
