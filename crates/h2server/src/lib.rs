//! # h2server — behavior-driven HTTP/2 server engine
//!
//! One server engine ([`H2Server`]), ten personalities. The engine
//! implements the full HTTP/2 server role on top of
//! [`h2conn::ConnectionCore`]; every place where RFC 7540 leaves reactions
//! open (or where real servers deviate from it) is a knob in the
//! [`ServerBehavior`] matrix. The [`profiles`] module fills in that matrix
//! for the six servers the paper characterizes in its testbed (Table III)
//! plus the wild-scan families from Table IV — and a strict
//! [`ServerProfile::rfc7540`] reference corresponding to Table III's last
//! column.
//!
//! ```
//! use h2server::{H2Server, ServerProfile, SiteSpec};
//! use netsim::{LinkSpec, Pipe};
//!
//! let server = H2Server::new(ServerProfile::nginx(), SiteSpec::benchmark());
//! let mut pipe = Pipe::connect(server, LinkSpec::lan(), 7);
//! pipe.client_send(h2wire::CONNECTION_PREFACE);
//! let greeting = pipe.run_to_quiescence();
//! assert!(!greeting.is_empty()); // server SETTINGS (+ Nginx's WINDOW_UPDATE)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod engine;
pub mod profiles;
pub mod site;

pub use behavior::{QuirkAction, ServerBehavior};
pub use engine::H2Server;
pub use profiles::ServerProfile;
pub use site::{Resource, SiteSpec};
