//! The HTTP/2 server engine: one implementation, parameterized by a
//! [`ServerBehavior`] matrix, able to impersonate every server in the
//! paper's testbed (plus the RFC reference).

// h2check: allow-file(index) — queue indices bounded by the scan loops; byte offsets length-checked

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use bytes::Bytes;

use h2conn::{ConnectionCore, CoreEvent, EffectiveSettings, Role, WindowScope};
use h2hpack::{EncoderOptions, Header, IndexingPolicy};
use h2wire::{
    encode_all_into, ErrorCode, Frame, GoawayFrame, PingFrame, RstStreamFrame, SettingsFrame,
    StreamId, WindowUpdateFrame, CONNECTION_PREFACE,
};
use netsim::pipe::ByteEndpoint;
use netsim::time::{SimDuration, SimTime};

use crate::behavior::{QuirkAction, ServerBehavior};
use crate::profiles::ServerProfile;
use crate::site::SiteSpec;

/// Fixed `date` header (virtual time has no calendar).
const DATE_HEADER: &str = "Tue, 05 Jul 2016 12:00:00 GMT";

/// Index of the first `\r\n\r\n` in `buf`, if complete.
fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// `true` when a request head announces a body (POST/PUT-style methods);
/// such requests are answered only after END_STREAM.
fn has_request_body(headers: &[Header]) -> bool {
    headers
        .iter()
        .any(|h| h.name == ":method" && h.value != "GET" && h.value != "HEAD")
}

#[derive(Debug)]
struct QueuedResponse {
    stream: StreamId,
    /// Response headers not yet sent (None once on the wire).
    headers: Option<Vec<Header>>,
    body: Bytes,
    offset: usize,
    /// FIFO arrival order for non-priority scheduling.
    seq: u64,
    /// A zero-length DATA marker has been emitted while blocked.
    sent_zero_marker: bool,
    /// Virtual time the response was queued — the stall-timeout clock.
    enqueued_at: SimTime,
}

/// A request whose body has not finished arriving (slow-POST tracking):
/// the response is deferred until END_STREAM, and the held state is
/// exactly what the attack pins.
#[derive(Debug)]
struct PendingPost {
    headers: Vec<Header>,
    /// Virtual time the request head arrived — the stall-timeout clock.
    started: SimTime,
}

impl QueuedResponse {
    fn remaining(&self) -> usize {
        self.body.len() - self.offset
    }
    fn body_ready(&self) -> bool {
        self.headers.is_none() && self.remaining() > 0
    }
}

/// The behavior-driven HTTP/2 server endpoint.
///
/// Implements [`ByteEndpoint`], so it plugs directly into a
/// [`netsim::Pipe`]. All protocol mechanics live in
/// [`h2conn::ConnectionCore`]; this engine only decides *policy* — what to
/// do at each condition the core reports — by consulting its
/// [`ServerBehavior`].
#[derive(Debug)]
pub struct H2Server {
    profile: Arc<ServerProfile>,
    site: Arc<SiteSpec>,
    core: ConnectionCore,
    preface: Vec<u8>,
    preface_done: bool,
    queue: Vec<QueuedResponse>,
    next_seq: u64,
    rejected: HashSet<u32>,
    closed: bool,
    goaway_sent: bool,
    last_delay: SimDuration,
    cookie_counter: u64,
    /// Round-robin cursor for non-priority scheduling.
    rr_cursor: usize,
    /// Cleartext (port-80) mode: no greeting until an h2c upgrade or a
    /// prior-knowledge preface arrives (RFC 7540 §3.2/§3.4).
    cleartext: bool,
    /// Request headers carried by an accepted h2c upgrade, served on
    /// stream 1 once the preface completes.
    pending_upgrade: Option<Vec<Header>>,
    /// Total octets emitted so far (byzantine truncation/reset bookkeeping).
    emitted: u64,
    /// A byzantine truncation fired: the server says nothing more, ever.
    silenced: bool,
    /// A byzantine reset is due: the transport should cut the connection.
    reset_pending: bool,
    /// Reusable frame buffer for [`H2Server::ingest`], so steady-state
    /// exchanges stop allocating a fresh `Vec<Frame>` per segment.
    frame_scratch: Vec<Frame>,
    /// Spent response-header lists, recycled by the pump once their
    /// HEADERS frame is encoded. `response_headers` rebuilds entries in
    /// place (reusing each `String`'s capacity) instead of allocating a
    /// fresh list per response.
    hdr_pool: Vec<Vec<Header>>,
    /// Latest virtual time observed from the transport (drives the
    /// stall-timeout quirk; frozen at ZERO until traffic arrives).
    now: SimTime,
    /// Client RST_STREAM frames received (rapid-reset accounting).
    rst_seen: u32,
    /// Non-ack SETTINGS frames received (SETTINGS-flood accounting).
    settings_seen: u32,
    /// Requests whose bodies are still arriving, by stream id (BTreeMap
    /// for deterministic sweep order).
    pending_posts: BTreeMap<u32, PendingPost>,
}

impl H2Server {
    /// Creates a server for `profile` serving `site`. Accepts either owned
    /// values or `Arc`s; scan campaigns pass `Arc`s so every connection is
    /// a pointer-bump instead of a deep clone.
    pub fn new(profile: impl Into<Arc<ServerProfile>>, site: impl Into<Arc<SiteSpec>>) -> H2Server {
        let profile = profile.into();
        let site = site.into();
        let behavior = &profile.behavior;
        let mut local = EffectiveSettings::default();
        local.apply(&behavior.announced);
        let encoder = EncoderOptions {
            indexing: if behavior.hpack_index_responses {
                IndexingPolicy::Always
            } else {
                IndexingPolicy::Never
            },
            ..EncoderOptions::default()
        };
        let mut core = ConnectionCore::new(Role::Server, local, encoder);
        if behavior.honor_peer_header_table_size {
            core.set_encoder_table_cap(u32::MAX);
        }
        H2Server {
            profile,
            site,
            core,
            preface: Vec::new(),
            preface_done: false,
            queue: Vec::new(),
            next_seq: 0,
            rejected: HashSet::new(),
            closed: false,
            goaway_sent: false,
            last_delay: SimDuration::ZERO,
            cookie_counter: 0,
            rr_cursor: 0,
            cleartext: false,
            pending_upgrade: None,
            emitted: 0,
            silenced: false,
            reset_pending: false,
            frame_scratch: Vec::new(),
            hdr_pool: Vec::new(),
            now: SimTime::ZERO,
            rst_seen: 0,
            settings_seen: 0,
            pending_posts: BTreeMap::new(),
        }
    }

    /// Attaches an observability handle to the connection core, so frames
    /// this server handles (and its HPACK eviction pressure) are counted.
    /// The default `Obs::off()` records nothing.
    pub fn set_obs(&mut self, obs: h2obs::Obs) {
        self.core.set_obs(obs);
    }

    /// Creates a *cleartext* server (the port-80 deployment): it stays
    /// silent on connect and speaks HTTP/1.1 until the client either
    /// upgrades via `Upgrade: h2c` or opens with the HTTP/2 preface
    /// directly (prior knowledge).
    pub fn new_cleartext(
        profile: impl Into<Arc<ServerProfile>>,
        site: impl Into<Arc<SiteSpec>>,
    ) -> H2Server {
        let mut server = H2Server::new(profile, site);
        server.cleartext = true;
        server
    }

    /// The profile this engine impersonates.
    pub fn profile(&self) -> &ServerProfile {
        &self.profile
    }

    /// The behavior matrix in force.
    pub fn behavior(&self) -> &ServerBehavior {
        &self.profile.behavior
    }

    /// The site being served.
    pub fn site(&self) -> &SiteSpec {
        &self.site
    }

    /// Protocol state access for tests and probes running in testbed mode.
    pub fn core(&self) -> &ConnectionCore {
        &self.core
    }

    /// `true` once the engine sent GOAWAY or observed a fatal error.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Response octets queued but not yet released by flow control — the
    /// memory an attacker pins with the slow-receiver pattern (§VI).
    pub fn pending_response_octets(&self) -> u64 {
        self.queue.iter().map(|q| q.remaining() as u64).sum()
    }

    /// Octets currently held by the response-header encoder's dynamic
    /// table (the HPACK memory-pressure metric).
    pub fn encoder_table_octets(&self) -> u64 {
        u64::from(self.core.hpack_encoder().table().size())
    }

    /// Requests whose bodies have not finished arriving — the state a
    /// slow-POST attacker pins (header lists held per open request).
    pub fn pending_request_count(&self) -> usize {
        self.pending_posts.len()
    }

    /// Client RST_STREAM frames seen so far (rapid-reset accounting).
    pub fn rst_frames_seen(&self) -> u32 {
        self.rst_seen
    }

    fn goaway(&mut self, code: ErrorCode, debug: Option<&str>, out: &mut Vec<Frame>) {
        if self.goaway_sent {
            return;
        }
        self.goaway_sent = true;
        self.closed = true;
        out.push(Frame::Goaway(GoawayFrame {
            last_stream_id: self.core.streams().highest_client_id(),
            code,
            debug_data: debug
                .map(|d| Bytes::from(d.as_bytes().to_vec()))
                .unwrap_or_default(),
        }));
    }

    fn rst(&mut self, stream: StreamId, code: ErrorCode, out: &mut Vec<Frame>) {
        self.core.reset_stream(stream, code);
        self.queue.retain(|q| q.stream != stream);
        out.push(Frame::RstStream(RstStreamFrame {
            stream_id: stream,
            code,
        }));
    }

    fn apply_quirk(
        &mut self,
        action: QuirkAction,
        scope: WindowScope,
        code: ErrorCode,
        debug: Option<String>,
        out: &mut Vec<Frame>,
    ) {
        match (action, scope) {
            (QuirkAction::Ignore, _) => {}
            (QuirkAction::RstStream, WindowScope::Stream(stream)) => self.rst(stream, code, out),
            // A "reset" reaction at connection scope degrades to GOAWAY.
            (QuirkAction::RstStream, WindowScope::Connection) | (QuirkAction::Goaway, _) => {
                self.goaway(code, debug.as_deref(), out);
            }
        }
    }

    fn handle_request(&mut self, stream: StreamId, headers: &[Header], out: &mut Vec<Frame>) {
        if self.rejected.contains(&stream.value()) || self.behavior().mute {
            return;
        }
        self.last_delay = self.behavior().processing_delay;
        let path = headers
            .iter()
            .find(|h| h.name == ":path")
            .map_or("/", |h| h.value.as_str());

        // Server push: promise before the response headers (RFC 7540
        // §8.2.1 requires the PUSH_PROMISE to precede referencing content).
        let mut pushes: Vec<(StreamId, Vec<Header>, Bytes, String)> = Vec::new();
        if self.behavior().push && self.core.remote_settings().enable_push {
            if let Some(assets) = self.site.push_manifest.get(path).cloned() {
                for asset in assets {
                    let Some(resource) = self.site.resource(&asset) else {
                        continue;
                    };
                    let body = resource.body.clone();
                    let content_type = resource.content_type.clone();
                    let request_headers = vec![
                        Header::new(":method", "GET"),
                        Header::new(":scheme", "https"),
                        Header::new(":path", asset.clone()),
                        Header::new(":authority", self.site.authority.clone()),
                    ];
                    let (promised, frame) = self.core.encode_push_promise(stream, &request_headers);
                    out.push(frame);
                    pushes.push((promised, request_headers, body, content_type));
                }
            }
        }

        let (status, body, content_type) = match self.site.resource(path) {
            Some(r) => ("200", r.body.clone(), r.content_type.clone()),
            None => (
                "404",
                Bytes::from_static(b"not found"),
                "text/plain".to_string(),
            ),
        };
        let response_headers = self.response_headers(status, &content_type, body.len());
        self.enqueue_response(stream, response_headers, body);

        for (promised, _request, body, content_type) in pushes {
            let headers = self.response_headers("200", &content_type, body.len());
            self.enqueue_response(promised, headers, body);
        }
    }

    /// Overwrites slot `*slot` of `headers` in place (reusing both
    /// `String`s' capacity), growing the list if the pooled vec is
    /// shorter than this response. Advances the slot cursor.
    fn set_hdr(headers: &mut Vec<Header>, slot: &mut usize, name: &str, value: &str) {
        if let Some(h) = headers.get_mut(*slot) {
            h.name.clear();
            h.name.push_str(name);
            h.value.clear();
            h.value.push_str(value);
        } else {
            headers.push(Header::new(name, value));
        }
        *slot += 1;
    }

    fn response_headers(
        &mut self,
        status: &str,
        content_type: &str,
        content_length: usize,
    ) -> Vec<Header> {
        use std::fmt::Write as _;
        let mut headers = self.hdr_pool.pop().unwrap_or_default();
        let mut slot = 0;
        Self::set_hdr(&mut headers, &mut slot, ":status", status);
        Self::set_hdr(
            &mut headers,
            &mut slot,
            "server",
            &self.behavior().server_name,
        );
        Self::set_hdr(&mut headers, &mut slot, "date", DATE_HEADER);
        Self::set_hdr(&mut headers, &mut slot, "content-type", content_type);
        Self::set_hdr(&mut headers, &mut slot, "content-length", "");
        let _ = write!(headers[slot - 1].value, "{content_length}");
        Self::set_hdr(&mut headers, &mut slot, "x-frame-options", "SAMEORIGIN");
        Self::set_hdr(&mut headers, &mut slot, "cache-control", "max-age=3600");
        for (name, value) in &self.behavior().extra_response_headers {
            Self::set_hdr(&mut headers, &mut slot, name, value);
        }
        if self.behavior().cookie_injection {
            self.cookie_counter += 1;
            // The paper's §V-G filter exists because some sites add cookies
            // starting from the *second* response, making later HEADERS
            // larger than the first and pushing the ratio above 1.
            if self.cookie_counter > 1 {
                Self::set_hdr(&mut headers, &mut slot, "set-cookie", "");
                let _ = write!(
                    headers[slot - 1].value,
                    "session={:016x}; Path=/",
                    self.cookie_counter * 0x9e37_79b9
                );
            }
        }
        headers.truncate(slot);
        headers
    }

    fn enqueue_response(&mut self, stream: StreamId, headers: Vec<Header>, body: Bytes) {
        self.next_seq += 1;
        self.queue.push(QueuedResponse {
            stream,
            headers: Some(headers),
            body,
            offset: 0,
            seq: self.next_seq,
            sent_zero_marker: false,
            enqueued_at: self.now,
        });
        self.queue.sort_by_key(|q| q.seq);
    }

    /// The stall-timeout quirk: a server that reaps connections whose
    /// responses have sat flow-control-blocked (or whose request bodies
    /// have trickled) past its patience. Checked whenever traffic gives
    /// the engine a chance to observe the clock — which is exactly how
    /// event-driven servers implement it.
    fn check_stalls(&mut self, out: &mut Vec<Frame>) {
        let Some(timeout) = self.behavior().stall_timeout else {
            return;
        };
        let now = self.now;
        let stalled = self.queue.iter().any(|q| now >= q.enqueued_at + timeout)
            || self
                .pending_posts
                .values()
                .any(|p| now >= p.started + timeout);
        if stalled {
            self.goaway(
                ErrorCode::EnhanceYourCalm,
                Some("connection stalled beyond patience"),
                out,
            );
        }
    }

    /// Estimated wire size of a header list (upper bound, used only for
    /// the LiteSpeed flow-control-on-HEADERS quirk).
    fn estimate_block_size(headers: &[Header]) -> i64 {
        headers
            .iter()
            .map(|h| (h.name.len() + h.value.len() + 4) as i64)
            .sum()
    }

    /// Sends everything currently sendable: response headers first, then
    /// DATA according to the scheduling discipline. A sequential
    /// (non-multiplexing) server repeats the cycle: finishing one response
    /// unblocks the head-of-line for the next.
    fn pump(&mut self, out: &mut Vec<Frame>) {
        loop {
            let before = out.len();
            self.pump_once(out);
            let progressed = out.len() > before;
            if !progressed || self.behavior().multiplexing {
                return;
            }
        }
    }

    fn pump_once(&mut self, out: &mut Vec<Frame>) {
        if self.closed {
            return;
        }
        self.check_stalls(out);
        if self.closed {
            return;
        }
        // Phase 1: release response HEADERS.
        let fc_on_headers = self.behavior().fc_on_headers;
        let sequential = !self.behavior().multiplexing;
        let mut i = 0;
        while i < self.queue.len() {
            if sequential && i > 0 {
                break; // strictly one response in flight
            }
            if self.queue[i].headers.is_some() {
                let stream = self.queue[i].stream;
                // h2check: allow(panic) — is_some() checked in the branch guard
                let headers = self.queue[i].headers.as_ref().expect("checked");
                let permitted = if fc_on_headers {
                    let estimate = Self::estimate_block_size(headers);
                    let stream_window = self.core.streams().get(stream).map_or(
                        i64::from(self.core.remote_settings().initial_window_size),
                        |s| s.send_window.available(),
                    );
                    let conn_window = self.core.connection_send_window();
                    stream_window >= estimate && conn_window >= estimate
                } else if self.behavior().headers_gated_at_zero_window {
                    let stream_window = self.core.streams().get(stream).map_or(
                        i64::from(self.core.remote_settings().initial_window_size),
                        |s| s.send_window.available(),
                    );
                    stream_window > 0
                } else {
                    true
                };
                if permitted {
                    // h2check: allow(panic) — is_some() checked in the branch guard
                    let headers = self.queue[i].headers.take().expect("checked");
                    let end_stream = self.queue[i].body.is_empty();
                    out.extend(self.core.encode_headers(stream, &headers, end_stream, None));
                    self.hdr_pool.push(headers);
                    if end_stream {
                        self.queue.remove(i);
                        continue;
                    }
                }
            }
            i += 1;
        }
        // Phase 2: DATA, per the profile's scheduling discipline.
        match self.behavior().priority_mode {
            crate::behavior::PriorityMode::Strict => self.pump_priority(out),
            crate::behavior::PriorityMode::None => self.pump_round_robin(out, sequential),
            crate::behavior::PriorityMode::CompletionOrder => {
                // First chunk of each response flushes FCFS...
                self.pump_first_chunks_fifo(out);
                // ...then strict priority governs completion order.
                self.pump_priority(out);
            }
            crate::behavior::PriorityMode::FirstFrameOnly => {
                // First chunks follow the tree...
                self.pump_first_chunks_by_tree(out);
                // ...then the remainder is plain round-robin.
                self.pump_round_robin(out, sequential);
            }
        }
        // Phase 3: zero-length DATA markers for blocked streams (quirk).
        if self.behavior().zero_len_data_when_blocked {
            for q in &mut self.queue {
                if q.body_ready() && !q.sent_zero_marker {
                    let stream = q.stream;
                    let window = self
                        .core
                        .streams()
                        .get(stream)
                        .map_or(0, |s| s.send_window.available());
                    if window <= 0 || self.core.connection_send_window() <= 0 {
                        q.sent_zero_marker = true;
                        out.push(Frame::Data(h2wire::DataFrame {
                            stream_id: stream,
                            data: Bytes::new(),
                            end_stream: false,
                            pad_len: None,
                        }));
                    }
                }
            }
        }
        self.queue
            .retain(|q| q.headers.is_some() || q.remaining() > 0);
    }

    fn send_chunk(&mut self, index: usize, out: &mut Vec<Frame>) -> bool {
        let stream = self.queue[index].stream;
        let sendable = self.core.sendable_on(stream);
        let remaining = self.queue[index].remaining();
        // Byzantine trickle: dribble one tiny DATA chunk per exchange,
        // each charged a long processing delay, so the transfer crawls in
        // simulated time and only a probe deadline ends it.
        if let Some(trickle) = self.byz().trickle_data {
            if sendable == 0 {
                return false;
            }
            let chunk = (sendable as usize).min(remaining).min(trickle.max(1));
            let offset = self.queue[index].offset;
            let data = self.queue[index].body.slice(offset..offset + chunk);
            let end_stream = chunk == remaining;
            out.push(self.core.send_data(stream, data, end_stream));
            self.queue[index].offset += chunk;
            self.last_delay = self.last_delay + self.byz().trickle_delay;
            return false;
        }
        // The buggy population from §V-D1: instead of trickling data
        // through a *small* window, emit one zero-length DATA and stall
        // until the window grows. A window big enough for a useful chunk
        // (or the whole remainder) is used normally.
        const TRICKLE_THRESHOLD: usize = 1_024;
        if self.behavior().zero_len_data_when_blocked
            && (sendable as usize) < remaining.min(TRICKLE_THRESHOLD)
        {
            if !self.queue[index].sent_zero_marker {
                self.queue[index].sent_zero_marker = true;
                out.push(Frame::Data(h2wire::DataFrame {
                    stream_id: stream,
                    data: Bytes::new(),
                    end_stream: false,
                    pad_len: None,
                }));
            }
            return false;
        }
        if sendable == 0 {
            return false;
        }
        let chunk = (sendable as usize).min(remaining);
        let offset = self.queue[index].offset;
        let data = self.queue[index].body.slice(offset..offset + chunk);
        let end_stream = chunk == remaining;
        out.push(self.core.send_data(stream, data, end_stream));
        self.queue[index].offset += chunk;
        true
    }

    /// Sends exactly one chunk for every ready response that has not yet
    /// sent any body, in FCFS order.
    fn pump_first_chunks_fifo(&mut self, out: &mut Vec<Frame>) {
        loop {
            let Some(index) = self.queue.iter().position(|q| {
                q.body_ready() && q.offset == 0 && self.core.sendable_on(q.stream) > 0
            }) else {
                return;
            };
            if !self.send_chunk(index, out) {
                return;
            }
        }
    }

    /// Sends one chunk for every ready zero-offset response, ordered by
    /// the priority tree.
    fn pump_first_chunks_by_tree(&mut self, out: &mut Vec<Frame>) {
        loop {
            let fresh: HashSet<u32> = self
                .queue
                .iter()
                .filter(|q| q.body_ready() && q.offset == 0)
                .filter(|q| self.core.sendable_on(q.stream) > 0)
                .map(|q| q.stream.value())
                .collect();
            if fresh.is_empty() {
                return;
            }
            let next = self
                .core
                .priority_mut()
                .next_stream(|s| fresh.contains(&s.value()))
                .or_else(|| fresh.iter().min().copied().map(StreamId::new));
            let Some(next) = next else { return };
            let Some(index) = self.queue.iter().position(|q| q.stream == next) else {
                return;
            };
            if !self.send_chunk(index, out) {
                return;
            }
        }
    }

    fn pump_priority(&mut self, out: &mut Vec<Frame>) {
        loop {
            let ready: HashSet<u32> = self
                .queue
                .iter()
                .filter(|q| q.body_ready())
                .filter(|q| self.core.sendable_on(q.stream) > 0)
                .map(|q| q.stream.value())
                .collect();
            if ready.is_empty() {
                return;
            }
            let Some(next) = self
                .core
                .priority_mut()
                .next_stream(|s| ready.contains(&s.value()))
            else {
                // Streams with queued data but absent from the tree (e.g.
                // pushed streams): fall back to FIFO for those.
                let Some(index) = self
                    .queue
                    .iter()
                    .position(|q| ready.contains(&q.stream.value()))
                else {
                    return;
                };
                if !self.send_chunk(index, out) {
                    return;
                }
                continue;
            };
            let Some(index) = self.queue.iter().position(|q| q.stream == next) else {
                return;
            };
            if !self.send_chunk(index, out) {
                return;
            }
        }
    }

    fn pump_round_robin(&mut self, out: &mut Vec<Frame>, sequential: bool) {
        loop {
            let ready: Vec<usize> = self
                .queue
                .iter()
                .enumerate()
                .filter(|(_, q)| q.body_ready() && self.core.sendable_on(q.stream) > 0)
                .map(|(i, _)| i)
                .collect();
            if ready.is_empty() {
                return;
            }
            if sequential {
                // Head-of-line only.
                let head = ready[0];
                if !self.send_chunk(head, out) {
                    return;
                }
                continue;
            }
            self.rr_cursor = (self.rr_cursor + 1) % ready.len();
            let index = ready[self.rr_cursor % ready.len()];
            if !self.send_chunk(index, out) {
                return;
            }
        }
    }

    fn react(&mut self, events: Vec<CoreEvent>, out: &mut Vec<Frame>) {
        for event in events {
            match event {
                CoreEvent::RemoteSettings { .. } => {
                    self.settings_seen = self.settings_seen.saturating_add(1);
                    if let Some(limit) = self.behavior().settings_rate_limit {
                        if self.settings_seen > limit {
                            self.goaway(ErrorCode::EnhanceYourCalm, Some("settings flood"), out);
                            continue;
                        }
                    }
                    out.push(Frame::Settings(SettingsFrame::ack()));
                }
                CoreEvent::ConcurrencyExceeded { stream } => {
                    self.rejected.insert(stream.value());
                    self.rst(stream, ErrorCode::RefusedStream, out);
                }
                CoreEvent::HeadersReceived {
                    stream,
                    headers,
                    end_stream,
                    ..
                } => {
                    if let Some(limit) = self.behavior().header_list_limit {
                        // §6.5.2's size definition: name + value + 32
                        // per field.
                        let size: u64 = headers
                            .iter()
                            .map(|h| (h.name.len() + h.value.len() + 32) as u64)
                            .sum();
                        if size > u64::from(limit) {
                            self.rejected.insert(stream.value());
                            self.apply_quirk(
                                self.behavior().oversized_header_list,
                                WindowScope::Stream(stream),
                                ErrorCode::EnhanceYourCalm,
                                None,
                                out,
                            );
                            continue;
                        }
                    }
                    // A request announcing a body (no END_STREAM on the
                    // head) cannot be answered yet: the server holds its
                    // state until the body completes — the very state a
                    // slow-POST attacker pins. Benign GETs always carry
                    // END_STREAM and take the immediate path.
                    if !end_stream && has_request_body(&headers) {
                        self.pending_posts.insert(
                            stream.value(),
                            PendingPost {
                                headers,
                                started: self.now,
                            },
                        );
                    } else {
                        self.handle_request(stream, &headers, out);
                    }
                }
                CoreEvent::HeaderBlockProgress { accumulated, .. } => {
                    if let Some(cap) = self.behavior().continuation_cap {
                        if accumulated > cap {
                            self.goaway(
                                ErrorCode::EnhanceYourCalm,
                                Some("header block exceeds continuation cap"),
                                out,
                            );
                        }
                    }
                }
                CoreEvent::PingReceived { payload } => {
                    if self.behavior().ping {
                        out.push(Frame::Ping(PingFrame { ack: true, payload }));
                    }
                }
                CoreEvent::ZeroWindowUpdate { scope } => {
                    let (action, debug) = match scope {
                        WindowScope::Connection => (
                            self.behavior().zero_window_update_conn,
                            self.behavior().zero_window_debug.clone(),
                        ),
                        WindowScope::Stream(_) => (
                            self.behavior().zero_window_update_stream,
                            self.behavior().zero_window_debug.clone(),
                        ),
                    };
                    self.apply_quirk(action, scope, ErrorCode::ProtocolError, debug, out);
                }
                CoreEvent::WindowOverflow { scope } => {
                    let action = match scope {
                        WindowScope::Connection => self.behavior().large_window_update_conn,
                        WindowScope::Stream(_) => self.behavior().large_window_update_stream,
                    };
                    self.apply_quirk(action, scope, ErrorCode::FlowControlError, None, out);
                }
                CoreEvent::SelfDependency { stream } => {
                    self.apply_quirk(
                        self.behavior().self_dependency,
                        WindowScope::Stream(stream),
                        ErrorCode::ProtocolError,
                        None,
                        out,
                    );
                }
                CoreEvent::RstStreamReceived { stream, .. } => {
                    self.queue.retain(|q| q.stream != stream);
                    self.pending_posts.remove(&stream.value());
                    self.rst_seen = self.rst_seen.saturating_add(1);
                    if let Some(limit) = self.behavior().rst_rate_limit {
                        if self.rst_seen > limit {
                            self.goaway(ErrorCode::EnhanceYourCalm, Some("rst flood"), out);
                        }
                    }
                }
                CoreEvent::GoawayReceived { .. } => {
                    self.closed = true;
                }
                CoreEvent::DataReceived {
                    stream,
                    end_stream,
                    flow_controlled_len,
                    ..
                } => {
                    out.extend(
                        self.core
                            .replenish_recv_windows(stream, flow_controlled_len),
                    );
                    if end_stream {
                        if let Some(pending) = self.pending_posts.remove(&stream.value()) {
                            self.handle_request(stream, &pending.headers, out);
                        }
                    }
                }
                CoreEvent::FlowViolation { .. } => {
                    self.goaway(ErrorCode::FlowControlError, None, out);
                }
                CoreEvent::SettingsAcked
                | CoreEvent::PingAcked { .. }
                | CoreEvent::WindowUpdated { .. }
                | CoreEvent::PriorityChanged { .. }
                | CoreEvent::PushPromiseReceived { .. }
                | CoreEvent::UnknownFrameIgnored { .. } => {}
            }
        }
    }
}

/// A greeting that cannot parse as HTTP/2: a SETTINGS frame whose length
/// is not a multiple of six — FRAME_SIZE_ERROR per RFC 7540 §6.5.
const GARBAGE_GREETING: [u8; 14] = [0, 0, 5, 0x04, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5];

impl ByteEndpoint for H2Server {
    fn on_connect(&mut self, now: SimTime, out: &mut Vec<u8>) {
        self.now = now;
        let byz = self.byz();
        if byz.handshake_stall {
            // Accepts the connection, never speaks.
            return;
        }
        if byz.garbage_preface {
            self.silenced = true;
            out.extend_from_slice(&GARBAGE_GREETING);
            return;
        }
        if self.cleartext {
            // Nothing to say until the client upgrades (§3.2) or sends
            // the prior-knowledge preface (§3.4).
            return;
        }
        let start = out.len();
        self.announce_bytes(out);
        self.shape_output(out, start);
    }

    fn on_bytes(&mut self, now: SimTime, bytes: &[u8], out: &mut Vec<u8>) {
        self.now = now;
        if self.byz().handshake_stall || self.silenced {
            self.last_delay = SimDuration::ZERO;
            return;
        }
        let start = out.len();
        self.on_bytes_inner(now, bytes, out);
        self.shape_output(out, start);
    }

    fn processing_delay(&self) -> SimDuration {
        self.last_delay
    }

    fn wants_reset(&self) -> bool {
        self.reset_pending
    }
}

impl H2Server {
    fn byz(&self) -> h2fault::ByzantineSpec {
        self.behavior().byzantine.unwrap_or_default()
    }

    /// Applies output-side byzantine faults (truncation, scheduled reset)
    /// to the batch of octets the engine appended to `out` past `start`.
    /// A no-op spec passes bytes through untouched.
    fn shape_output(&mut self, out: &mut Vec<u8>, start: usize) {
        if self.silenced {
            out.truncate(start);
            return;
        }
        let byz = self.byz();
        if let Some(limit) = byz.truncate_after {
            let budget = limit.saturating_sub(self.emitted) as usize;
            if out.len() - start > budget {
                out.truncate(start + budget);
                self.silenced = true;
            }
        }
        self.emitted += (out.len() - start) as u64;
        if let Some(limit) = byz.reset_after_bytes {
            if self.emitted >= limit {
                self.reset_pending = true;
            }
        }
    }

    fn on_bytes_inner(&mut self, _now: SimTime, bytes: &[u8], out: &mut Vec<u8>) {
        self.last_delay = SimDuration::ZERO;
        if self.closed {
            return;
        }
        if !self.preface_done {
            self.preface.extend_from_slice(bytes);
            let n = self.preface.len().min(CONNECTION_PREFACE.len());
            if self.preface[..n] == CONNECTION_PREFACE[..n] {
                if self.preface.len() < CONNECTION_PREFACE.len() {
                    return;
                }
                self.preface_done = true;
                let leftover = self.preface.split_off(CONNECTION_PREFACE.len());
                self.preface.clear();
                if self.cleartext {
                    // Prior-knowledge or post-upgrade h2: announce now.
                    self.announce_bytes(out);
                }
                if let Some(headers) = self.pending_upgrade.take() {
                    self.serve_upgraded_request(&headers, out);
                }
                self.ingest(&leftover, out);
                return;
            }
            if self.cleartext {
                self.try_h1(_now, out);
                return;
            }
            // TLS-negotiated h2 with a bad preface: drop the connection.
            self.closed = true;
            return;
        }
        if bytes.is_empty() {
            return;
        }
        self.ingest(bytes, out);
    }

    /// The connection-start frames (announced SETTINGS plus the Nginx
    /// zero-window-then-update pattern), appended to `out`.
    fn announce_bytes(&self, out: &mut Vec<u8>) {
        Frame::Settings(SettingsFrame::from(self.behavior().announced.clone())).encode(out);
        if let Some(increment) = self.behavior().zero_window_then_update {
            Frame::WindowUpdate(WindowUpdateFrame {
                stream_id: StreamId::CONNECTION,
                increment,
            })
            .encode(out);
        }
    }

    /// RFC 7540 §3.2: the request that carried the upgrade is served as
    /// HTTP/2 stream 1, already half-closed from the client side.
    fn serve_upgraded_request(&mut self, headers: &[Header], out: &mut Vec<u8>) {
        let stream = StreamId::new(1);
        let (send_init, recv_init) = (
            self.core.remote_settings().initial_window_size,
            self.core.local_settings().initial_window_size,
        );
        self.core
            .streams_mut()
            .get_or_create(stream, send_init, recv_init)
            .recv_headers(true);
        let mut frames = std::mem::take(&mut self.frame_scratch);
        frames.clear();
        self.handle_request(stream, headers, &mut frames);
        self.pump(&mut frames);
        encode_all_into(&frames, out);
        self.frame_scratch = frames;
    }

    /// Speaks just enough HTTP/1.1 to run the §IV-A upgrade dance: a
    /// request with `Upgrade: h2c` gets `101 Switching Protocols` when the
    /// profile supports it; anything else gets a plain HTTP/1.1 response.
    fn try_h1(&mut self, _now: SimTime, out: &mut Vec<u8>) {
        let Some(end) = find_double_crlf(&self.preface) else {
            // Wait for the rest of the request head — unless this cannot
            // be HTTP at all.
            if self.preface.len() > 16_384 {
                self.closed = true;
            }
            return;
        };
        let head = String::from_utf8_lossy(&self.preface[..end]).to_string();
        let leftover = self.preface.split_off(end + 4);
        self.preface.clear();
        let mut lines = head.lines();
        let request_line = lines.next().unwrap_or_default().to_string();
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("GET").to_string();
        let path = parts.next().unwrap_or("/").to_string();
        let mut wants_h2c = false;
        let mut host = self.site.authority.clone();
        for line in lines {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("upgrade:") && lower.contains("h2c") {
                wants_h2c = true;
            }
            if let Some(value) = lower.strip_prefix("host:") {
                host = value.trim().to_string();
            }
        }
        if wants_h2c && self.behavior().h2c_upgrade {
            self.pending_upgrade = Some(vec![
                Header::new(":method", method),
                Header::new(":scheme", "http"),
                Header::new(":path", path),
                Header::new(":authority", host),
            ]);
            self.preface = leftover; // may already hold the preface
            out.extend_from_slice(
                b"HTTP/1.1 101 Switching Protocols
Connection: Upgrade
Upgrade: h2c

",
            );
            if !self.preface.is_empty() {
                let buffered = std::mem::take(&mut self.preface);
                self.on_bytes_inner(_now, &buffered, out);
            }
            return;
        }
        // No upgrade: serve it as ordinary HTTP/1.1 and close.
        self.last_delay = self.behavior().processing_delay;
        let (status, body) = match self.site.resource(&path) {
            Some(r) => ("200 OK", r.body.clone()),
            None => ("404 Not Found", Bytes::from_static(b"not found")),
        };
        self.closed = true;
        use std::io::Write as _;
        let _ = write!(
            out,
            "HTTP/1.1 {status}
Server: {}
Content-Length: {}
Connection: close

",
            self.behavior().server_name,
            body.len()
        );
        out.extend_from_slice(&body);
    }

    fn ingest(&mut self, bytes: &[u8], out: &mut Vec<u8>) {
        let mut frames = std::mem::take(&mut self.frame_scratch);
        frames.clear();
        match self.core.recv_bytes(bytes) {
            Ok(events) => self.react(events, &mut frames),
            Err(err) => {
                let detail = err.to_string();
                self.goaway(err.h2_error_code(), Some(&detail), &mut frames);
            }
        }
        self.pump(&mut frames);
        encode_all_into(&frames, out);
        self.frame_scratch = frames;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2conn::{ConnectionCore, EffectiveSettings};
    use h2wire::{FrameDecoder, SettingId, Settings};

    /// A minimal hand-rolled client for exercising the engine directly.
    struct TestClient {
        core: ConnectionCore,
        decoder: FrameDecoder,
    }

    impl TestClient {
        fn new() -> TestClient {
            TestClient {
                core: ConnectionCore::new(
                    Role::Client,
                    EffectiveSettings::default(),
                    EncoderOptions::default(),
                ),
                decoder: FrameDecoder::new(),
            }
        }

        fn preface_and_settings(&self) -> Vec<u8> {
            let mut bytes = CONNECTION_PREFACE.to_vec();
            Frame::Settings(SettingsFrame::from(Settings::new())).encode(&mut bytes);
            bytes
        }

        fn request(&mut self, stream: u32, path: &str) -> Vec<u8> {
            let headers = vec![
                Header::new(":method", "GET"),
                Header::new(":scheme", "https"),
                Header::new(":path", path),
                Header::new(":authority", "testbed.example"),
            ];
            let frames = self
                .core
                .encode_headers(StreamId::new(stream), &headers, true, None);
            h2wire::encode_all(&frames)
        }

        fn parse(&mut self, bytes: &[u8]) -> Vec<Frame> {
            self.decoder
                .set_max_frame_size(h2wire::settings::MAX_MAX_FRAME_SIZE);
            self.decoder.feed(bytes);
            self.decoder.drain_frames().expect("server output parses")
        }
    }

    fn serve(profile: ServerProfile) -> (H2Server, TestClient) {
        (
            H2Server::new(profile, SiteSpec::benchmark()),
            TestClient::new(),
        )
    }

    #[test]
    fn greeting_carries_announced_settings() {
        let (mut server, mut client) = serve(ServerProfile::nghttpd());
        let greeting = server.on_connect_vec(SimTime::ZERO);
        let frames = client.parse(&greeting);
        match &frames[0] {
            Frame::Settings(s) => {
                assert!(!s.ack);
                assert_eq!(s.settings.get(SettingId::MaxConcurrentStreams), Some(100));
            }
            other => panic!("expected settings, got {other:?}"),
        }
    }

    #[test]
    fn nginx_greeting_includes_window_update_after_zero_announcement() {
        let (mut server, mut client) = serve(ServerProfile::nginx());
        let frames = client.parse(&server.on_connect_vec(SimTime::ZERO));
        assert!(matches!(&frames[0], Frame::Settings(s)
            if s.settings.get(SettingId::InitialWindowSize) == Some(0)));
        assert!(matches!(&frames[1], Frame::WindowUpdate(wu)
            if wu.stream_id.is_connection() && wu.increment == 65_535));
    }

    #[test]
    fn get_returns_headers_then_data() {
        let (mut server, mut client) = serve(ServerProfile::rfc7540());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let req = client.request(1, "/");
        let reply = server.on_bytes_vec(SimTime::ZERO, &req);
        let frames = client.parse(&reply);
        let kinds: Vec<_> = frames.iter().map(|f| f.kind()).collect();
        assert!(kinds.contains(&h2wire::FrameKind::Headers));
        assert!(kinds.contains(&h2wire::FrameKind::Data));
        // Body fits in one window; last DATA ends the stream.
        let last_data = frames
            .iter()
            .filter_map(|f| match f {
                Frame::Data(d) => Some(d),
                _ => None,
            })
            .next_back()
            .unwrap();
        assert!(last_data.end_stream);
    }

    #[test]
    fn unknown_path_is_404() {
        let (mut server, mut client) = serve(ServerProfile::rfc7540());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let reply = server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/missing"));
        let frames = client.parse(&reply);
        let mut saw_404 = false;
        for frame in &frames {
            if let Frame::Headers(h) = frame {
                let headers = client.core.recv_bytes(&frame.to_bytes());
                let _ = headers; // decoded below via event
                let mut dec = h2hpack::Decoder::new();
                // Decode against a fresh context is wrong in general, but
                // this is the first header block on the connection.
                let list = dec.decode_block(&h.fragment).unwrap();
                saw_404 = list.iter().any(|h| h.name == ":status" && h.value == "404");
            }
        }
        assert!(saw_404);
    }

    #[test]
    fn ping_is_acked_without_processing_delay() {
        let (mut server, mut client) = serve(ServerProfile::apache());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let ping = Frame::Ping(PingFrame::request(*b"RTTprobe")).to_bytes();
        let reply = server.on_bytes_vec(SimTime::ZERO, &ping);
        assert_eq!(server.processing_delay(), SimDuration::ZERO);
        let frames = client.parse(&reply);
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::Ping(p) if p.ack && p.payload == *b"RTTprobe")));
    }

    #[test]
    fn request_sets_processing_delay() {
        let (mut server, mut client) = serve(ServerProfile::apache());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/"));
        assert!(server.processing_delay() > SimDuration::ZERO);
    }

    #[test]
    fn zero_window_update_quirks_differ_by_profile() {
        for (profile, expect_rst, expect_goaway) in [
            (ServerProfile::nginx(), false, false),
            (ServerProfile::h2o(), true, false),
            (ServerProfile::nghttpd(), false, true),
        ] {
            let (mut server, mut client) = serve(profile.clone());
            server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
            server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/"));
            let zero = Frame::WindowUpdate(WindowUpdateFrame {
                stream_id: StreamId::new(1),
                increment: 0,
            })
            .to_bytes();
            let reply = server.on_bytes_vec(SimTime::ZERO, &zero);
            let frames = client.parse(&reply);
            let got_rst = frames.iter().any(|f| matches!(f, Frame::RstStream(_)));
            let got_goaway = frames.iter().any(|f| matches!(f, Frame::Goaway(_)));
            assert_eq!(got_rst, expect_rst, "{} rst", profile.name);
            assert_eq!(got_goaway, expect_goaway, "{} goaway", profile.name);
        }
    }

    #[test]
    fn large_window_update_overflow_triggers_goaway_on_connection() {
        let (mut server, mut client) = serve(ServerProfile::nginx());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let wu = |inc: u32| {
            Frame::WindowUpdate(WindowUpdateFrame {
                stream_id: StreamId::CONNECTION,
                increment: inc,
            })
            .to_bytes()
        };
        server.on_bytes_vec(SimTime::ZERO, &wu(0x4000_0000));
        let reply = server.on_bytes_vec(SimTime::ZERO, &wu(0x4000_0000));
        let frames = client.parse(&reply);
        assert!(
            frames.iter().any(|f| matches!(f, Frame::Goaway(g)
                if g.code == ErrorCode::FlowControlError)),
            "even Nginx GOAWAYs on overflow (Table III)"
        );
    }

    #[test]
    fn self_dependency_quirks() {
        for (profile, expect) in [
            (ServerProfile::nginx(), "rst"),
            (ServerProfile::litespeed(), "ignore"),
            (ServerProfile::h2o(), "goaway"),
        ] {
            let (mut server, mut client) = serve(profile.clone());
            server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
            let frame = Frame::Priority(h2wire::PriorityFrame {
                stream_id: StreamId::new(5),
                spec: h2wire::PrioritySpec {
                    exclusive: false,
                    dependency: StreamId::new(5),
                    weight: 16,
                },
            })
            .to_bytes();
            let reply = server.on_bytes_vec(SimTime::ZERO, &frame);
            let frames = client.parse(&reply);
            match expect {
                "rst" => assert!(frames.iter().any(|f| matches!(f, Frame::RstStream(_)))),
                "goaway" => assert!(frames.iter().any(|f| matches!(f, Frame::Goaway(_)))),
                _ => assert!(frames.is_empty(), "{}: {frames:?}", profile.name),
            }
        }
    }

    #[test]
    fn concurrency_zero_refuses_all_requests() {
        // §V-A: with MAX_CONCURRENT_STREAMS=0, any request gets RST.
        let mut profile = ServerProfile::nginx();
        profile.behavior.announced = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 0)
            .with(SettingId::InitialWindowSize, 65_535);
        profile.behavior.zero_window_then_update = None;
        let (mut server, mut client) = serve(profile);
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let reply = server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/"));
        let frames = client.parse(&reply);
        assert!(frames.iter().any(|f| matches!(f, Frame::RstStream(r)
            if r.code == ErrorCode::RefusedStream)));
        assert!(!frames.iter().any(|f| matches!(f, Frame::Headers(_))));
    }

    #[test]
    fn concurrency_one_refuses_second_parallel_request() {
        let mut profile = ServerProfile::tengine();
        profile.behavior.announced = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 1)
            .with(SettingId::InitialWindowSize, 65_535);
        profile.behavior.zero_window_then_update = None;
        let (mut server, mut client) = serve(profile);
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        // Two requests in one segment; /big/0 keeps stream 1 active.
        let mut bytes = client.request(1, "/big/0");
        bytes.extend(client.request(3, "/big/1"));
        let reply = server.on_bytes_vec(SimTime::ZERO, &bytes);
        let frames = client.parse(&reply);
        let rsts: Vec<&RstStreamFrame> = frames
            .iter()
            .filter_map(|f| match f {
                Frame::RstStream(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(rsts.len(), 1);
        assert_eq!(rsts[0].stream_id, StreamId::new(3));
        assert_eq!(rsts[0].code, ErrorCode::RefusedStream);
    }

    #[test]
    fn flow_control_limits_data_frame_size_to_window() {
        // §III-B1: SETTINGS_INITIAL_WINDOW_SIZE=1 must yield 1-byte DATA.
        let (mut server, mut client) = serve(ServerProfile::h2o());
        let mut hello = CONNECTION_PREFACE.to_vec();
        Frame::Settings(SettingsFrame::from(
            Settings::new().with(SettingId::InitialWindowSize, 1),
        ))
        .encode(&mut hello);
        server.on_bytes_vec(SimTime::ZERO, &hello);
        let reply = server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/big/0"));
        let frames = client.parse(&reply);
        let data: Vec<&h2wire::DataFrame> = frames
            .iter()
            .filter_map(|f| match f {
                Frame::Data(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(data.len(), 1);
        assert_eq!(
            data[0].data.len(),
            1,
            "payload limited to the 1-byte window"
        );
        assert!(
            frames.iter().any(|f| matches!(f, Frame::Headers(_))),
            "HEADERS are not flow controlled on a conforming server"
        );
    }

    #[test]
    fn litespeed_withholds_headers_under_zero_window() {
        // §III-B2 / Table III row 5.
        let (mut server, mut client) = serve(ServerProfile::litespeed());
        let mut hello = CONNECTION_PREFACE.to_vec();
        Frame::Settings(SettingsFrame::from(
            Settings::new().with(SettingId::InitialWindowSize, 0),
        ))
        .encode(&mut hello);
        server.on_bytes_vec(SimTime::ZERO, &hello);
        let reply = server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/"));
        let frames = client.parse(&reply);
        assert!(
            !frames.iter().any(|f| matches!(f, Frame::Headers(_))),
            "LiteSpeed applies flow control to HEADERS: {frames:?}"
        );

        // A conforming server still sends HEADERS.
        let (mut server, mut client) = serve(ServerProfile::nghttpd());
        let mut hello = CONNECTION_PREFACE.to_vec();
        Frame::Settings(SettingsFrame::from(
            Settings::new().with(SettingId::InitialWindowSize, 0),
        ))
        .encode(&mut hello);
        server.on_bytes_vec(SimTime::ZERO, &hello);
        let reply = server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/"));
        let frames = client.parse(&reply);
        assert!(frames.iter().any(|f| matches!(f, Frame::Headers(_))));
        assert!(!frames.iter().any(|f| matches!(f, Frame::Data(_))));
    }

    #[test]
    fn push_capable_server_sends_push_promise() {
        let site = SiteSpec::page_with_assets(2, 500);
        let mut server = H2Server::new(ServerProfile::h2o(), site);
        let mut client = TestClient::new();
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let reply = server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/"));
        let frames = client.parse(&reply);
        let promises = frames
            .iter()
            .filter(|f| matches!(f, Frame::PushPromise(_)))
            .count();
        assert_eq!(promises, 2);
        // Pushed streams are even.
        for f in &frames {
            if let Frame::PushPromise(p) = f {
                assert!(p.promised_stream_id.is_server_initiated());
            }
        }
    }

    #[test]
    fn push_incapable_server_sends_none() {
        let site = SiteSpec::page_with_assets(2, 500);
        let mut server = H2Server::new(ServerProfile::nginx(), site);
        let mut client = TestClient::new();
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let reply = server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/"));
        let frames = client.parse(&reply);
        assert!(!frames.iter().any(|f| matches!(f, Frame::PushPromise(_))));
    }

    #[test]
    fn client_can_disable_push_via_settings() {
        let site = SiteSpec::page_with_assets(2, 500);
        let mut server = H2Server::new(ServerProfile::h2o(), site);
        let mut client = TestClient::new();
        let mut hello = CONNECTION_PREFACE.to_vec();
        Frame::Settings(SettingsFrame::from(
            Settings::new().with(SettingId::EnablePush, 0),
        ))
        .encode(&mut hello);
        server.on_bytes_vec(SimTime::ZERO, &hello);
        let reply = server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/"));
        let frames = client.parse(&reply);
        assert!(!frames.iter().any(|f| matches!(f, Frame::PushPromise(_))));
    }

    #[test]
    fn byzantine_handshake_stall_never_speaks() {
        let mut profile = ServerProfile::rfc7540();
        profile.behavior.byzantine = Some(h2fault::ByzantineSpec {
            handshake_stall: true,
            ..h2fault::ByzantineSpec::default()
        });
        let (mut server, mut client) = serve(profile);
        assert!(server.on_connect_vec(SimTime::ZERO).is_empty());
        assert!(server
            .on_bytes_vec(SimTime::ZERO, &client.preface_and_settings())
            .is_empty());
        assert!(server
            .on_bytes_vec(SimTime::ZERO, &client.request(1, "/"))
            .is_empty());
    }

    #[test]
    fn byzantine_garbage_preface_is_unparseable_then_silence() {
        let mut profile = ServerProfile::rfc7540();
        profile.behavior.byzantine = Some(h2fault::ByzantineSpec {
            garbage_preface: true,
            ..h2fault::ByzantineSpec::default()
        });
        let (mut server, client) = serve(profile);
        let greeting = server.on_connect_vec(SimTime::ZERO);
        assert!(!greeting.is_empty());
        let mut decoder = FrameDecoder::new();
        decoder.feed(&greeting);
        assert!(decoder.drain_frames().is_err(), "greeting must not parse");
        assert!(server
            .on_bytes_vec(SimTime::ZERO, &client.preface_and_settings())
            .is_empty());
    }

    #[test]
    fn byzantine_truncation_cuts_output_then_goes_silent() {
        let mut profile = ServerProfile::rfc7540();
        profile.behavior.byzantine = Some(h2fault::ByzantineSpec {
            truncate_after: Some(16),
            ..h2fault::ByzantineSpec::default()
        });
        let (mut server, mut client) = serve(profile);
        let greeting = server.on_connect_vec(SimTime::ZERO);
        let reply = server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        assert!(greeting.len() + reply.len() <= 16);
        assert!(server
            .on_bytes_vec(SimTime::ZERO, &client.request(1, "/"))
            .is_empty());
    }

    #[test]
    fn byzantine_reset_raises_wants_reset_after_budget() {
        let mut profile = ServerProfile::rfc7540();
        profile.behavior.byzantine = Some(h2fault::ByzantineSpec {
            reset_after_bytes: Some(64),
            ..h2fault::ByzantineSpec::default()
        });
        let (mut server, mut client) = serve(profile);
        server.on_connect_vec(SimTime::ZERO);
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        assert!(!server.wants_reset(), "greeting alone is under budget");
        server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/"));
        assert!(
            server.wants_reset(),
            "response pushes emitted past 64 octets"
        );
    }

    #[test]
    fn byzantine_trickle_emits_one_tiny_chunk_per_exchange() {
        let mut profile = ServerProfile::rfc7540();
        profile.behavior.byzantine = Some(h2fault::ByzantineSpec {
            trickle_data: Some(16),
            trickle_delay: SimDuration::from_millis(300),
            ..h2fault::ByzantineSpec::default()
        });
        let (mut server, mut client) = serve(profile);
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let reply = server.on_bytes_vec(SimTime::ZERO, &client.request(1, "/big/0"));
        let frames = client.parse(&reply);
        let data: Vec<_> = frames
            .iter()
            .filter_map(|f| match f {
                Frame::Data(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(data.len(), 1, "one dribble per exchange: {frames:?}");
        assert!(data[0].data.len() <= 16);
        assert!(!data[0].end_stream);
        assert!(server.processing_delay() >= SimDuration::from_millis(300));
    }

    #[test]
    fn no_byzantine_spec_means_identical_output() {
        let (mut plain, mut client_a) = serve(ServerProfile::nginx());
        let mut noop = ServerProfile::nginx();
        noop.behavior.byzantine = Some(h2fault::ByzantineSpec::default());
        let (mut shaped, mut client_b) = serve(noop);
        for server in [&mut plain, &mut shaped] {
            server.on_connect_vec(SimTime::ZERO);
        }
        let a = plain.on_bytes_vec(SimTime::ZERO, &client_a.preface_and_settings());
        let b = shaped.on_bytes_vec(SimTime::ZERO, &client_b.preface_and_settings());
        assert_eq!(a, b);
        let a = plain.on_bytes_vec(SimTime::ZERO, &client_a.request(1, "/"));
        let b = shaped.on_bytes_vec(SimTime::ZERO, &client_b.request(1, "/"));
        assert_eq!(a, b);
        assert!(!plain.wants_reset() && !shaped.wants_reset());
    }

    #[test]
    fn rst_flood_past_budget_draws_enhance_your_calm() {
        // H2O budgets 400 client resets; nginx has no budget.
        let (mut server, mut client) = serve(ServerProfile::h2o());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let mut bytes = Vec::new();
        for k in 0..401u32 {
            Frame::RstStream(RstStreamFrame {
                stream_id: StreamId::new(1 + 2 * k),
                code: ErrorCode::Cancel,
            })
            .encode(&mut bytes);
        }
        let reply = server.on_bytes_vec(SimTime::ZERO, &bytes);
        let frames = client.parse(&reply);
        assert!(frames.iter().any(|f| matches!(f, Frame::Goaway(g)
            if g.code == ErrorCode::EnhanceYourCalm)));

        let (mut server, _client) = serve(ServerProfile::nginx());
        server.on_bytes_vec(SimTime::ZERO, &TestClient::new().preface_and_settings());
        let reply = server.on_bytes_vec(SimTime::ZERO, &bytes);
        assert!(reply.is_empty(), "nginx ignores unbounded RST churn");
        assert_eq!(server.rst_frames_seen(), 401);
    }

    #[test]
    fn settings_flood_past_budget_stops_the_ack_train() {
        // Apache budgets 100 SETTINGS; each costs the server an ack, the
        // flood's amplification.
        let (mut server, mut client) = serve(ServerProfile::apache());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let mut bytes = Vec::new();
        for _ in 0..120 {
            Frame::Settings(SettingsFrame::from(Settings::new())).encode(&mut bytes);
        }
        let reply = server.on_bytes_vec(SimTime::ZERO, &bytes);
        let frames = client.parse(&reply);
        let acks = frames
            .iter()
            .filter(|f| matches!(f, Frame::Settings(s) if s.ack))
            .count();
        assert!(frames.iter().any(|f| matches!(f, Frame::Goaway(g)
            if g.code == ErrorCode::EnhanceYourCalm)));
        assert!(acks <= 100, "acks stop once the budget is spent: {acks}");
    }

    #[test]
    fn continuation_flood_past_cap_tears_the_connection_down() {
        // Apache caps an in-progress header block at 16 KiB; Tengine
        // (which dropped its parent's bound) buffers forever.
        let flood = || {
            let mut bytes = Frame::Headers(h2wire::HeadersFrame {
                stream_id: StreamId::new(1),
                fragment: Bytes::from(vec![0u8; 1_024]),
                end_stream: false,
                end_headers: false,
                priority: None,
                pad_len: None,
            })
            .to_bytes();
            for _ in 0..20 {
                Frame::Continuation(h2wire::ContinuationFrame {
                    stream_id: StreamId::new(1),
                    fragment: Bytes::from(vec![0u8; 1_024]),
                    end_headers: false,
                })
                .encode(&mut bytes);
            }
            bytes
        };
        let (mut server, mut client) = serve(ServerProfile::apache());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let reply = server.on_bytes_vec(SimTime::ZERO, &flood());
        let frames = client.parse(&reply);
        assert!(frames.iter().any(|f| matches!(f, Frame::Goaway(g)
            if g.code == ErrorCode::EnhanceYourCalm)));

        let (mut server, _client) = serve(ServerProfile::tengine());
        server.on_bytes_vec(SimTime::ZERO, &TestClient::new().preface_and_settings());
        let reply = server.on_bytes_vec(SimTime::ZERO, &flood());
        assert!(reply.is_empty(), "tengine buffers the open block silently");
    }

    #[test]
    fn post_response_waits_for_the_request_body() {
        let (mut server, mut client) = serve(ServerProfile::rfc7540());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        let headers = vec![
            Header::new(":method", "POST"),
            Header::new(":scheme", "https"),
            Header::new(":path", "/"),
            Header::new(":authority", "testbed.example"),
        ];
        let frames = client
            .core
            .encode_headers(StreamId::new(1), &headers, false, None);
        let reply = server.on_bytes_vec(SimTime::ZERO, &h2wire::encode_all(&frames));
        let frames = client.parse(&reply);
        assert!(
            !frames.iter().any(|f| matches!(f, Frame::Headers(_))),
            "no response until the body completes: {frames:?}"
        );
        assert_eq!(server.pending_request_count(), 1);
        let body = Frame::Data(h2wire::DataFrame {
            stream_id: StreamId::new(1),
            data: Bytes::from_static(b"a=1"),
            end_stream: true,
            pad_len: None,
        })
        .to_bytes();
        let reply = server.on_bytes_vec(SimTime::ZERO, &body);
        let frames = client.parse(&reply);
        assert!(frames.iter().any(|f| matches!(f, Frame::Headers(_))));
        assert_eq!(server.pending_request_count(), 0);
    }

    #[test]
    fn stalled_post_is_reaped_after_the_timeout() {
        // Apache's 30-second patience; nghttpd waits forever.
        let open_post = |client: &mut TestClient| {
            let headers = vec![
                Header::new(":method", "POST"),
                Header::new(":scheme", "https"),
                Header::new(":path", "/"),
                Header::new(":authority", "testbed.example"),
            ];
            let frames = client
                .core
                .encode_headers(StreamId::new(1), &headers, false, None);
            h2wire::encode_all(&frames)
        };
        let later = SimTime::ZERO + SimDuration::from_secs(31);
        let ping = Frame::Ping(PingFrame::request([7; 8])).to_bytes();

        let (mut server, mut client) = serve(ServerProfile::apache());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        server.on_bytes_vec(SimTime::ZERO, &open_post(&mut client));
        let reply = server.on_bytes_vec(later, &ping);
        let frames = client.parse(&reply);
        assert!(frames.iter().any(|f| matches!(f, Frame::Goaway(g)
            if g.code == ErrorCode::EnhanceYourCalm)));

        let (mut server, mut client) = serve(ServerProfile::nghttpd());
        server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
        server.on_bytes_vec(SimTime::ZERO, &open_post(&mut client));
        let reply = server.on_bytes_vec(later, &ping);
        let frames = client.parse(&reply);
        assert!(frames.iter().any(|f| matches!(f, Frame::Ping(p) if p.ack)));
        assert!(!frames.iter().any(|f| matches!(f, Frame::Goaway(_))));
    }

    #[test]
    fn oversized_header_list_reactions_differ() {
        // ~17 KiB list: above every configured limit. Apache resets the
        // stream; nginx tears the connection down; LiteSpeed (no limit)
        // answers normally.
        let big_request = |client: &mut TestClient| {
            let mut headers = vec![
                Header::new(":method", "GET"),
                Header::new(":scheme", "https"),
                Header::new(":path", "/"),
                Header::new(":authority", "testbed.example"),
            ];
            for i in 0..36 {
                headers.push(Header::new(
                    format!("x-padding-{i:02}"),
                    "abc123xyz".repeat(49),
                ));
            }
            let frames = client
                .core
                .encode_headers(StreamId::new(1), &headers, true, None);
            h2wire::encode_all(&frames)
        };
        for (profile, expect) in [
            (ServerProfile::apache(), "rst"),
            (ServerProfile::nginx(), "goaway"),
            (ServerProfile::litespeed(), "answer"),
        ] {
            let name = profile.name.clone();
            let (mut server, mut client) = serve(profile);
            server.on_bytes_vec(SimTime::ZERO, &client.preface_and_settings());
            let reply = server.on_bytes_vec(SimTime::ZERO, &big_request(&mut client));
            let frames = client.parse(&reply);
            match expect {
                "rst" => assert!(
                    frames.iter().any(|f| matches!(f, Frame::RstStream(r)
                        if r.code == ErrorCode::EnhanceYourCalm)),
                    "{name}: {frames:?}"
                ),
                "goaway" => assert!(
                    frames.iter().any(|f| matches!(f, Frame::Goaway(g)
                        if g.code == ErrorCode::EnhanceYourCalm)),
                    "{name}"
                ),
                _ => assert!(
                    frames.iter().any(|f| matches!(f, Frame::Headers(_))),
                    "{name} has no limit and answers"
                ),
            }
        }
    }

    #[test]
    fn bad_preface_closes_connection() {
        let mut server = H2Server::new(ServerProfile::rfc7540(), SiteSpec::benchmark());
        let reply = server.on_bytes_vec(SimTime::ZERO, b"GET / HTTP/1.1\r\nHost: x\r\n\r\nPAD-PAD");
        assert!(reply.is_empty());
        assert!(server.is_closed());
    }
}
