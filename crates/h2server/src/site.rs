//! Site content: the resources a simulated web site serves and its push
//! manifest.

use std::collections::BTreeMap;

use bytes::Bytes;

/// One web object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Request path, e.g. `"/index.html"`.
    pub path: String,
    /// `content-type` response header.
    pub content_type: String,
    /// Object body.
    pub body: Bytes,
}

impl Resource {
    /// Creates a resource with a synthetic body of `size` octets.
    pub fn synthetic(
        path: impl Into<String>,
        content_type: impl Into<String>,
        size: usize,
    ) -> Resource {
        let path = path.into();
        // Deterministic, mildly compressible content keyed by the path.
        let seed = path.bytes().fold(0u8, u8::wrapping_add);
        let body: Vec<u8> = (0..size)
            .map(|i| seed.wrapping_add((i % 251) as u8))
            .collect();
        Resource {
            path,
            content_type: content_type.into(),
            body: Bytes::from(body),
        }
    }
}

/// The content model for one simulated site.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SiteSpec {
    /// The `:authority` this site answers as.
    pub authority: String,
    /// Resources by path.
    pub resources: BTreeMap<String, Resource>,
    /// `page path -> resources to push` when the server supports push.
    pub push_manifest: BTreeMap<String, Vec<String>>,
}

impl SiteSpec {
    /// An empty site for `authority`.
    pub fn new(authority: impl Into<String>) -> SiteSpec {
        SiteSpec {
            authority: authority.into(),
            ..SiteSpec::default()
        }
    }

    /// Adds a resource, replacing any previous one at the same path.
    pub fn add(&mut self, resource: Resource) -> &mut SiteSpec {
        self.resources.insert(resource.path.clone(), resource);
        self
    }

    /// Builder-style [`SiteSpec::add`].
    pub fn with(mut self, resource: Resource) -> SiteSpec {
        self.add(resource);
        self
    }

    /// Declares that requesting `page` should push `assets`.
    pub fn push_on(mut self, page: impl Into<String>, assets: Vec<String>) -> SiteSpec {
        self.push_manifest.insert(page.into(), assets);
        self
    }

    /// Looks up a resource.
    pub fn resource(&self, path: &str) -> Option<&Resource> {
        self.resources.get(path)
    }

    /// The testbed site used for server characterization (Table III):
    /// a front page plus several *large* objects, which the paper needs
    /// because the multiplexing and priority probes only discriminate when
    /// responses span many DATA frames (§III-A1).
    pub fn benchmark() -> SiteSpec {
        let mut site = SiteSpec::new("testbed.example");
        site.add(Resource::synthetic("/", "text/html", 4_096));
        for i in 0..8 {
            site.add(Resource::synthetic(
                format!("/big/{i}"),
                "application/octet-stream",
                256 * 1024,
            ));
        }
        site.add(Resource::synthetic("/style.css", "text/css", 8_192));
        site.add(Resource::synthetic(
            "/app.js",
            "application/javascript",
            16_384,
        ));
        site.add(Resource::synthetic("/logo.png", "image/png", 32_768));
        site
    }

    /// A front page with `assets` subresources of `asset_size` octets each
    /// and a push manifest covering all of them — the page-load experiment
    /// site (Figure 3).
    pub fn page_with_assets(assets: usize, asset_size: usize) -> SiteSpec {
        let mut site = SiteSpec::new("pageload.example");
        site.add(Resource::synthetic("/", "text/html", 16_384));
        let mut pushed = Vec::new();
        for i in 0..assets {
            let path = format!("/asset/{i}");
            site.add(Resource::synthetic(&path, asset_kind(i), asset_size));
            pushed.push(path);
        }
        site.push_on("/", pushed)
    }
}

fn asset_kind(i: usize) -> &'static str {
    match i % 3 {
        0 => "application/javascript",
        1 => "text/css",
        _ => "image/png",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_resources_are_deterministic() {
        let a = Resource::synthetic("/x", "text/plain", 100);
        let b = Resource::synthetic("/x", "text/plain", 100);
        assert_eq!(a, b);
        assert_eq!(a.body.len(), 100);
    }

    #[test]
    fn benchmark_site_has_large_objects() {
        let site = SiteSpec::benchmark();
        assert!(site.resource("/").is_some());
        let big = site.resource("/big/0").unwrap();
        assert!(
            big.body.len() >= 4 * 65_535,
            "must span multiple flow-control windows"
        );
    }

    #[test]
    fn push_manifest_lists_all_assets() {
        let site = SiteSpec::page_with_assets(5, 1_000);
        assert_eq!(site.push_manifest["/"].len(), 5);
        for path in &site.push_manifest["/"] {
            assert!(site.resource(path).is_some(), "pushed asset {path} exists");
        }
    }

    #[test]
    fn lookup_miss_returns_none() {
        assert_eq!(SiteSpec::benchmark().resource("/nope"), None);
    }
}
