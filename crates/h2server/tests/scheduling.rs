//! Scheduling-discipline tests: round-robin fairness, sequential
//! ordering, and GOAWAY bookkeeping at the engine level.

use h2conn::{ConnectionCore, EffectiveSettings, Role};
use h2hpack::{EncoderOptions, Header};
use h2server::{H2Server, ServerProfile, SiteSpec};
use h2wire::{
    encode_all, Frame, FrameDecoder, SettingId, Settings, SettingsFrame, StreamId,
    WindowUpdateFrame, CONNECTION_PREFACE,
};
use netsim::pipe::ByteEndpoint;
use netsim::SimTime;

struct Client {
    core: ConnectionCore,
    decoder: FrameDecoder,
}

impl Client {
    fn new() -> Client {
        let mut decoder = FrameDecoder::new();
        decoder.set_max_frame_size(h2wire::settings::MAX_MAX_FRAME_SIZE);
        Client {
            core: ConnectionCore::new(
                Role::Client,
                EffectiveSettings::default(),
                EncoderOptions::default(),
            ),
            decoder,
        }
    }

    fn hello(&self, settings: Settings) -> Vec<u8> {
        let mut bytes = CONNECTION_PREFACE.to_vec();
        Frame::Settings(SettingsFrame::from(settings)).encode(&mut bytes);
        bytes
    }

    fn request(&mut self, stream: u32, path: &str) -> Vec<u8> {
        let headers = vec![
            Header::new(":method", "GET"),
            Header::new(":scheme", "https"),
            Header::new(":path", path),
            Header::new(":authority", "testbed.example"),
        ];
        encode_all(
            &self
                .core
                .encode_headers(StreamId::new(stream), &headers, true, None),
        )
    }

    fn frames(&mut self, bytes: &[u8]) -> Vec<Frame> {
        self.decoder.feed(bytes);
        self.decoder.drain_frames().expect("parses")
    }
}

fn data_sequence(frames: &[Frame]) -> Vec<u32> {
    frames
        .iter()
        .filter_map(|f| match f {
            Frame::Data(d) => Some(d.stream_id.value()),
            _ => None,
        })
        .collect()
}

#[test]
fn round_robin_servers_interleave_fairly() {
    // FCFS/multiplexing servers (Nginx profile) alternate between ready
    // streams chunk by chunk.
    let mut profile = ServerProfile::nginx();
    profile.behavior.announced = Settings::new()
        .with(SettingId::MaxConcurrentStreams, 128)
        .with(SettingId::InitialWindowSize, 65_535);
    profile.behavior.zero_window_then_update = None;
    let mut server = H2Server::new(profile, SiteSpec::benchmark());
    let mut client = Client::new();
    server.on_bytes_vec(SimTime::ZERO, &client.hello(Settings::new()));
    let mut bytes = client.request(1, "/big/1");
    bytes.extend(client.request(3, "/big/2"));
    let reply = server.on_bytes_vec(SimTime::ZERO, &bytes);
    let sequence = data_sequence(&client.frames(&reply));
    // 65,535-octet connection window at 16,384 per chunk = 4 chunks + 1
    // remainder frame; both streams must appear before either repeats
    // twice in a row more than once.
    assert!(sequence.len() >= 4, "{sequence:?}");
    assert!(
        sequence.contains(&1) && sequence.contains(&3),
        "{sequence:?}"
    );
    let switches = sequence.windows(2).filter(|w| w[0] != w[1]).count();
    assert!(switches >= 2, "round-robin must alternate: {sequence:?}");
}

#[test]
fn sequential_server_finishes_one_response_before_the_next() {
    let mut profile = ServerProfile::rfc7540();
    profile.behavior.multiplexing = false;
    let mut server = H2Server::new(profile, SiteSpec::benchmark());
    let mut client = Client::new();
    server.on_bytes_vec(SimTime::ZERO, &client.hello(Settings::new()));
    let mut bytes = client.request(1, "/");
    bytes.extend(client.request(3, "/style.css"));
    let reply = server.on_bytes_vec(SimTime::ZERO, &bytes);
    let sequence = data_sequence(&client.frames(&reply));
    let first_3 = sequence.iter().position(|&s| s == 3).unwrap();
    let last_1 = sequence.iter().rposition(|&s| s == 1).unwrap();
    assert!(
        last_1 < first_3,
        "stream 1 completes before stream 3 starts: {sequence:?}"
    );
}

#[test]
fn goaway_reports_highest_processed_stream() {
    let mut server = H2Server::new(ServerProfile::nghttpd(), SiteSpec::benchmark());
    let mut client = Client::new();
    server.on_bytes_vec(SimTime::ZERO, &client.hello(Settings::new()));
    let mut bytes = client.request(1, "/");
    bytes.extend(client.request(3, "/"));
    bytes.extend(client.request(5, "/"));
    server.on_bytes_vec(SimTime::ZERO, &bytes);
    // Trigger nghttpd's GOAWAY quirk with a zero stream window update.
    let zero = Frame::WindowUpdate(WindowUpdateFrame {
        stream_id: StreamId::new(1),
        increment: 0,
    })
    .to_bytes();
    let reply = server.on_bytes_vec(SimTime::ZERO, &zero);
    let frames = client.frames(&reply);
    let goaway = frames
        .iter()
        .find_map(|f| match f {
            Frame::Goaway(g) => Some(g),
            _ => None,
        })
        .expect("goaway sent");
    assert_eq!(goaway.last_stream_id, StreamId::new(5));
    assert!(server.is_closed());
    // A closed engine stays silent.
    let more = server.on_bytes_vec(SimTime::ZERO, &client.request(7, "/"));
    assert!(more.is_empty());
}

#[test]
fn completion_order_mode_flushes_first_chunks_fcfs() {
    let mut profile = ServerProfile::rfc7540();
    profile.behavior.priority_mode = h2server::behavior::PriorityMode::CompletionOrder;
    let mut server = H2Server::new(profile, SiteSpec::benchmark());
    let mut client = Client::new();
    server.on_bytes_vec(SimTime::ZERO, &client.hello(Settings::new()));
    let mut bytes = client.request(1, "/big/1");
    bytes.extend(client.request(3, "/big/2"));
    let reply = server.on_bytes_vec(SimTime::ZERO, &bytes);
    let sequence = data_sequence(&client.frames(&reply));
    // First two DATA frames are the FCFS flush: stream 1 then stream 3.
    assert_eq!(&sequence[..2], &[1, 3], "{sequence:?}");
}
