//! Robustness properties: the server engine must never panic, whatever
//! bytes arrive — junk, truncated frames, or valid-but-hostile sequences.

use h2server::{H2Server, ServerProfile, SiteSpec};
use h2wire::{
    encode_all, Frame, PingFrame, SettingsFrame, StreamId, WindowUpdateFrame, CONNECTION_PREFACE,
};
use netsim::pipe::ByteEndpoint;
use netsim::SimTime;
use proptest::prelude::*;

fn all_profiles() -> Vec<ServerProfile> {
    let mut profiles = ServerProfile::testbed();
    profiles.extend([
        ServerProfile::rfc7540(),
        ServerProfile::gse(),
        ServerProfile::cloudflare_nginx(),
        ServerProfile::ideaweb(),
        ServerProfile::tengine_aserver(),
    ]);
    profiles
}

proptest! {
    /// Arbitrary bytes after a valid preface: the engine may close the
    /// connection but must not panic or return unparseable output.
    #[test]
    fn junk_after_preface_never_panics(
        profile_idx in 0usize..11,
        junk in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let profile = all_profiles()[profile_idx].clone();
        let mut server = H2Server::new(profile, SiteSpec::benchmark());
        server.on_connect_vec(SimTime::ZERO);
        let mut hello = CONNECTION_PREFACE.to_vec();
        hello.extend(&junk);
        let reply = server.on_bytes_vec(SimTime::ZERO, &hello);
        // Whatever came back must itself be valid HTTP/2 frames.
        let mut dec = h2wire::FrameDecoder::new();
        dec.set_max_frame_size(h2wire::settings::MAX_MAX_FRAME_SIZE);
        dec.feed(&reply);
        prop_assert!(dec.drain_frames().is_ok());
    }

    /// Arbitrary bytes with no preface at all.
    #[test]
    fn junk_without_preface_never_panics(
        junk in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut server = H2Server::new(ServerProfile::rfc7540(), SiteSpec::benchmark());
        let _ = server.on_bytes_vec(SimTime::ZERO, &junk);
    }

    /// Valid frames in arbitrary order never panic and never produce
    /// invalid output, across every profile.
    #[test]
    fn arbitrary_valid_frame_sequences_never_panic(
        profile_idx in 0usize..11,
        ops in prop::collection::vec(0u8..6, 1..25),
    ) {
        let profile = all_profiles()[profile_idx].clone();
        let mut server = H2Server::new(profile, SiteSpec::benchmark());
        server.on_connect_vec(SimTime::ZERO);
        let mut wire = CONNECTION_PREFACE.to_vec();
        Frame::Settings(SettingsFrame::from(h2wire::Settings::new())).encode(&mut wire);
        let mut next_stream = 1u32;
        let mut frames = Vec::new();
        for op in ops {
            match op {
                0 => frames.push(Frame::Ping(PingFrame::request([op; 8]))),
                1 => {
                    frames.push(Frame::WindowUpdate(WindowUpdateFrame {
                        stream_id: StreamId::CONNECTION,
                        increment: 0,
                    }));
                }
                2 => {
                    frames.push(Frame::WindowUpdate(WindowUpdateFrame {
                        stream_id: StreamId::new(next_stream),
                        increment: 0x7fff_ffff,
                    }));
                }
                3 => {
                    frames.push(Frame::Priority(h2wire::PriorityFrame {
                        stream_id: StreamId::new(next_stream),
                        spec: h2wire::PrioritySpec {
                            exclusive: true,
                            dependency: StreamId::new(next_stream), // self!
                            weight: 256,
                        },
                    }));
                }
                4 => {
                    frames.push(Frame::RstStream(h2wire::RstStreamFrame {
                        stream_id: StreamId::new(next_stream),
                        code: h2wire::ErrorCode::Cancel,
                    }));
                    next_stream += 2;
                }
                _ => {
                    frames.push(Frame::Settings(SettingsFrame::from(
                        h2wire::Settings::new()
                            .with(h2wire::SettingId::InitialWindowSize, 0),
                    )));
                }
            }
        }
        wire.extend(encode_all(&frames));
        let reply = server.on_bytes_vec(SimTime::ZERO, &wire);
        let mut dec = h2wire::FrameDecoder::new();
        dec.set_max_frame_size(h2wire::settings::MAX_MAX_FRAME_SIZE);
        dec.feed(&reply);
        prop_assert!(dec.drain_frames().is_ok());
    }
}
