//! Probe targets: something H2Scope can open HTTP/2 connections to.

use std::cell::RefCell;
use std::sync::Arc;

use h2obs::Obs;
use h2server::{H2Server, ServerProfile, SiteSpec};
use netsim::pipe::BytesPool;
use netsim::time::SimDuration;
use netsim::{LinkSpec, Pipe, PipeFaults, TlsConfig};

use crate::resilient::FaultLog;

thread_local! {
    /// Per-thread warmed buffer pool, carried from one probe connection
    /// to the next. A scan worker surveys thousands of sites with ~8
    /// connections each; seeding every [`Pipe`] with the previous
    /// connection's buffers keeps the transport path allocation-free in
    /// steady state — with zero cross-thread sharing, because the pool
    /// follows the worker thread, never the (shared) `Target`. Pooled
    /// buffers are cleared on return, so reuse cannot change any bytes a
    /// probe observes.
    static WORKER_POOL: RefCell<BytesPool> = RefCell::new(BytesPool::default());
}

/// Takes the calling thread's warmed pool (leaving an empty one).
pub(crate) fn lease_pool() -> BytesPool {
    WORKER_POOL.with(|pool| std::mem::take(&mut *pool.borrow_mut()))
}

/// Returns a connection's pool to the calling thread for reuse.
pub(crate) fn reclaim_pool(pool: BytesPool) {
    WORKER_POOL.with(|cell| cell.borrow_mut().absorb(pool));
}

/// A probe target: a server profile, its site content, and the network
/// path to it. In testbed mode the link is a clean LAN; in scan mode
/// `webpop` fills in per-site WAN characteristics.
#[derive(Debug, Clone)]
pub struct Target {
    /// The server implementation behind this site. Shared immutably so
    /// each of the ~8 probe connections per survey is a pointer-bump, not
    /// a deep clone of the whole behavior spec.
    pub profile: Arc<ServerProfile>,
    /// The content it serves (shared immutably, like `profile`).
    pub site: Arc<SiteSpec>,
    /// Path characteristics from the vantage point to the site.
    pub link: LinkSpec,
    /// Base seed; each probe connection derives its own stream of
    /// randomness from it so campaigns replay deterministically.
    pub seed: u64,
    /// Transport faults armed on every connection to this target
    /// (fault campaigns only; empty in testbed mode).
    pub pipe_faults: PipeFaults,
    /// Per-connection probe deadline in simulated time. `None` (the
    /// default) selects the legacy run-to-quiescence pipeline, which is
    /// bit-identical to pre-fault builds; `Some` arms the resilient path:
    /// exchanges stop at the deadline and failures are recorded in
    /// [`Target::fault_log`] instead of panicking.
    pub patience: Option<SimDuration>,
    /// Where probe connections report failures (shared across the clones
    /// handed to individual probes).
    pub fault_log: FaultLog,
    /// Observability handle; `Obs::off()` (the default) records nothing
    /// and keeps probing bit-identical to the uninstrumented baseline.
    pub obs: Obs,
}

impl Target {
    /// A testbed target: `profile` serving `site` over a clean LAN.
    /// Accepts owned values or `Arc`s.
    pub fn testbed(
        profile: impl Into<Arc<ServerProfile>>,
        site: impl Into<Arc<SiteSpec>>,
    ) -> Target {
        Target {
            profile: profile.into(),
            site: site.into(),
            link: LinkSpec::lan(),
            seed: 0x5eed,
            pipe_faults: PipeFaults::none(),
            patience: None,
            fault_log: FaultLog::default(),
            obs: Obs::off(),
        }
    }

    /// The server's TLS negotiation configuration.
    pub fn tls(&self) -> &TlsConfig {
        &self.profile.behavior.tls
    }

    /// Opens a fresh transport connection (new server instance, new pipe),
    /// as every probe in the paper does.
    pub fn connect(&self, conn_seed: u64) -> Pipe<H2Server> {
        // `Arc` clones: no profile/site deep copy on the per-probe path.
        let mut server = H2Server::new(Arc::clone(&self.profile), Arc::clone(&self.site));
        server.set_obs(self.obs.clone());
        let mut pipe = Pipe::connect_pooled(server, self.link, self.seed ^ conn_seed, lease_pool());
        pipe.set_faults(self.pipe_faults);
        pipe.set_obs(self.obs.clone());
        self.obs.conn_opened();
        pipe
    }
}

/// Convenience namespace mirroring the paper's testbed setup.
pub mod testbed {
    use super::*;

    /// A testbed wrapper so examples read like the paper: install a
    /// server, point H2Scope at it.
    #[derive(Debug, Clone)]
    pub struct Testbed {
        target: Target,
    }

    impl Testbed {
        /// Installs `profile` serving `site` in the testbed.
        pub fn new(
            profile: impl Into<Arc<ServerProfile>>,
            site: impl Into<Arc<SiteSpec>>,
        ) -> Testbed {
            Testbed {
                target: Target::testbed(profile, site),
            }
        }

        /// The probe target.
        pub fn target(&self) -> &Target {
            &self.target
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_creates_independent_connections() {
        let target = Target::testbed(ServerProfile::nginx(), SiteSpec::benchmark());
        let mut a = target.connect(1);
        let mut b = target.connect(2);
        // Each connection gets its own greeting.
        assert!(!a.run_to_quiescence().is_empty());
        assert!(!b.run_to_quiescence().is_empty());
    }

    #[test]
    fn tls_reflects_profile() {
        let target = Target::testbed(ServerProfile::apache(), SiteSpec::benchmark());
        assert!(target.tls().npn.is_none());
        assert!(target.tls().alpn.is_some());
    }
}
