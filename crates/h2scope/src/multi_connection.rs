//! The discussion section's first concern, made measurable: "since
//! HTTP/2 uses one TCP connection, its performance may be significantly
//! affected in a lossy environment ... Using more than one TCP connection
//! could mitigate such problem."
//!
//! A lost segment on a reliable byte stream stalls *everything* behind it
//! (head-of-line blocking at the transport). One HTTP/2 connection
//! multiplexes all streams over one such pipe; splitting the same
//! transfer across several connections dilutes each loss event to a
//! fraction of the streams.

// h2check: allow-file(index) — lane vectors sized at construction and indexed by loop bounds

use std::collections::HashSet;

use h2wire::{Frame, Settings};
use netsim::time::SimDuration;

use crate::client::ProbeConn;
use crate::target::Target;

/// Result of one page-load trial over `connections` transports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiConnLoad {
    /// Connections used.
    pub connections: usize,
    /// Total time from first request to last byte.
    pub load_time: SimDuration,
    /// Octets transferred (page + assets).
    pub octets: u64,
}

/// Fetches `/` plus `assets` synthetic asset paths, split round-robin
/// across `connections` HTTP/2 connections.
///
/// # Panics
///
/// Panics if `connections == 0`.
pub fn load_with_connections(
    target: &Target,
    assets: &[String],
    connections: usize,
    seed: u64,
) -> MultiConnLoad {
    assert!(connections > 0, "at least one connection required");
    // Connection 0 carries the page; assets are spread over all conns.
    // Like a real browser, the client opens generous flow-control windows
    // up front so throughput is path-limited, not window-limited.
    let big = 1u32 << 30;
    let settings = Settings::new().with(h2wire::SettingId::InitialWindowSize, big);
    let mut conns: Vec<ProbeConn> = (0..connections)
        .map(|c| ProbeConn::establish(target, settings.clone(), seed ^ (c as u64) << 16))
        .collect();
    for conn in &mut conns {
        conn.send(Frame::WindowUpdate(h2wire::WindowUpdateFrame {
            stream_id: h2wire::StreamId::CONNECTION,
            increment: big,
        }));
        conn.exchange();
    }
    let mut octets = 0u64;

    // Page on connection 0.
    let (frames, _) = conns[0].fetch(1, "/");
    octets += data_octets(&frames);
    let page_done = conns[0].now();

    // Assets in parallel: each connection issues its share as concurrent
    // streams, then drains with window replenishment.
    let mut next_stream: Vec<u32> = vec![3; connections];
    let mut pending: Vec<HashSet<u32>> = vec![HashSet::new(); connections];
    for (k, asset) in assets.iter().enumerate() {
        let c = k % connections;
        let stream = next_stream[c];
        next_stream[c] += 2;
        conns[c].get(stream, asset, None);
        pending[c].insert(stream);
    }
    let mut finish = page_done;
    for (c, conn) in conns.iter_mut().enumerate() {
        loop {
            let frames = conn.exchange();
            if frames.is_empty() {
                break;
            }
            for tf in &frames {
                if let Frame::Data(d) = &tf.frame {
                    octets += d.data.len() as u64;
                    conn.replenish(d.stream_id.value(), d.flow_controlled_len());
                    if d.end_stream {
                        pending[c].remove(&d.stream_id.value());
                    }
                }
            }
            if pending[c].is_empty() {
                break;
            }
        }
        // Connections ran concurrently in real time; the page phase is
        // shared, the asset phase is the per-connection tail.
        finish = finish.max(conn.now());
    }
    MultiConnLoad {
        connections,
        load_time: finish - netsim::SimTime::ZERO,
        octets,
    }
}

fn data_octets(frames: &[crate::client::TimedFrame]) -> u64 {
    frames
        .iter()
        .filter_map(|tf| match &tf.frame {
            Frame::Data(d) => Some(d.data.len() as u64),
            _ => None,
        })
        .sum()
}

/// Runs the single-vs-multi comparison over `trials` seeds, returning
/// mean load times in ms: `(one_connection, k_connections)`.
pub fn compare(target: &Target, assets: &[String], k: usize, trials: usize) -> (f64, f64) {
    let mut single = 0.0;
    let mut multi = 0.0;
    for t in 0..trials {
        let seed = 0x10ad ^ (t as u64) << 24;
        single += load_with_connections(target, assets, 1, seed)
            .load_time
            .as_millis_f64();
        multi += load_with_connections(target, assets, k, seed)
            .load_time
            .as_millis_f64();
    }
    (single / trials as f64, multi / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};
    use netsim::LinkSpec;

    fn asset_paths(n: usize) -> Vec<String> {
        (1..=n).map(|k| format!("/big/{k}")).collect()
    }

    fn target_with(loss: f64) -> Target {
        let mut target = Target::testbed(ServerProfile::h2o(), SiteSpec::benchmark());
        // High bandwidth so the comparison isolates loss-induced stalls
        // rather than per-connection serialization capacity.
        target.link = LinkSpec {
            bandwidth_bps: Some(1_000_000_000),
            ..LinkSpec::mobile(30, loss)
        };
        target
    }

    #[test]
    fn all_octets_arrive_regardless_of_connection_count() {
        let target = target_with(0.0);
        let assets = asset_paths(4);
        let one = load_with_connections(&target, &assets, 1, 7);
        let four = load_with_connections(&target, &assets, 4, 7);
        assert_eq!(one.octets, four.octets);
        assert!(one.octets > 4 * 200_000, "four big objects plus the page");
    }

    #[test]
    fn on_a_clean_link_one_connection_wins_or_ties() {
        // Without loss, extra connections only add handshakes.
        let target = target_with(0.0);
        let assets = asset_paths(4);
        let (single, multi) = compare(&target, &assets, 4, 3);
        assert!(single <= multi * 1.15, "single {single} vs multi {multi}");
    }

    #[test]
    fn on_a_lossy_link_multiple_connections_help() {
        // The paper's §VI claim: loss hits a single multiplexed pipe
        // hardest. 8% loss, 30 ms one-way. Enough objects and trials
        // that the head-of-line effect dominates seed-to-seed noise.
        let target = target_with(0.08);
        let assets = asset_paths(10);
        let (single, multi) = compare(&target, &assets, 3, 16);
        assert!(
            multi < single,
            "multi-connection should win under loss: single {single} vs multi {multi}"
        );
    }
}
