//! Reports: the per-server characterization (Table III) and the per-site
//! scan record (the paper's measurement "database").

use serde::{Deserialize, Serialize};

use h2wire::{Frame, Settings};

use crate::client::ProbeConn;
use crate::probes::flow_control::FlowControlReport;
use crate::probes::hpack::HpackReport;
use crate::probes::multiplexing::MultiplexingReport;
use crate::probes::negotiation::NegotiationReport;
use crate::probes::ping::PingReport;
use crate::probes::priority::PriorityReport;
use crate::probes::push::PushReport;
use crate::probes::settings::SettingsReport;
use crate::resilient::ProbeStats;
use crate::target::Target;

/// A full characterization of one server — a column of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerCharacterization {
    /// Profile name ("Nginx", "LiteSpeed", ...).
    pub server: String,
    /// Version tested.
    pub version: String,
    /// ALPN / NPN support.
    pub negotiation: NegotiationReport,
    /// Announced SETTINGS.
    pub settings: SettingsReport,
    /// Request multiplexing verdict.
    pub multiplexing: MultiplexingReport,
    /// The four flow-control probes.
    pub flow_control: FlowControlReport,
    /// Algorithm 1 plus self-dependency.
    pub priority: PriorityReport,
    /// Server push detection.
    pub push: PushReport,
    /// HPACK compression ratio.
    pub hpack: HpackReport,
    /// PING support and RTTs.
    pub ping: PingReport,
}

/// One scanned site's record — what H2Scope stores per site during the
/// top-1M campaigns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteReport {
    /// The site's authority (synthetic rank-derived hostname in scans).
    pub authority: String,
    /// ALPN / NPN support.
    pub negotiation: NegotiationReport,
    /// `server` response header, when a HEADERS frame came back.
    pub server_name: Option<String>,
    /// `true` when a HEADERS frame was received at all (the paper's
    /// 44,390 / 64,299 counts).
    pub headers_received: bool,
    /// Announced SETTINGS.
    pub settings: SettingsReport,
    /// Flow-control probes (only run when the site returned HEADERS).
    pub flow_control: Option<FlowControlReport>,
    /// Priority probes.
    pub priority: Option<PriorityReport>,
    /// Push probe.
    pub push: Option<PushReport>,
    /// HPACK probe.
    pub hpack: Option<HpackReport>,
    /// Resilience accounting: how the survey resolved, attempts spent,
    /// total backoff. Default (`Ok`/1/zero) outside fault campaigns.
    pub probe: ProbeStats,
}

/// Result of the HEADERS-returning probe: whether any HEADERS frame came
/// back for a front-page request, and the `server` field if present.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeadersProbe {
    /// At least one HEADERS frame was received.
    pub headers_received: bool,
    /// The `server` response header.
    pub server: Option<String>,
}

/// Fetches `/` once, recording whether HEADERS came back at all (the
/// paper's 44,390 / 64,299 funnel) and the `server` header, mirroring how
/// the paper identifies server families (§V-B2, with the caveat that the
/// field can be spoofed).
pub fn headers_probe(target: &Target) -> HeadersProbe {
    target.obs.enter_probe(h2obs::ProbeKind::Headers);
    let mut conn = ProbeConn::establish(target, Settings::new(), 0x5eb0);
    conn.exchange();
    let (frames, _) = conn.fetch(1, "/");
    for tf in &frames {
        if matches!(tf.frame, Frame::Headers(_)) {
            let server = tf
                .headers
                .as_ref()
                .and_then(|hs| hs.iter().find(|h| h.name == "server"))
                .map(|h| h.value.clone());
            return HeadersProbe {
                headers_received: true,
                server,
            };
        }
    }
    HeadersProbe {
        headers_received: false,
        server: None,
    }
}

/// Convenience wrapper returning only the `server` header.
pub fn server_name(target: &Target) -> Option<String> {
    headers_probe(target).server
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    #[test]
    fn server_name_comes_from_response_headers() {
        let target = Target::testbed(ServerProfile::nginx(), SiteSpec::benchmark());
        assert_eq!(server_name(&target).as_deref(), Some("nginx/1.9.15"));
        let target = Target::testbed(ServerProfile::gse(), SiteSpec::benchmark());
        assert_eq!(server_name(&target).as_deref(), Some("GSE"));
    }
}
