//! Page-load-time model for the server-push experiment (Figure 3).
//!
//! The paper loads 15 push-enabled sites 30 times each in Firefox with
//! push on and off. Here the "browser" knows the page's asset list (the
//! stand-in for parsing HTML) and either receives the assets pushed
//! alongside the page or requests them after the page arrives — the one
//! round trip that push saves.

use std::collections::{HashMap, HashSet};

use h2wire::{Frame, SettingId, Settings};
use netsim::time::SimDuration;

use crate::client::ProbeConn;
use crate::target::Target;

/// One page load measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageLoad {
    /// Time from the page request to the last byte of page + assets.
    pub load_time: SimDuration,
    /// Number of assets that arrived via push.
    pub pushed_assets: usize,
}

/// Loads the front page with push enabled or disabled, returning the page
/// load time.
pub fn page_load(target: &Target, enable_push: bool, seed: u64) -> PageLoad {
    let settings = Settings::new().with(SettingId::EnablePush, u32::from(enable_push));
    let mut conn = ProbeConn::establish(target, settings, seed);
    conn.exchange();

    let assets: Vec<String> = target
        .site
        .push_manifest
        .get("/")
        .cloned()
        .unwrap_or_default();
    let t0 = conn.now();
    conn.get(1, "/", None);

    let mut expected: HashSet<u32> = HashSet::from([1]);
    let mut completed: HashSet<u32> = HashSet::new();
    let mut promised: HashMap<String, u32> = HashMap::new();
    let mut requested_assets = false;
    let mut next_stream = 3u32;

    loop {
        let frames = conn.exchange();
        let mut sent_something = false;
        for tf in &frames {
            match &tf.frame {
                Frame::PushPromise(p) => {
                    expected.insert(p.promised_stream_id.value());
                    if let Some(headers) = &tf.headers {
                        if let Some(path) = headers.iter().find(|h| h.name == ":path") {
                            promised.insert(path.value.clone(), p.promised_stream_id.value());
                        }
                    }
                }
                Frame::Data(d) => {
                    conn.replenish(d.stream_id.value(), d.flow_controlled_len());
                    sent_something = true;
                    if d.end_stream {
                        completed.insert(d.stream_id.value());
                    }
                }
                Frame::Headers(h) if h.end_stream => {
                    completed.insert(h.stream_id.value());
                }
                _ => {}
            }
        }
        // Once the page itself is down, "parse the HTML" and request any
        // asset that was not pushed.
        if completed.contains(&1) && !requested_assets {
            requested_assets = true;
            for asset in &assets {
                if !promised.contains_key(asset) {
                    conn.get(next_stream, asset, None);
                    expected.insert(next_stream);
                    next_stream += 2;
                    sent_something = true;
                }
            }
        }
        if expected.iter().all(|s| completed.contains(s)) {
            break;
        }
        if frames.is_empty() && !sent_something {
            break; // stalled: count what we have
        }
    }

    PageLoad {
        load_time: conn.now() - t0,
        pushed_assets: promised.len(),
    }
}

/// Runs the paper's experiment: `loads` page loads with push enabled and
/// disabled, returning (enabled, disabled) load-time samples in ms.
pub fn compare(target: &Target, loads: usize) -> (Vec<f64>, Vec<f64>) {
    let mut enabled = Vec::with_capacity(loads);
    let mut disabled = Vec::with_capacity(loads);
    for i in 0..loads {
        let seed = 0x9a6e ^ (i as u64) << 8;
        enabled.push(page_load(target, true, seed).load_time.as_millis_f64());
        disabled.push(page_load(target, false, seed).load_time.as_millis_f64());
    }
    (enabled, disabled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};
    use netsim::LinkSpec;

    fn push_target(profile: ServerProfile) -> Target {
        let mut target = Target::testbed(profile, SiteSpec::page_with_assets(8, 20_000));
        target.link = LinkSpec::wan(40);
        target
    }

    #[test]
    fn push_reduces_page_load_time() {
        let target = push_target(ServerProfile::h2o());
        let with_push = page_load(&target, true, 1);
        let without_push = page_load(&target, false, 1);
        assert_eq!(with_push.pushed_assets, 8);
        assert_eq!(without_push.pushed_assets, 0);
        assert!(
            with_push.load_time < without_push.load_time,
            "push {} vs no-push {}",
            with_push.load_time,
            without_push.load_time
        );
    }

    #[test]
    fn push_incapable_server_shows_no_difference_in_shape() {
        let target = push_target(ServerProfile::nginx());
        let with_push = page_load(&target, true, 1);
        assert_eq!(with_push.pushed_assets, 0, "nginx pushes nothing");
    }

    #[test]
    fn compare_produces_paired_samples() {
        let target = push_target(ServerProfile::apache());
        let (enabled, disabled) = compare(&target, 5);
        assert_eq!(enabled.len(), 5);
        assert_eq!(disabled.len(), 5);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&enabled) < mean(&disabled), "Figure 3's typical case");
    }
}
