//! Scan resilience: probe deadlines, failure taxonomy, retry/backoff.
//!
//! The paper's campaign ran against the live Internet, where probes time
//! out, connections reset mid-frame, and some servers emit bytes that are
//! not HTTP/2 at all. The testbed pipeline can afford to panic on any of
//! that ("bugs in the engine, not measurable behaviors") — a wild scan
//! cannot. This module is the survivable path: every probe resolves to a
//! [`ProbeOutcome`] within its simulated-time deadline, failed surveys are
//! retried with exponential backoff, and the attempt/backoff accounting
//! rides along on the [`SiteReport`] so aggregation can separate
//! timeout-derived "no response" rows from behavioral quirks (§V-D).
//!
//! With no faults configured (`Target::patience == None`) none of this is
//! active and the scan byte-stream is identical to the legacy pipeline.

use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use h2fault::RetryPolicy;
use netsim::time::SimDuration;

use crate::report::SiteReport;
use crate::scope::H2Scope;
use crate::target::Target;

/// The first thing that went wrong on a probe connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeFailure {
    /// The simulated-time deadline elapsed before the exchange finished.
    Timeout,
    /// The transport was cut (scheduled drop or server-demanded reset).
    ConnReset,
    /// The server emitted bytes that do not parse as HTTP/2.
    Malformed,
}

/// Final classification of one site's survey — the taxonomy `bench`
/// aggregates (§V-D "no response" rows come from `Timeout`, not quirks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// Every probe exchange completed.
    Ok,
    /// Died waiting on the deadline (no retry budget).
    Timeout,
    /// Connection reset (no retry budget).
    ConnReset,
    /// Unparseable server bytes (no retry budget).
    Malformed,
    /// Every attempt in the retry budget failed.
    GaveUpAfterRetries,
}

impl From<ProbeFailure> for ProbeOutcome {
    fn from(f: ProbeFailure) -> ProbeOutcome {
        match f {
            ProbeFailure::Timeout => ProbeOutcome::Timeout,
            ProbeFailure::ConnReset => ProbeOutcome::ConnReset,
            ProbeFailure::Malformed => ProbeOutcome::Malformed,
        }
    }
}

/// Per-site resilience accounting carried on every [`SiteReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeStats {
    /// How the survey resolved.
    pub outcome: ProbeOutcome,
    /// Survey attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// Total simulated time spent backing off between attempts.
    pub backoff: SimDuration,
}

impl Default for ProbeStats {
    fn default() -> ProbeStats {
        ProbeStats {
            outcome: ProbeOutcome::Ok,
            attempts: 1,
            backoff: SimDuration::ZERO,
        }
    }
}

/// Shared failure channel: probe connections record the first failure
/// they hit; the retry driver reads and clears it between attempts.
/// Cloning shares the underlying log (it travels inside [`Target`]).
#[derive(Debug, Clone, Default)]
pub struct FaultLog(Arc<Mutex<Vec<ProbeFailure>>>);

impl FaultLog {
    /// Records one failure.
    pub fn record(&self, failure: ProbeFailure) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(failure);
    }

    /// The first failure recorded since the last [`FaultLog::clear`].
    pub fn first(&self) -> Option<ProbeFailure> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .first()
            .copied()
    }

    /// Count of failures recorded.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// `true` when nothing failed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forgets everything (start of a fresh attempt).
    pub fn clear(&self) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

/// Hard ceiling on a single retry pause, regardless of what the
/// [`RetryPolicy`] asks for. A policy is campaign input (profiles are
/// user-configurable), so a degenerate budget — huge base, huge
/// multiplier, `max_backoff` near `u64::MAX` — must not be able to
/// overflow the per-site backoff accounting or stall a scan for
/// simulated centuries. One minute per pause is already far beyond any
/// useful scan patience.
pub const MAX_RETRY_BACKOFF: SimDuration = SimDuration::from_secs(60);

/// Surveys a site with bounded retries: `target_for_attempt(n)` supplies
/// the (possibly re-impaired) target for attempt `n`; a survey whose
/// fault log stayed empty is accepted, otherwise the next attempt starts
/// after an exponential-backoff pause in simulated time. The last
/// report — successful or not — is returned with its [`ProbeStats`]
/// filled in.
pub fn survey_with_retries(
    scope: &H2Scope,
    policy: RetryPolicy,
    seed: u64,
    mut target_for_attempt: impl FnMut(u32) -> Target,
) -> SiteReport {
    let max_attempts = policy.max_attempts.max(1);
    let mut backoff = SimDuration::ZERO;
    let mut attempts = 0;
    let mut last: Option<(SiteReport, Option<ProbeFailure>)> = None;
    for attempt in 0..max_attempts {
        let target = target_for_attempt(attempt);
        target.fault_log.clear();
        let report = scope.survey(&target);
        let failure = target.fault_log.first();
        attempts = attempt + 1;
        let failed = failure.is_some();
        last = Some((report, failure));
        if !failed {
            break;
        }
        if attempt + 1 < max_attempts {
            let pause = policy.backoff(attempt + 1, seed).min(MAX_RETRY_BACKOFF);
            backoff = backoff.saturating_add(pause);
            // Retry telemetry: attempt numbers are 1-based (the retry that
            // is about to run), stamped at the accumulated backoff offset.
            target
                .obs
                .retry(attempt + 2, pause.as_nanos(), backoff.as_nanos());
        }
    }
    // h2check: allow(panic) — max_attempts.max(1) guarantees one loop pass
    let (mut report, failure) = last.expect("at least one attempt runs");
    let outcome = match failure {
        None => ProbeOutcome::Ok,
        Some(f) if max_attempts == 1 => f.into(),
        Some(_) => ProbeOutcome::GaveUpAfterRetries,
    };
    report.probe = ProbeStats {
        outcome,
        attempts,
        backoff,
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};
    use netsim::PipeFaults;

    fn patient_target(profile: ServerProfile) -> Target {
        let mut target = Target::testbed(profile, SiteSpec::benchmark());
        target.patience = Some(SimDuration::from_secs(5));
        target
    }

    #[test]
    fn clean_site_surveys_ok_on_first_attempt() {
        let scope = H2Scope::new();
        let report = survey_with_retries(&scope, RetryPolicy::standard(), 9, |_| {
            patient_target(ServerProfile::nginx())
        });
        assert_eq!(report.probe.outcome, ProbeOutcome::Ok);
        assert_eq!(report.probe.attempts, 1);
        assert_eq!(report.probe.backoff, SimDuration::ZERO);
        assert!(report.headers_received);
    }

    #[test]
    fn stalled_target_times_out_and_gives_up() {
        let scope = H2Scope::new();
        let report = survey_with_retries(&scope, RetryPolicy::standard(), 9, |_| {
            let mut target = patient_target(ServerProfile::nginx());
            target.pipe_faults = PipeFaults {
                stall_after_bytes: Some(0),
                ..PipeFaults::none()
            };
            target
        });
        assert_eq!(report.probe.outcome, ProbeOutcome::GaveUpAfterRetries);
        assert_eq!(report.probe.attempts, RetryPolicy::standard().max_attempts);
        assert!(report.probe.backoff > SimDuration::ZERO);
    }

    #[test]
    fn no_retry_policy_reports_the_raw_failure() {
        let scope = H2Scope::new();
        let report = survey_with_retries(&scope, RetryPolicy::no_retry(), 9, |_| {
            let mut target = patient_target(ServerProfile::nginx());
            target.pipe_faults = PipeFaults {
                stall_after_bytes: Some(0),
                ..PipeFaults::none()
            };
            target
        });
        assert_eq!(report.probe.outcome, ProbeOutcome::Timeout);
        assert_eq!(report.probe.attempts, 1);
    }

    #[test]
    fn retry_recovers_when_a_later_attempt_is_clean() {
        let scope = H2Scope::new();
        let report = survey_with_retries(&scope, RetryPolicy::standard(), 9, |attempt| {
            let mut target = patient_target(ServerProfile::nginx());
            if attempt == 0 {
                target.pipe_faults = PipeFaults {
                    stall_after_bytes: Some(0),
                    ..PipeFaults::none()
                };
            }
            target
        });
        assert_eq!(report.probe.outcome, ProbeOutcome::Ok);
        assert_eq!(report.probe.attempts, 2);
        assert!(report.probe.backoff > SimDuration::ZERO);
        assert!(report.headers_received, "the clean retry's report is kept");
    }

    #[test]
    fn connection_drop_classifies_as_reset() {
        let scope = H2Scope::new();
        let report = survey_with_retries(&scope, RetryPolicy::no_retry(), 9, |_| {
            let mut target = patient_target(ServerProfile::nginx());
            target.pipe_faults = PipeFaults {
                drop_after_bytes: Some(64),
                ..PipeFaults::none()
            };
            target
        });
        assert_eq!(report.probe.outcome, ProbeOutcome::ConnReset);
    }

    #[test]
    fn byzantine_garbage_preface_classifies_as_malformed() {
        let mut profile = ServerProfile::nginx();
        profile.behavior.byzantine = Some(h2fault::ByzantineSpec {
            garbage_preface: true,
            ..h2fault::ByzantineSpec::default()
        });
        let scope = H2Scope::new();
        let report = survey_with_retries(&scope, RetryPolicy::no_retry(), 9, |_| {
            patient_target(profile.clone())
        });
        assert_eq!(report.probe.outcome, ProbeOutcome::Malformed);
    }

    #[test]
    fn byzantine_trickle_resolves_within_the_deadline() {
        let mut profile = ServerProfile::nginx();
        profile.behavior.byzantine = Some(h2fault::ByzantineSpec {
            trickle_data: Some(32),
            trickle_delay: SimDuration::from_millis(400),
            ..h2fault::ByzantineSpec::default()
        });
        let scope = H2Scope::new();
        // Must terminate — the deadline, not the trickle, ends the probe.
        let report = survey_with_retries(&scope, RetryPolicy::no_retry(), 9, |_| {
            patient_target(profile.clone())
        });
        assert_eq!(report.probe.outcome, ProbeOutcome::Timeout);
    }

    #[test]
    fn degenerate_retry_budget_cannot_overflow_backoff() {
        // Regression: the backoff accumulator used unchecked `+` and no
        // per-pause ceiling, so a pathological policy (the budget
        // boundary: every field maxed) overflowed u64 nanoseconds after a
        // handful of retries. Every pause must clamp to
        // MAX_RETRY_BACKOFF and the total must saturate, not wrap.
        let policy = RetryPolicy {
            max_attempts: 16,
            base_backoff: SimDuration::from_nanos(u64::MAX / 2),
            multiplier: u32::MAX,
            max_backoff: SimDuration::from_nanos(u64::MAX),
        };
        let scope = H2Scope::new();
        let report = survey_with_retries(&scope, policy, 9, |_| {
            let mut target = patient_target(ServerProfile::nginx());
            target.pipe_faults = PipeFaults {
                stall_after_bytes: Some(0),
                ..PipeFaults::none()
            };
            target
        });
        assert_eq!(report.probe.outcome, ProbeOutcome::GaveUpAfterRetries);
        assert_eq!(report.probe.attempts, 16);
        // 15 pauses, each clamped: the total is bounded and non-zero.
        assert!(report.probe.backoff > SimDuration::ZERO);
        assert!(report.probe.backoff <= MAX_RETRY_BACKOFF.saturating_mul(15));
    }

    #[test]
    fn standard_policy_pauses_are_unaffected_by_the_clamp() {
        // The documented ceiling sits far above RetryPolicy::standard()'s
        // own 8 s cap, so existing campaigns keep their exact timings.
        let policy = RetryPolicy::standard();
        for retry in 1..=8 {
            for seed in [0u64, 9, 0xfa17] {
                assert!(policy.backoff(retry, seed) < MAX_RETRY_BACKOFF);
            }
        }
    }

    #[test]
    fn zero_fault_patient_survey_matches_legacy_report() {
        // Resilience plumbing with no faults must not change measurements.
        for profile in [ServerProfile::nginx(), ServerProfile::litespeed()] {
            let scope = H2Scope::new();
            let legacy = scope.survey(&Target::testbed(profile.clone(), SiteSpec::benchmark()));
            let patient = scope.survey(&patient_target(profile));
            assert_eq!(legacy, patient);
        }
    }
}
