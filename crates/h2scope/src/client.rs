//! The frame-level probe connection.
//!
//! This is the heart of H2Scope's methodology: a client that speaks
//! HTTP/2 at the *frame* level, free to send protocol-violating frames
//! (zero window updates, self-dependencies, oversized increments) that no
//! general-purpose HTTP/2 library would emit, and to observe exactly
//! which frames come back and in what order.

use bytes::Bytes;
use h2hpack::{Decoder as HpackDecoder, Encoder as HpackEncoder, Header};
use h2obs::Obs;
use h2server::H2Server;
use h2wire::settings::MAX_MAX_FRAME_SIZE;
use h2wire::{
    encode_all_into, Frame, FrameDecoder, HeadersFrame, PrioritySpec, SettingId, Settings,
    SettingsFrame, StreamId, WindowUpdateFrame, CONNECTION_PREFACE,
};
use netsim::time::SimTime;
use netsim::{Pipe, RunOutcome};

use crate::resilient::{FaultLog, ProbeFailure};
use crate::target::Target;

/// A received frame with its virtual arrival time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedFrame {
    /// When the bytes carrying this frame arrived at the client.
    pub at: SimTime,
    /// The decoded frame.
    pub frame: Frame,
    /// For HEADERS/PUSH_PROMISE frames completing a header block: the
    /// HPACK-decoded list. Decoded eagerly, in arrival order, because
    /// HPACK contexts are stateful — skipping a block would corrupt every
    /// later decode. Shared (`Arc`) because every frame is retained in
    /// [`ProbeConn::received`] as well as returned to the probe, and the
    /// retained copy should be a refcount bump, not a re-allocation of
    /// every header string.
    pub headers: Option<std::sync::Arc<Vec<Header>>>,
}

/// A frame-level HTTP/2 client connection to one [`Target`].
#[derive(Debug)]
pub struct ProbeConn {
    pipe: Pipe<H2Server>,
    decoder: FrameDecoder,
    hpack_decoder: HpackDecoder,
    hpack_encoder: HpackEncoder,
    assembler: h2conn::HeaderAssembler,
    authority: String,
    /// Every frame received so far, in arrival order.
    pub received: Vec<TimedFrame>,
    /// Deadline for the whole connection in simulated time (`None` =
    /// legacy, fault-free pipeline: run to quiescence, panic on garbage).
    deadline: Option<SimTime>,
    /// The connection hit a failure; further exchanges are no-ops.
    dead: bool,
    /// Shared failure channel (clone of the target's).
    log: FaultLog,
    /// Observability handle (clone of the target's; a no-op by default).
    obs: Obs,
    /// Reusable encode buffer so `send`/`send_all` stop allocating a
    /// fresh `Vec<u8>` per outgoing segment.
    wire_scratch: Vec<u8>,
    /// Reusable request-header template for [`ProbeConn::get`]: built on
    /// first use, then only the `:path` value is rewritten in place, so
    /// repeat GETs stop re-allocating seven headers' worth of `String`s.
    req_scratch: Vec<Header>,
}

impl Drop for ProbeConn {
    fn drop(&mut self) {
        // The connection's virtual lifetime is its latency contribution:
        // every probe opens a fresh connection at t=0 and drops it when
        // done, so `now()` at drop is the whole exchange.
        self.obs.conn_finished(self.pipe.now().as_nanos());
        // Hand the warmed buffer pool back to this worker thread so the
        // next connection starts allocation-free.
        crate::target::reclaim_pool(self.pipe.take_pool());
    }
}

impl ProbeConn {
    /// Opens a connection and performs the HTTP/2 prelude: preface plus
    /// the client's SETTINGS (the knob most probes customize).
    pub fn establish(target: &Target, client_settings: Settings, seed: u64) -> ProbeConn {
        let pipe = target.connect(seed);
        let mut decoder = FrameDecoder::new();
        // The probe accepts any frame size: it must observe rather than
        // police what servers send.
        decoder.set_max_frame_size(MAX_MAX_FRAME_SIZE);
        let mut hpack_decoder = HpackDecoder::new();
        // Our announced SETTINGS govern what the server may do to us: a
        // larger HEADER_TABLE_SIZE permits larger table-size updates in
        // the server's header blocks.
        if let Some(size) = client_settings.get(SettingId::HeaderTableSize) {
            hpack_decoder.set_protocol_max_table_size(size);
        }
        let mut conn = ProbeConn {
            pipe,
            decoder,
            hpack_decoder,
            hpack_encoder: HpackEncoder::new(),
            assembler: h2conn::HeaderAssembler::new(),
            authority: target.site.authority.clone(),
            received: Vec::new(),
            deadline: target.patience.map(|p| SimTime::ZERO + p),
            dead: false,
            log: target.fault_log.clone(),
            obs: target.obs.clone(),
            wire_scratch: Vec::new(),
            req_scratch: Vec::new(),
        };
        conn.wire_scratch.extend_from_slice(CONNECTION_PREFACE);
        Frame::Settings(SettingsFrame::from(client_settings)).encode(&mut conn.wire_scratch);
        // The prelude SETTINGS bypasses `send`, so count it here.
        conn.obs.frame_sent(0x4, conn.pipe.now().as_nanos());
        conn.pipe.client_send(&conn.wire_scratch);
        conn
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.pipe.now()
    }

    /// Advances the virtual clock without sending traffic (think
    /// `sleep`). Abuse probes use this to model a client that goes
    /// quiet mid-request and waits out the server's patience.
    pub fn advance(&mut self, d: netsim::time::SimDuration) {
        self.pipe.advance(d);
    }

    /// Access to the server under probe (testbed-mode inspection).
    pub fn server(&self) -> &H2Server {
        self.pipe.server()
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: Frame) {
        self.obs
            .frame_sent(frame.kind().to_u8(), self.pipe.now().as_nanos());
        self.wire_scratch.clear();
        frame.encode(&mut self.wire_scratch);
        self.pipe.client_send(&self.wire_scratch);
    }

    /// Sends several frames as one segment.
    pub fn send_all(&mut self, frames: &[Frame]) {
        for frame in frames {
            self.obs
                .frame_sent(frame.kind().to_u8(), self.pipe.now().as_nanos());
        }
        self.wire_scratch.clear();
        encode_all_into(frames, &mut self.wire_scratch);
        self.pipe.client_send(&self.wire_scratch);
    }

    /// Sends a GET request on `stream`, optionally with priority fields,
    /// returning the encoded HEADERS frame size for reference.
    pub fn get(&mut self, stream: u32, path: &str, priority: Option<PrioritySpec>) -> usize {
        if self.req_scratch.is_empty() {
            self.req_scratch = self.request_headers(path);
        } else {
            let h = self
                .req_scratch
                .iter_mut()
                .find(|h| h.name == ":path")
                // h2check: allow(panic) — request_headers() always emits :path
                .expect("request template always carries :path");
            h.value.clear();
            h.value.push_str(path);
        }
        let block = self.hpack_encoder.encode_block(&self.req_scratch);
        let len = block.len();
        self.send(Frame::Headers(HeadersFrame {
            stream_id: StreamId::new(stream),
            fragment: block.into(),
            end_stream: true,
            end_headers: true,
            priority,
            pad_len: None,
        }));
        len
    }

    /// Encodes `headers` through the connection's HPACK context and
    /// sends the block as HEADERS plus however many CONTINUATION frames
    /// the fragment needs (split at 16 000 octets, under the default
    /// SETTINGS_MAX_FRAME_SIZE). Returns the total block size in octets.
    ///
    /// Unlike [`ProbeConn::get`] this takes an arbitrary header list, so
    /// probes can build oversized lists (SETTINGS_MAX_HEADER_LIST_SIZE
    /// probing) or bodied requests (slow-POST) on any stream.
    pub fn send_header_block(
        &mut self,
        stream: u32,
        headers: &[Header],
        end_stream: bool,
    ) -> usize {
        const FRAGMENT: usize = 16_000;
        let block: Bytes = self.hpack_encoder.encode_block(headers).into();
        let len = block.len();
        let mut offset = len.min(FRAGMENT);
        self.send(Frame::Headers(HeadersFrame {
            stream_id: StreamId::new(stream),
            fragment: block.slice(..offset),
            end_stream,
            end_headers: offset == len,
            priority: None,
            pad_len: None,
        }));
        while offset < len {
            let next = len.min(offset + FRAGMENT);
            self.send(Frame::Continuation(h2wire::ContinuationFrame {
                stream_id: StreamId::new(stream),
                fragment: block.slice(offset..next),
                end_headers: next == len,
            }));
            offset = next;
        }
        len
    }

    /// The standard request header list the probe sends.
    pub fn request_headers(&self, path: &str) -> Vec<Header> {
        vec![
            Header::new(":method", "GET"),
            Header::new(":scheme", "https"),
            Header::new(":path", path),
            Header::new(":authority", self.authority.clone()),
            Header::new("user-agent", "h2scope/0.1"),
            Header::new("accept", "*/*"),
            Header::new("accept-encoding", "gzip, deflate"),
        ]
    }

    /// Runs the network and returns (and retains) the newly received
    /// frames, with header blocks HPACK-decoded in arrival order.
    ///
    /// Without a deadline (testbed mode) the pipe runs to quiescence and
    /// unparseable server output panics — bugs in the engine, not
    /// measurable behaviors. With a deadline (fault campaigns) the
    /// exchange is guarded: it stops at the deadline, and timeouts,
    /// connection resets and malformed bytes are recorded in the target's
    /// fault log instead of panicking. A failed connection goes dead:
    /// later exchanges return nothing.
    pub fn exchange(&mut self) -> Vec<TimedFrame> {
        let Some(deadline) = self.deadline else {
            let arrivals = self.pipe.run_to_quiescence();
            let mut new_frames = Vec::new();
            for arrival in arrivals {
                // Wrapping the delivery in `Bytes` is free (the Vec's
                // heap block is adopted, not copied) and lets every DATA
                // payload below be a refcounted slice of the segment.
                let mut input = Bytes::from(arrival.bytes);
                while let Some(frame) = self
                    .decoder
                    .next_frame_shared(&mut input)
                    // Unparseable server output in testbed mode is an engine
                    // bug, not a measurable behavior (see the method docs).
                    // h2check: allow(panic) — testbed mode surfaces engine bugs
                    .expect("server output parses")
                {
                    let headers = self
                        .try_decode_block_of(&frame)
                        // h2check: allow(panic) — testbed mode, same contract
                        .unwrap_or_else(|e| panic!("{e}"));
                    self.obs
                        .frame_received(frame.kind().to_u8(), arrival.at.as_nanos());
                    new_frames.push(TimedFrame {
                        at: arrival.at,
                        frame,
                        headers,
                    });
                }
                // If no decoded frame kept a slice of the segment alive
                // (no DATA in it), hand the buffer back to the pipe's
                // pool; otherwise the payload slices own it now.
                if let Ok(buf) = input.try_into_vec() {
                    self.pipe.recycle(buf);
                }
            }
            self.received.extend(new_frames.iter().cloned());
            return new_frames;
        };
        if self.dead {
            return Vec::new();
        }
        let (arrivals, outcome) = self.pipe.run_until(deadline);
        let mut new_frames = Vec::new();
        'arrivals: for arrival in arrivals {
            let mut input = Bytes::from(arrival.bytes);
            loop {
                match self.decoder.next_frame_shared(&mut input) {
                    Ok(Some(frame)) => match self.try_decode_block_of(&frame) {
                        Ok(headers) => {
                            self.obs
                                .frame_received(frame.kind().to_u8(), arrival.at.as_nanos());
                            new_frames.push(TimedFrame {
                                at: arrival.at,
                                frame,
                                headers,
                            });
                        }
                        Err(_) => {
                            self.fail(ProbeFailure::Malformed);
                            break 'arrivals;
                        }
                    },
                    Ok(None) => break,
                    Err(_) => {
                        self.fail(ProbeFailure::Malformed);
                        break 'arrivals;
                    }
                }
            }
            if let Ok(buf) = input.try_into_vec() {
                self.pipe.recycle(buf);
            }
        }
        if !self.dead {
            match outcome {
                RunOutcome::Quiescent => {}
                RunOutcome::DeadlineExpired => self.fail(ProbeFailure::Timeout),
                RunOutcome::ConnectionReset => self.fail(ProbeFailure::ConnReset),
            }
        }
        self.received.extend(new_frames.iter().cloned());
        new_frames
    }

    /// Guarded mode: drains whatever is still in flight, then charges the
    /// remaining silence against the deadline — a probe that would
    /// otherwise conclude "no response" instead observes a timeout, which
    /// is what the paper's scanner saw from the wild. Legacy mode: plain
    /// exchange.
    pub fn await_deadline(&mut self) -> Vec<TimedFrame> {
        let frames = self.exchange();
        if self.deadline.is_some() && !self.dead {
            self.fail(ProbeFailure::Timeout);
        }
        frames
    }

    /// `true` once the connection failed (guarded mode only).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn fail(&mut self, failure: ProbeFailure) {
        self.dead = true;
        let at = self.pipe.now().as_nanos();
        match failure {
            ProbeFailure::Timeout => self.obs.timeout(at),
            ProbeFailure::ConnReset => self.obs.reset(at),
            ProbeFailure::Malformed => self.obs.malformed(at),
        }
        self.log.record(failure);
    }

    /// Decodes the header block carried by HEADERS/PUSH_PROMISE/
    /// CONTINUATION frames, maintaining assembly state across fragments.
    fn try_decode_block_of(
        &mut self,
        frame: &Frame,
    ) -> Result<Option<std::sync::Arc<Vec<Header>>>, &'static str> {
        use h2conn::BlockKind;
        let complete = match frame {
            Frame::Headers(h) => self
                .assembler
                .start(
                    h.stream_id,
                    BlockKind::Headers,
                    &h.fragment,
                    h.end_stream,
                    h.end_headers,
                    h.priority,
                )
                .map_err(|_| "server respects continuation discipline")?,
            Frame::PushPromise(p) => self
                .assembler
                .start(
                    p.stream_id,
                    BlockKind::PushPromise {
                        promised: p.promised_stream_id,
                    },
                    &p.fragment,
                    false,
                    p.end_headers,
                    None,
                )
                .map_err(|_| "server respects continuation discipline")?,
            Frame::Continuation(c) => self
                .assembler
                .continuation(c)
                .map_err(|_| "server respects continuation discipline")?,
            _ => None,
        };
        match complete {
            Some(block) => Ok(Some(std::sync::Arc::new(
                self.hpack_decoder
                    .decode_block(&block.fragment)
                    .map_err(|_| "server header blocks decode")?,
            ))),
            None => Ok(None),
        }
    }

    /// Sends WINDOW_UPDATE frames replenishing both the connection window
    /// and `stream`'s window by `octets` (the standard client reaction to
    /// consumed DATA).
    pub fn replenish(&mut self, stream: u32, octets: u32) {
        if octets == 0 {
            return;
        }
        self.send_all(&[
            Frame::WindowUpdate(WindowUpdateFrame {
                stream_id: StreamId::CONNECTION,
                increment: octets,
            }),
            Frame::WindowUpdate(WindowUpdateFrame {
                stream_id: StreamId::new(stream),
                increment: octets,
            }),
        ]);
    }

    /// Fetches `path` on `stream` to completion, replenishing windows as
    /// data arrives. Returns all frames received during the fetch and the
    /// completion time.
    pub fn fetch(&mut self, stream: u32, path: &str) -> (Vec<TimedFrame>, SimTime) {
        let guarded = self.deadline.is_some();
        self.get(stream, path, None);
        let mut all = Vec::new();
        let mut completed = false;
        loop {
            let frames = self.exchange();
            if frames.is_empty() {
                break;
            }
            let mut done = false;
            for tf in &frames {
                match &tf.frame {
                    Frame::Data(d) => {
                        let octets = d.flow_controlled_len();
                        let sid = d.stream_id.value();
                        if d.end_stream && sid == stream {
                            done = true;
                        }
                        self.replenish(sid, octets);
                    }
                    Frame::Headers(h) if h.end_stream && h.stream_id.value() == stream => {
                        done = true;
                    }
                    // Guarded mode treats stream/connection termination as
                    // the end of the fetch rather than waiting for silence.
                    Frame::RstStream(r) if guarded && r.stream_id.value() == stream => {
                        done = true;
                    }
                    Frame::Goaway(_) if guarded => {
                        done = true;
                    }
                    _ => {}
                }
            }
            all.extend(frames);
            if done {
                // Drain any trailing frames already in flight.
                all.extend(self.exchange());
                completed = true;
                break;
            }
        }
        if guarded && !completed && !self.dead {
            // The server went silent mid-transfer; in the wild that is a
            // timeout, not a completed measurement.
            self.fail(ProbeFailure::Timeout);
        }
        let at = self.now();
        (all, at)
    }

    /// Convenience: the settings frame the server announced, if received.
    pub fn server_settings(&self) -> Option<&Settings> {
        self.received.iter().find_map(|tf| match &tf.frame {
            Frame::Settings(s) if !s.ack => Some(&s.settings),
            _ => None,
        })
    }

    /// Convenience: the announced value of one parameter.
    pub fn announced(&self, id: SettingId) -> Option<u32> {
        self.server_settings().and_then(|s| s.get(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    fn target() -> Target {
        Target::testbed(ServerProfile::rfc7540(), SiteSpec::benchmark())
    }

    #[test]
    fn establish_receives_server_settings() {
        let mut conn = ProbeConn::establish(&target(), Settings::new(), 1);
        conn.exchange();
        assert!(conn.server_settings().is_some());
        assert_eq!(conn.announced(SettingId::MaxConcurrentStreams), Some(100));
    }

    #[test]
    fn fetch_completes_large_object_with_window_replenishment() {
        let mut conn = ProbeConn::establish(&target(), Settings::new(), 1);
        conn.exchange();
        let (frames, _) = conn.fetch(1, "/big/0");
        let data_octets: usize = frames
            .iter()
            .filter_map(|tf| match &tf.frame {
                Frame::Data(d) => Some(d.data.len()),
                _ => None,
            })
            .sum();
        assert_eq!(data_octets, 256 * 1024, "entire object transferred");
        assert!(frames
            .iter()
            .any(|tf| matches!(&tf.frame, Frame::Data(d) if d.end_stream)));
    }

    #[test]
    fn header_blocks_are_decoded_eagerly_in_order() {
        let mut conn = ProbeConn::establish(&target(), Settings::new(), 1);
        conn.exchange();
        let (frames1, _) = conn.fetch(1, "/");
        let (frames2, _) = conn.fetch(3, "/");
        let mut sizes = Vec::new();
        for frames in [frames1, frames2] {
            for tf in frames {
                if let Frame::Headers(h) = &tf.frame {
                    sizes.push(h.fragment.len());
                    let headers = tf.headers.as_ref().expect("decoded eagerly");
                    assert!(headers.iter().any(|hd| hd.name == ":status"));
                }
            }
        }
        assert_eq!(sizes.len(), 2);
        assert!(sizes[1] < sizes[0], "indexed second response is smaller");
    }

    #[test]
    fn timestamps_are_monotonic() {
        let mut conn = ProbeConn::establish(&target(), Settings::new(), 1);
        conn.exchange();
        let (frames, _) = conn.fetch(1, "/big/1");
        assert!(frames.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
