//! Scan-report persistence — the paper's "database" (§IV-B: "we will
//! store the request and the response into a database for further
//! study").
//!
//! The format is a deliberately simple line-oriented `key=value` record
//! per site: grep-able, diff-able, append-able from parallel scan
//! shards, and with no external format dependencies. [`write_reports`]
//! and [`read_reports`] round-trip exactly.

use std::fmt::Write as _;

use crate::probes::flow_control::{FlowControlReport, SmallWindowOutcome};
use crate::probes::hpack::HpackReport;
use crate::probes::negotiation::NegotiationReport;
use crate::probes::priority::PriorityReport;
use crate::probes::push::PushReport;
use crate::probes::settings::SettingsReport;
use crate::probes::Reaction;
use crate::report::SiteReport;
use crate::resilient::{ProbeOutcome, ProbeStats};
use netsim::time::SimDuration;

/// Error while parsing a stored report line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseReportError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseReportError {}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('|', "\\p")
        .replace('\n', "\\n")
        .replace('=', "\\e")
        .replace(',', "\\c")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('p') => out.push('|'),
            Some('n') => out.push('\n'),
            Some('e') => out.push('='),
            Some('c') => out.push(','),
            other => {
                out.push('\\');
                if let Some(o) = other {
                    out.push(o);
                }
            }
        }
    }
    out
}

fn reaction_code(r: Reaction) -> &'static str {
    match r {
        Reaction::Ignored => "ign",
        Reaction::RstStream => "rst",
        Reaction::Goaway => "ga",
        Reaction::GoawayWithDebug => "gad",
    }
}

fn parse_reaction(s: &str) -> Option<Reaction> {
    Some(match s {
        "ign" => Reaction::Ignored,
        "rst" => Reaction::RstStream,
        "ga" => Reaction::Goaway,
        "gad" => Reaction::GoawayWithDebug,
        _ => return None,
    })
}

fn small_window_code(o: SmallWindowOutcome) -> &'static str {
    match o {
        SmallWindowOutcome::OneByteData => "one",
        SmallWindowOutcome::ZeroLenData => "zero",
        SmallWindowOutcome::HeadersOnly => "hdr",
        SmallWindowOutcome::NoResponse => "none",
        SmallWindowOutcome::Oversized => "over",
    }
}

fn parse_small_window(s: &str) -> Option<SmallWindowOutcome> {
    Some(match s {
        "one" => SmallWindowOutcome::OneByteData,
        "zero" => SmallWindowOutcome::ZeroLenData,
        "hdr" => SmallWindowOutcome::HeadersOnly,
        "none" => SmallWindowOutcome::NoResponse,
        "over" => SmallWindowOutcome::Oversized,
        _ => return None,
    })
}

fn outcome_code(o: ProbeOutcome) -> &'static str {
    match o {
        ProbeOutcome::Ok => "ok",
        ProbeOutcome::Timeout => "to",
        ProbeOutcome::ConnReset => "rst",
        ProbeOutcome::Malformed => "mal",
        ProbeOutcome::GaveUpAfterRetries => "gave",
    }
}

fn parse_outcome(s: &str) -> Option<ProbeOutcome> {
    Some(match s {
        "ok" => ProbeOutcome::Ok,
        "to" => ProbeOutcome::Timeout,
        "rst" => ProbeOutcome::ConnReset,
        "mal" => ProbeOutcome::Malformed,
        "gave" => ProbeOutcome::GaveUpAfterRetries,
        _ => return None,
    })
}

fn opt_u32(v: Option<u32>) -> String {
    v.map_or_else(|| "-".into(), |x| x.to_string())
}

fn parse_opt_u32(s: &str) -> Result<Option<u32>, String> {
    if s == "-" {
        return Ok(None);
    }
    s.parse().map(Some).map_err(|_| format!("bad u32 {s:?}"))
}

/// Serializes one report as a single record line.
pub fn write_report(report: &SiteReport) -> String {
    let mut line = String::new();
    let _ = write!(
        line,
        "site={}|alpn={}|npn={}|hdrs={}|server={}",
        escape(&report.authority),
        report.negotiation.alpn_h2 as u8,
        report.negotiation.npn_h2 as u8,
        report.headers_received as u8,
        // A '+' prefix distinguishes a present value from the '-' absent
        // sentinel (a site could legitimately send "server: -").
        report
            .server_name
            .as_deref()
            .map_or_else(|| "-".into(), |n| format!("+{}", escape(n))),
    );
    let s = &report.settings;
    let _ = write!(
        line,
        "|st.recv={}|st.hts={}|st.push={}|st.mcs={}|st.iws={}|st.mfs={}|st.mhls={}|st.zwtu={}",
        s.received as u8,
        opt_u32(s.header_table_size),
        opt_u32(s.enable_push),
        opt_u32(s.max_concurrent_streams),
        opt_u32(s.initial_window_size),
        opt_u32(s.max_frame_size),
        opt_u32(s.max_header_list_size),
        s.zero_window_then_update as u8,
    );
    if let Some(fc) = &report.flow_control {
        let _ = write!(
            line,
            "|fc.small={}|fc.hzw={}|fc.zus={}|fc.zuc={}|fc.lus={}|fc.luc={}",
            small_window_code(fc.small_window),
            fc.headers_at_zero_window as u8,
            reaction_code(fc.zero_update_stream),
            reaction_code(fc.zero_update_conn),
            reaction_code(fc.large_update_stream),
            reaction_code(fc.large_update_conn),
        );
    }
    if let Some(p) = &report.priority {
        let _ = write!(
            line,
            "|pr.last={}|pr.first={}|pr.both={}|pr.blocked={}|pr.self={}",
            p.by_last_frame as u8,
            p.by_first_frame as u8,
            p.by_both as u8,
            p.headers_blocked_at_zero_conn_window as u8,
            reaction_code(p.self_dependency),
        );
    }
    if let Some(push) = &report.push {
        let _ = write!(
            line,
            "|pu.sup={}|pu.octets={}|pu.paths={}",
            push.supported as u8,
            push.pushed_octets,
            push.promised_paths
                .iter()
                .map(|p| escape(p))
                .collect::<Vec<_>>()
                .join(","),
        );
    }
    if let Some(h) = &report.hpack {
        let _ = write!(
            line,
            "|hp.r={}|hp.h={}|hp.sizes={}",
            h.ratio,
            h.h,
            h.sizes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
    }
    let _ = write!(
        line,
        "|pb.out={}|pb.att={}|pb.bk={}",
        outcome_code(report.probe.outcome),
        report.probe.attempts,
        report.probe.backoff.as_nanos(),
    );
    line
}

/// Serializes a whole campaign, one record per line.
pub fn write_reports<'a>(reports: impl IntoIterator<Item = &'a SiteReport>) -> String {
    let mut out = String::new();
    for report in reports {
        out.push_str(&write_report(report));
        out.push('\n');
    }
    out
}

/// Parses one record line.
///
/// # Errors
///
/// Returns [`ParseReportError`] (with `line` set to 0; [`read_reports`]
/// fills in real line numbers) when a field is missing or malformed.
pub fn read_report(line: &str) -> Result<SiteReport, ParseReportError> {
    let err = |message: String| ParseReportError { line: 0, message };
    let mut fields = std::collections::HashMap::new();
    for part in split_fields(line) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| err(format!("field without '=': {part:?}")))?;
        fields.insert(key.to_string(), value.to_string());
    }
    let get = |key: &str| -> Result<String, ParseReportError> {
        fields
            .get(key)
            .cloned()
            .ok_or_else(|| err(format!("missing field {key}")))
    };
    let get_bool = |key: &str| -> Result<bool, ParseReportError> { Ok(get(key)? == "1") };
    let get_opt = |key: &str| -> Result<Option<u32>, ParseReportError> {
        parse_opt_u32(&get(key)?).map_err(&err)
    };

    let settings = SettingsReport {
        received: get_bool("st.recv")?,
        header_table_size: get_opt("st.hts")?,
        enable_push: get_opt("st.push")?,
        max_concurrent_streams: get_opt("st.mcs")?,
        initial_window_size: get_opt("st.iws")?,
        max_frame_size: get_opt("st.mfs")?,
        max_header_list_size: get_opt("st.mhls")?,
        zero_window_then_update: get_bool("st.zwtu")?,
    };
    let flow_control = if fields.contains_key("fc.small") {
        Some(FlowControlReport {
            small_window: parse_small_window(&get("fc.small")?)
                .ok_or_else(|| err("bad fc.small".into()))?,
            headers_at_zero_window: get_bool("fc.hzw")?,
            zero_update_stream: parse_reaction(&get("fc.zus")?)
                .ok_or_else(|| err("bad fc.zus".into()))?,
            zero_update_conn: parse_reaction(&get("fc.zuc")?)
                .ok_or_else(|| err("bad fc.zuc".into()))?,
            large_update_stream: parse_reaction(&get("fc.lus")?)
                .ok_or_else(|| err("bad fc.lus".into()))?,
            large_update_conn: parse_reaction(&get("fc.luc")?)
                .ok_or_else(|| err("bad fc.luc".into()))?,
        })
    } else {
        None
    };
    let priority = if fields.contains_key("pr.last") {
        Some(PriorityReport {
            by_last_frame: get_bool("pr.last")?,
            by_first_frame: get_bool("pr.first")?,
            by_both: get_bool("pr.both")?,
            headers_blocked_at_zero_conn_window: get_bool("pr.blocked")?,
            self_dependency: parse_reaction(&get("pr.self")?)
                .ok_or_else(|| err("bad pr.self".into()))?,
        })
    } else {
        None
    };
    let push = if fields.contains_key("pu.sup") {
        let paths = get("pu.paths")?;
        Some(PushReport {
            supported: get_bool("pu.sup")?,
            pushed_octets: get("pu.octets")?
                .parse()
                .map_err(|_| err("bad pu.octets".into()))?,
            promised_paths: if paths.is_empty() {
                Vec::new()
            } else {
                paths.split(',').map(unescape).collect()
            },
        })
    } else {
        None
    };
    let hpack = if fields.contains_key("hp.r") {
        let sizes = get("hp.sizes")?;
        Some(HpackReport {
            ratio: get("hp.r")?.parse().map_err(|_| err("bad hp.r".into()))?,
            h: get("hp.h")?.parse().map_err(|_| err("bad hp.h".into()))?,
            sizes: if sizes.is_empty() {
                Vec::new()
            } else {
                sizes
                    .split(',')
                    .map(|s| s.parse().map_err(|_| err("bad hp.sizes".into())))
                    .collect::<Result<_, _>>()?
            },
        })
    } else {
        None
    };
    // Resilience fields default when absent (records written before fault
    // campaigns existed remain readable).
    let probe = if fields.contains_key("pb.out") {
        ProbeStats {
            outcome: parse_outcome(&get("pb.out")?).ok_or_else(|| err("bad pb.out".into()))?,
            attempts: get("pb.att")?
                .parse()
                .map_err(|_| err("bad pb.att".into()))?,
            backoff: SimDuration::from_nanos(
                get("pb.bk")?.parse().map_err(|_| err("bad pb.bk".into()))?,
            ),
        }
    } else {
        ProbeStats::default()
    };
    let server = get("server")?;
    Ok(SiteReport {
        authority: unescape(&get("site")?),
        negotiation: NegotiationReport {
            alpn_h2: get_bool("alpn")?,
            npn_h2: get_bool("npn")?,
        },
        server_name: server.strip_prefix('+').map(unescape),
        headers_received: get_bool("hdrs")?,
        settings,
        flow_control,
        priority,
        push,
        hpack,
        probe,
    })
}

/// Splits on unescaped `|` separators.
fn split_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            current.push(c);
            escaped = false;
        } else if c == '\\' {
            current.push(c);
            escaped = true;
        } else if c == '|' {
            fields.push(std::mem::take(&mut current));
        } else {
            current.push(c);
        }
    }
    if !current.is_empty() {
        fields.push(current);
    }
    fields
}

/// Parses a whole stored campaign.
///
/// # Errors
///
/// Returns the first malformed line with its 1-based number.
pub fn read_reports(data: &str) -> Result<Vec<SiteReport>, ParseReportError> {
    data.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            read_report(l).map_err(|mut e| {
                e.line = i + 1;
                e
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{H2Scope, Target};
    use h2server::{ServerProfile, SiteSpec};

    fn sample_reports() -> Vec<SiteReport> {
        let scope = H2Scope::new();
        vec![
            scope.survey(&Target::testbed(
                ServerProfile::gse(),
                SiteSpec::benchmark(),
            )),
            scope.survey(&Target::testbed(
                ServerProfile::nginx(),
                SiteSpec::benchmark(),
            )),
            scope.survey(&Target::testbed(
                ServerProfile::h2o(),
                SiteSpec::page_with_assets(2, 1_000),
            )),
        ]
    }

    #[test]
    fn round_trip_is_exact() {
        let reports = sample_reports();
        let stored = write_reports(&reports);
        let loaded = read_reports(&stored).unwrap();
        assert_eq!(loaded, reports);
    }

    #[test]
    fn special_characters_survive() {
        let mut report = sample_reports().remove(0);
        report.authority = "we|rd=site\nname\\x".into();
        report.server_name = Some("srv|1=2".into());
        let loaded = read_report(&write_report(&report)).unwrap();
        assert_eq!(loaded, report);
    }

    #[test]
    fn optional_sections_stay_optional() {
        let mut report = sample_reports().remove(0);
        report.flow_control = None;
        report.hpack = None;
        let loaded = read_report(&write_report(&report)).unwrap();
        assert_eq!(loaded.flow_control, None);
        assert_eq!(loaded.hpack, None);
        assert!(loaded.priority.is_some());
    }

    #[test]
    fn malformed_lines_are_reported_with_numbers() {
        let reports = sample_reports();
        let mut stored = write_reports(&reports[..1]);
        stored.push_str("this is not a record\n");
        let err = read_reports(&stored).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_input_yields_no_reports() {
        assert_eq!(read_reports("").unwrap(), Vec::new());
        assert_eq!(read_reports("\n\n").unwrap(), Vec::new());
    }
}
