//! Human-readable frame timelines — the `nghttp -v`-style view of a probe
//! session, for debugging probes and demonstrating server behavior.

use h2wire::Frame;

use crate::client::TimedFrame;

/// One-line summary of a frame, in the style HTTP/2 debugging tools use.
pub fn summarize(frame: &Frame) -> String {
    match frame {
        Frame::Data(f) => format!(
            "DATA stream={} len={}{}",
            f.stream_id,
            f.data.len(),
            if f.end_stream { " END_STREAM" } else { "" }
        ),
        Frame::Headers(f) => format!(
            "HEADERS stream={} block={}B{}{}{}",
            f.stream_id,
            f.fragment.len(),
            if f.end_headers { " END_HEADERS" } else { "" },
            if f.end_stream { " END_STREAM" } else { "" },
            f.priority
                .map(|p| format!(
                    " prio(dep={} w={}{})",
                    p.dependency,
                    p.weight,
                    if p.exclusive { " excl" } else { "" }
                ))
                .unwrap_or_default()
        ),
        Frame::Priority(f) => format!(
            "PRIORITY stream={} dep={} weight={}{}",
            f.stream_id,
            f.spec.dependency,
            f.spec.weight,
            if f.spec.exclusive { " exclusive" } else { "" }
        ),
        Frame::RstStream(f) => format!("RST_STREAM stream={} {}", f.stream_id, f.code),
        Frame::Settings(f) => {
            if f.ack {
                "SETTINGS ACK".to_string()
            } else {
                let params: Vec<String> = f
                    .settings
                    .iter()
                    .map(|(id, v)| format!("{id:?}={v}"))
                    .collect();
                format!("SETTINGS [{}]", params.join(", "))
            }
        }
        Frame::PushPromise(f) => format!(
            "PUSH_PROMISE stream={} promised={} block={}B",
            f.stream_id,
            f.promised_stream_id,
            f.fragment.len()
        ),
        Frame::Ping(f) => {
            format!("PING{} {:02x?}", if f.ack { " ACK" } else { "" }, f.payload)
        }
        Frame::Goaway(f) => format!(
            "GOAWAY last={} {}{}",
            f.last_stream_id,
            f.code,
            if f.debug_data.is_empty() {
                String::new()
            } else {
                format!(" debug={:?}", String::from_utf8_lossy(&f.debug_data))
            }
        ),
        Frame::WindowUpdate(f) => {
            format!(
                "WINDOW_UPDATE stream={} increment={}",
                f.stream_id, f.increment
            )
        }
        Frame::Continuation(f) => format!(
            "CONTINUATION stream={} block={}B{}",
            f.stream_id,
            f.fragment.len(),
            if f.end_headers { " END_HEADERS" } else { "" }
        ),
        Frame::Unknown(f) => {
            format!(
                "UNKNOWN(0x{:02x}) stream={} len={}",
                f.kind,
                f.stream_id,
                f.payload.len()
            )
        }
    }
}

/// Renders a received-frame timeline with arrival timestamps and decoded
/// header lists where available.
pub fn render(frames: &[TimedFrame]) -> String {
    let mut out = String::new();
    for tf in frames {
        out.push_str(&format!(
            "[{:>12}] recv {}\n",
            tf.at.to_string(),
            summarize(&tf.frame)
        ));
        if let Some(headers) = &tf.headers {
            for h in headers.iter() {
                out.push_str(&format!("                 {}: {}\n", h.name, h.value));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProbeConn, Target};
    use h2server::{ServerProfile, SiteSpec};
    use h2wire::Settings;

    #[test]
    fn summaries_name_every_frame_type() {
        use bytes::Bytes;
        use h2wire::*;
        let frames = [
            Frame::Data(DataFrame {
                stream_id: StreamId::new(1),
                data: Bytes::from_static(b"xy"),
                end_stream: true,
                pad_len: None,
            }),
            Frame::Priority(PriorityFrame {
                stream_id: StreamId::new(3),
                spec: PrioritySpec {
                    exclusive: true,
                    dependency: StreamId::new(1),
                    weight: 256,
                },
            }),
            Frame::RstStream(RstStreamFrame {
                stream_id: StreamId::new(1),
                code: ErrorCode::Cancel,
            }),
            Frame::Ping(PingFrame::request([1; 8])),
            Frame::WindowUpdate(WindowUpdateFrame {
                stream_id: StreamId::CONNECTION,
                increment: 0,
            }),
            Frame::Unknown(UnknownFrame {
                kind: 0xfa,
                flags: 0,
                stream_id: StreamId::new(9),
                payload: Bytes::new(),
            }),
        ];
        let expected = [
            "DATA",
            "PRIORITY",
            "RST_STREAM",
            "PING",
            "WINDOW_UPDATE",
            "UNKNOWN",
        ];
        for (frame, tag) in frames.iter().zip(expected) {
            assert!(summarize(frame).starts_with(tag), "{}", summarize(frame));
        }
    }

    #[test]
    fn rendered_session_shows_headers_and_timestamps() {
        let target = Target::testbed(ServerProfile::gse(), SiteSpec::benchmark());
        let mut conn = ProbeConn::establish(&target, Settings::new(), 1);
        conn.exchange();
        conn.fetch(1, "/");
        let rendered = render(&conn.received);
        assert!(rendered.contains("SETTINGS ["));
        assert!(rendered.contains("HEADERS stream=1"));
        assert!(rendered.contains(":status: 200"));
        assert!(rendered.contains("server: GSE"));
        assert!(rendered.contains("DATA stream=1"));
        assert!(rendered.lines().count() > 5);
    }

    #[test]
    fn goaway_debug_text_is_shown() {
        let mut profile = ServerProfile::nghttpd();
        profile.behavior.zero_window_debug = Some("the window update shouldn't be zero".into());
        let target = Target::testbed(profile, SiteSpec::benchmark());
        let mut conn = ProbeConn::establish(&target, Settings::new(), 1);
        conn.exchange();
        conn.send(h2wire::Frame::WindowUpdate(h2wire::WindowUpdateFrame {
            stream_id: h2wire::StreamId::CONNECTION,
            increment: 0,
        }));
        conn.exchange();
        let rendered = render(&conn.received);
        assert!(rendered.contains("GOAWAY"), "{rendered}");
        assert!(rendered.contains("shouldn't be zero"), "{rendered}");
    }
}
