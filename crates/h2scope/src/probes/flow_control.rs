//! Flow-control probes (§III-B): four tests of how a server honors — or
//! over-applies, or ignores — the flow-control rules of RFC 7540.

use serde::{Deserialize, Serialize};

use h2wire::{Frame, SettingId, Settings, StreamId, WindowUpdateFrame};

use super::{classify_reaction, Reaction};
use crate::client::ProbeConn;
use crate::target::Target;

/// Outcome of the 1-octet-window probe (§III-B1 / §V-D1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmallWindowOutcome {
    /// The first DATA frame carried exactly the window (1 octet) — the
    /// RFC-compliant behavior 37k/44k sites showed.
    OneByteData,
    /// The server emitted zero-length DATA frames while blocked.
    ZeroLenData,
    /// HEADERS arrived but no DATA (server waits for window silently).
    HeadersOnly,
    /// Nothing came back at all (the LiteSpeed population in §V-D1).
    NoResponse,
    /// The server ignored the window and sent more than permitted.
    Oversized,
}

/// The full flow-control characterization of one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowControlReport {
    /// §III-B1: behavior under `SETTINGS_INITIAL_WINDOW_SIZE = 1`.
    pub small_window: SmallWindowOutcome,
    /// §III-B2: HEADERS still arrive under a zero initial window
    /// (`true` = RFC-compliant).
    pub headers_at_zero_window: bool,
    /// §III-B3: reaction to a zero WINDOW_UPDATE on a stream.
    pub zero_update_stream: Reaction,
    /// §III-B3: reaction to a zero WINDOW_UPDATE on the connection.
    pub zero_update_conn: Reaction,
    /// §III-B4: reaction to stream window overflow past 2^31-1.
    pub large_update_stream: Reaction,
    /// §III-B4: reaction to connection window overflow.
    pub large_update_conn: Reaction,
}

/// §III-B1: set the initial window to one octet and see what the first
/// DATA frame looks like.
pub fn small_window(target: &Target) -> SmallWindowOutcome {
    let settings = Settings::new().with(SettingId::InitialWindowSize, 1);
    let mut conn = ProbeConn::establish(target, settings, 0xf10a);
    conn.exchange();
    conn.get(1, "/big/1", None);
    let frames = conn.exchange();
    let mut saw_headers = false;
    for tf in &frames {
        match &tf.frame {
            Frame::Headers(_) => saw_headers = true,
            Frame::Data(d) => {
                return match d.data.len() {
                    0 => SmallWindowOutcome::ZeroLenData,
                    1 => SmallWindowOutcome::OneByteData,
                    _ => SmallWindowOutcome::Oversized,
                };
            }
            _ => {}
        }
    }
    // Silence is only "no response" once the probe has actually waited it
    // out: in a fault campaign the deadline elapses and the verdict is
    // timeout-derived (§V-D1), not inferred from instant quiescence.
    conn.await_deadline();
    if saw_headers {
        SmallWindowOutcome::HeadersOnly
    } else {
        SmallWindowOutcome::NoResponse
    }
}

/// §III-B2: zero initial window; a compliant server still sends HEADERS
/// because flow control governs only DATA.
pub fn headers_at_zero_window(target: &Target) -> bool {
    let settings = Settings::new().with(SettingId::InitialWindowSize, 0);
    let mut conn = ProbeConn::establish(target, settings, 0x0001);
    conn.exchange();
    conn.get(1, "/", None);
    let frames = conn.exchange();
    let mut saw_headers = false;
    for tf in &frames {
        match &tf.frame {
            Frame::Headers(_) => saw_headers = true,
            Frame::Data(d) => {
                assert!(d.data.is_empty(), "no data may flow through a zero window");
            }
            _ => {}
        }
    }
    saw_headers
}

/// §III-B3: send a WINDOW_UPDATE with increment 0 and classify the
/// reaction. `on_stream` selects stream vs connection scope.
pub fn zero_window_update(target: &Target, on_stream: bool) -> Reaction {
    let mut conn = ProbeConn::establish(target, Settings::new(), 0x02e0);
    conn.exchange();
    // Open a stream with an in-flight response so the stream scope exists.
    conn.get(1, "/big/1", None);
    conn.exchange();
    let stream_id = if on_stream {
        StreamId::new(1)
    } else {
        StreamId::CONNECTION
    };
    conn.send(Frame::WindowUpdate(WindowUpdateFrame {
        stream_id,
        increment: 0,
    }));
    let frames = conn.exchange();
    classify_reaction(&frames)
}

/// §III-B4: two WINDOW_UPDATE frames whose increments sum past 2^31-1.
pub fn large_window_update(target: &Target, on_stream: bool) -> Reaction {
    let mut conn = ProbeConn::establish(target, Settings::new(), 0x1a49);
    conn.exchange();
    conn.get(1, "/big/1", None);
    conn.exchange();
    let stream_id = if on_stream {
        StreamId::new(1)
    } else {
        StreamId::CONNECTION
    };
    conn.send(Frame::WindowUpdate(WindowUpdateFrame {
        stream_id,
        increment: 0x4000_0000,
    }));
    conn.exchange();
    conn.send(Frame::WindowUpdate(WindowUpdateFrame {
        stream_id,
        increment: 0x4000_0000,
    }));
    let frames = conn.exchange();
    classify_reaction(&frames)
}

/// Runs all four flow-control probes.
pub fn probe(target: &Target) -> FlowControlReport {
    target.obs.enter_probe(h2obs::ProbeKind::FlowControl);
    FlowControlReport {
        small_window: small_window(target),
        headers_at_zero_window: headers_at_zero_window(target),
        zero_update_stream: zero_window_update(target, true),
        zero_update_conn: zero_window_update(target, false),
        large_update_stream: large_window_update(target, true),
        large_update_conn: large_window_update(target, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{QuirkAction, ServerProfile, SiteSpec};

    fn target_for(profile: ServerProfile) -> Target {
        Target::testbed(profile, SiteSpec::benchmark())
    }

    #[test]
    fn small_window_yields_one_byte_data_on_compliant_servers() {
        for profile in [
            ServerProfile::nginx(),
            ServerProfile::h2o(),
            ServerProfile::apache(),
        ] {
            let name = profile.name.clone();
            assert_eq!(
                small_window(&target_for(profile)),
                SmallWindowOutcome::OneByteData,
                "{name}"
            );
        }
    }

    #[test]
    fn small_window_litespeed_sends_nothing() {
        assert_eq!(
            small_window(&target_for(ServerProfile::litespeed())),
            SmallWindowOutcome::NoResponse
        );
    }

    #[test]
    fn small_window_zero_len_quirk_detected() {
        let mut profile = ServerProfile::rfc7540();
        profile.behavior.zero_len_data_when_blocked = true;
        assert_eq!(
            small_window(&target_for(profile)),
            SmallWindowOutcome::ZeroLenData
        );
    }

    #[test]
    fn headers_arrive_at_zero_window_except_litespeed() {
        // Table III row 5 inverted: flow control on HEADERS.
        for profile in ServerProfile::testbed() {
            let name = profile.name.clone();
            let compliant = headers_at_zero_window(&target_for(profile));
            assert_eq!(compliant, name != "LiteSpeed", "{name}");
        }
    }

    #[test]
    fn zero_window_update_matrix_matches_table_iii() {
        let expectations = [
            ("Nginx", Reaction::Ignored, Reaction::Ignored),
            ("LiteSpeed", Reaction::RstStream, Reaction::Goaway),
            ("H2O", Reaction::RstStream, Reaction::Goaway),
            ("nghttpd", Reaction::Goaway, Reaction::Goaway),
            ("Tengine", Reaction::Ignored, Reaction::Ignored),
            ("Apache", Reaction::Goaway, Reaction::Goaway),
        ];
        for (profile, (name, stream_exp, conn_exp)) in
            ServerProfile::testbed().into_iter().zip(expectations)
        {
            assert_eq!(profile.name, name);
            assert_eq!(
                zero_window_update(&target_for(profile.clone()), true),
                stream_exp,
                "{name} stream"
            );
            assert_eq!(
                zero_window_update(&target_for(profile), false),
                conn_exp,
                "{name} conn"
            );
        }
    }

    #[test]
    fn large_window_update_always_errors() {
        // Table III rows 8-9: uniform across all six servers.
        for profile in ServerProfile::testbed() {
            let name = profile.name.clone();
            assert_eq!(
                large_window_update(&target_for(profile.clone()), true),
                Reaction::RstStream,
                "{name} stream overflow"
            );
            assert_eq!(
                large_window_update(&target_for(profile), false),
                Reaction::Goaway,
                "{name} conn overflow"
            );
        }
    }

    #[test]
    fn goaway_debug_data_is_classified() {
        let mut profile = ServerProfile::nghttpd();
        profile.behavior.zero_window_debug = Some("the window update shouldn't be zero".into());
        assert_eq!(
            zero_window_update(&target_for(profile), false),
            Reaction::GoawayWithDebug
        );
    }

    #[test]
    fn quirk_override_is_observable() {
        // A hypothetical server that RSTs on connection-scope zero
        // updates degrades to GOAWAY (you cannot RST stream 0).
        let mut profile = ServerProfile::rfc7540();
        profile.behavior.zero_window_update_conn = QuirkAction::RstStream;
        assert_eq!(
            zero_window_update(&target_for(profile), false),
            Reaction::Goaway
        );
    }
}
