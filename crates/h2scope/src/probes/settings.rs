//! SETTINGS frame probe (§V-C): record every parameter the server
//! announces, plus the "announce zero, then WINDOW_UPDATE" pattern the
//! paper observed on Nginx (Table V).

use serde::{Deserialize, Serialize};

use h2wire::{Frame, SettingId, Settings};

use crate::client::ProbeConn;
use crate::target::Target;

/// The server's announced SETTINGS, `None` meaning "not present in the
/// frame" (the paper's NULL rows in Tables V–VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SettingsReport {
    /// `SETTINGS_HEADER_TABLE_SIZE`.
    pub header_table_size: Option<u32>,
    /// `SETTINGS_ENABLE_PUSH`.
    pub enable_push: Option<u32>,
    /// `SETTINGS_MAX_CONCURRENT_STREAMS`.
    pub max_concurrent_streams: Option<u32>,
    /// `SETTINGS_INITIAL_WINDOW_SIZE`.
    pub initial_window_size: Option<u32>,
    /// `SETTINGS_MAX_FRAME_SIZE`.
    pub max_frame_size: Option<u32>,
    /// `SETTINGS_MAX_HEADER_LIST_SIZE`.
    pub max_header_list_size: Option<u32>,
    /// The server announced `INITIAL_WINDOW_SIZE = 0` and immediately sent
    /// a WINDOW_UPDATE re-opening the window (the Nginx pattern the paper
    /// verified in its testbed).
    pub zero_window_then_update: bool,
    /// A SETTINGS frame was received at all.
    pub received: bool,
}

impl SettingsReport {
    /// Extracts the report from a parameter list.
    pub fn from_settings(settings: &Settings) -> SettingsReport {
        SettingsReport {
            header_table_size: settings.get(SettingId::HeaderTableSize),
            enable_push: settings.get(SettingId::EnablePush),
            max_concurrent_streams: settings.get(SettingId::MaxConcurrentStreams),
            initial_window_size: settings.get(SettingId::InitialWindowSize),
            max_frame_size: settings.get(SettingId::MaxFrameSize),
            max_header_list_size: settings.get(SettingId::MaxHeaderListSize),
            zero_window_then_update: false,
            received: true,
        }
    }
}

/// Connects and records the server's announced SETTINGS.
pub fn probe(target: &Target) -> SettingsReport {
    target.obs.enter_probe(h2obs::ProbeKind::Settings);
    let mut conn = ProbeConn::establish(target, Settings::new(), 0x5e77);
    let frames = conn.exchange();
    let mut report = SettingsReport::default();
    let mut saw_settings = false;
    for tf in &frames {
        match &tf.frame {
            Frame::Settings(s) if !s.ack && !saw_settings => {
                saw_settings = true;
                report = SettingsReport::from_settings(&s.settings);
            }
            Frame::WindowUpdate(wu)
                if saw_settings
                    && wu.stream_id.is_connection()
                    && report.initial_window_size == Some(0) =>
            {
                report.zero_window_then_update = true;
            }
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    fn report_for(profile: ServerProfile) -> SettingsReport {
        probe(&Target::testbed(profile, SiteSpec::benchmark()))
    }

    #[test]
    fn nginx_pattern_is_detected() {
        let report = report_for(ServerProfile::nginx());
        assert_eq!(report.initial_window_size, Some(0));
        assert!(report.zero_window_then_update);
        assert_eq!(report.max_concurrent_streams, Some(128));
    }

    #[test]
    fn h2o_announces_large_window() {
        let report = report_for(ServerProfile::h2o());
        assert_eq!(report.initial_window_size, Some(16_777_216));
        assert!(!report.zero_window_then_update);
    }

    #[test]
    fn gse_announces_max_header_list_size() {
        let report = report_for(ServerProfile::gse());
        assert_eq!(report.max_header_list_size, Some(16_384));
        assert_eq!(report.max_frame_size, Some(16_777_215));
    }

    #[test]
    fn absent_parameters_read_as_null() {
        let report = report_for(ServerProfile::nghttpd());
        assert!(report.received);
        assert_eq!(report.header_table_size, None, "not announced = NULL");
        assert_eq!(report.enable_push, None);
    }
}
