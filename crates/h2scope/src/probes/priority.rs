//! The priority probe — the paper's Algorithm 1 (§III-C), its most novel
//! methodological contribution — plus the self-dependency probe.
//!
//! Remotely inferring whether a server honors stream priorities is hard
//! because response ordering is confounded by flow control and
//! first-come-first-served processing. Algorithm 1 removes both
//! confounders:
//!
//! 1. announce a huge `SETTINGS_INITIAL_WINDOW_SIZE` so *stream* windows
//!    never block anything;
//! 2. drain the 65,535-octet *connection* window (which SETTINGS cannot
//!    change — only WINDOW_UPDATE can) with throwaway downloads, then
//!    RST them;
//! 3. with the server now unable to send any DATA, submit the probe
//!    requests with dependency information and reprioritize them with
//!    PRIORITY frames — the server has time to build the tree;
//! 4. reopen the connection window with one huge WINDOW_UPDATE and
//!    observe the DATA ordering.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use h2wire::{
    Frame, PriorityFrame, PrioritySpec, SettingId, Settings, StreamId, WindowUpdateFrame,
};

use super::{classify_reaction, Reaction};
use crate::client::ProbeConn;
use crate::target::Target;

/// The six probe streams, named as in the paper's Figure 1 / §V-E.
const A: u32 = 3;
/// Stream B.
const B: u32 = 5;
/// Stream C.
const C: u32 = 7;
/// Stream D.
const D: u32 = 9;
/// Stream E.
const E: u32 = 11;
/// Stream F.
const F: u32 = 13;

/// Result of Algorithm 1 plus the self-dependency probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityReport {
    /// Expected ordering holds judging by each stream's *last* DATA frame
    /// (the paper's 1,147 / 2,187 sites).
    pub by_last_frame: bool,
    /// Expected ordering holds judging by each stream's *first* DATA
    /// frame (46 / 117 sites).
    pub by_first_frame: bool,
    /// Both rules hold (38 / 111 sites).
    pub by_both: bool,
    /// The server withheld even HEADERS while the connection window was
    /// zero (observed on some servers, §III-C1).
    pub headers_blocked_at_zero_conn_window: bool,
    /// Reaction to a self-dependent PRIORITY frame (§III-C2).
    pub self_dependency: Reaction,
}

impl PriorityReport {
    /// The paper's pass/fail verdict for Table III: the server passes
    /// Algorithm 1 if the last-DATA-frame ordering holds.
    pub fn passes(&self) -> bool {
        self.by_last_frame
    }
}

/// Runs Algorithm 1 against the target.
pub fn algorithm1(target: &Target) -> PriorityReport {
    target.obs.enter_probe(h2obs::ProbeKind::Priority);
    // Step 0: huge stream windows so only the connection window gates.
    let settings = Settings::new().with(SettingId::InitialWindowSize, 0x7fff_ffff);
    let mut conn = ProbeConn::establish(target, settings, 0xa190);
    conn.exchange();

    // Step 1: drain the connection-level window (65,535 octets) with
    // throwaway downloads, computing how many streams are needed as data
    // arrives (the paper's callback), then RST them.
    let mut drained: u64 = 0;
    let mut throwaway = 1u32;
    conn.get(throwaway, "/big/7", None);
    loop {
        let frames = conn.exchange();
        if frames.is_empty() {
            break;
        }
        for tf in &frames {
            if let Frame::Data(d) = &tf.frame {
                drained += u64::from(d.flow_controlled_len());
            }
        }
        if drained >= 65_535 {
            break;
        }
        // Need another object: open one more throwaway stream. (With the
        // benchmark site one 256 KiB object more than covers the window,
        // but small sites require several — this is the paper's loop.)
        throwaway += 2;
        if throwaway > 31 {
            break;
        }
        conn.get(throwaway, "/big/7", None);
    }
    let mut rst_frames = Vec::new();
    for s in (1..=throwaway).step_by(2) {
        rst_frames.push(Frame::RstStream(h2wire::RstStreamFrame {
            stream_id: StreamId::new(s),
            code: h2wire::ErrorCode::Cancel,
        }));
    }
    conn.send_all(&rst_frames);
    conn.exchange();
    let window_drained = drained >= 65_535;

    // Step 2: submit the probe requests with the Table I dependency tree:
    // A at the root (weight 1); B, C, D under A; E under B; F under D.
    let dep = |parent: u32| PrioritySpec {
        exclusive: false,
        dependency: StreamId::new(parent),
        weight: 1,
    };
    conn.get(A, "/big/1", Some(dep(0)));
    conn.get(B, "/big/2", Some(dep(A)));
    conn.get(C, "/big/3", Some(dep(A)));
    conn.get(D, "/big/4", Some(dep(A)));
    conn.get(E, "/big/5", Some(dep(B)));
    conn.get(F, "/big/6", Some(dep(D)));
    let frames = conn.exchange();
    // With the connection window at zero, DATA cannot flow. Most servers
    // still send the response HEADERS; some do not (§III-C1).
    let headers_blocked = window_drained
        && !frames
            .iter()
            .any(|tf| matches!(tf.frame, Frame::Headers(_)));

    // Step 3: reprioritize with PRIORITY frames into the §V-E target
    // tree: D at the root, A under D (exclusively, adopting F), E moved
    // under C. Expected service order: D first, then A, then {B, C, F},
    // with E after C.
    conn.send_all(&[
        Frame::Priority(PriorityFrame {
            stream_id: StreamId::new(D),
            spec: dep(0),
        }),
        Frame::Priority(PriorityFrame {
            stream_id: StreamId::new(A),
            spec: PrioritySpec {
                exclusive: true,
                dependency: StreamId::new(D),
                weight: 1,
            },
        }),
        Frame::Priority(PriorityFrame {
            stream_id: StreamId::new(E),
            spec: dep(C),
        }),
    ]);
    conn.exchange();

    // Step 4: reopen the connection window and observe DATA ordering.
    conn.send(Frame::WindowUpdate(WindowUpdateFrame {
        stream_id: StreamId::CONNECTION,
        increment: 0x7fff_fffe,
    }));
    let mut first: HashMap<u32, usize> = HashMap::new();
    let mut last: HashMap<u32, usize> = HashMap::new();
    let mut index = 0usize;
    loop {
        let frames = conn.exchange();
        if frames.is_empty() {
            break;
        }
        for tf in &frames {
            if let Frame::Data(d) = &tf.frame {
                let sid = d.stream_id.value();
                first.entry(sid).or_insert(index);
                last.insert(sid, index);
                index += 1;
            }
        }
    }

    let by_last_frame = ordering_holds(&last);
    let by_first_frame = ordering_holds(&first);
    PriorityReport {
        by_last_frame,
        by_first_frame,
        by_both: by_last_frame && by_first_frame,
        headers_blocked_at_zero_conn_window: headers_blocked,
        self_dependency: self_dependency(target),
    }
}

/// The §V-E ordering rules on a per-stream index map:
/// D before everyone; A before everyone but D; C before E.
fn ordering_holds(index: &HashMap<u32, usize>) -> bool {
    let all = [A, B, C, D, E, F];
    if !all.iter().all(|s| index.contains_key(s)) {
        return false;
    }
    // h2check: allow(index) — contains_key over all six streams checked above
    let v = |s: u32| index[&s];
    let d_first = all.iter().filter(|&&s| s != D).all(|&s| v(D) < v(s));
    let a_second = all
        .iter()
        .filter(|&&s| s != D && s != A)
        .all(|&s| v(A) < v(s));
    let c_before_e = v(C) < v(E);
    d_first && a_second && c_before_e
}

/// The naive priority check Algorithm 1 exists to replace: send the same
/// prioritized requests **without** draining the connection window first,
/// and classify the response ordering directly.
///
/// §III-C1 explains why this misleads: without the drain, the server
/// starts answering the early requests before the PRIORITY frames arrive
/// (FCFS), and flow control perturbs the order. On a server that *does*
/// honor priorities, the naive check frequently reports "fail" — the
/// false negative the paper's methodology eliminates. Exposed so the
/// ablation can be demonstrated.
pub fn naive_order_check(target: &Target) -> PriorityReport {
    let settings = Settings::new().with(SettingId::InitialWindowSize, 0x7fff_ffff);
    let mut conn = ProbeConn::establish(target, settings, 0xa191);
    conn.exchange();
    let dep = |parent: u32| PrioritySpec {
        exclusive: false,
        dependency: StreamId::new(parent),
        weight: 1,
    };
    // Same tree as Algorithm 1, but requests flow immediately: each
    // exchange lets the server serve whatever arrived so far.
    conn.get(A, "/big/1", Some(dep(0)));
    conn.exchange();
    conn.get(B, "/big/2", Some(dep(A)));
    conn.get(C, "/big/3", Some(dep(A)));
    conn.exchange();
    conn.get(D, "/big/4", Some(dep(A)));
    conn.get(E, "/big/5", Some(dep(B)));
    conn.get(F, "/big/6", Some(dep(D)));
    conn.send_all(&[
        Frame::Priority(PriorityFrame {
            stream_id: StreamId::new(D),
            spec: dep(0),
        }),
        Frame::Priority(PriorityFrame {
            stream_id: StreamId::new(A),
            spec: PrioritySpec {
                exclusive: true,
                dependency: StreamId::new(D),
                weight: 1,
            },
        }),
        Frame::Priority(PriorityFrame {
            stream_id: StreamId::new(E),
            spec: dep(C),
        }),
    ]);

    let mut first: HashMap<u32, usize> = HashMap::new();
    let mut last: HashMap<u32, usize> = HashMap::new();
    let mut index = 0usize;
    loop {
        let frames = conn.exchange();
        if frames.is_empty() {
            break;
        }
        for tf in &frames {
            if let Frame::Data(d) = &tf.frame {
                let sid = d.stream_id.value();
                first.entry(sid).or_insert(index);
                last.insert(sid, index);
                index += 1;
            }
        }
    }
    let by_last_frame = ordering_holds(&last);
    let by_first_frame = ordering_holds(&first);
    PriorityReport {
        by_last_frame,
        by_first_frame,
        by_both: by_last_frame && by_first_frame,
        headers_blocked_at_zero_conn_window: false,
        self_dependency: Reaction::Ignored, // not probed in the naive check
    }
}

/// Ablation probe: measure how a server divides bandwidth between
/// sibling streams of different weights (RFC 7540 §5.3.2 says resources
/// are allocated "proportionally based on the weight").
///
/// Opens one large download per weight, drains the connection window so
/// the dependency tree settles, reopens it, and returns each stream's
/// share of the first `window` DATA octets. A weight-proportional
/// scheduler yields shares ≈ weight/Σweights; FCFS servers yield roughly
/// equal shares regardless of weights.
pub fn weight_shares(target: &Target, weights: &[u16], window: u64) -> Vec<f64> {
    assert!(
        !weights.is_empty() && weights.len() <= 7,
        "1..=7 weighted streams"
    );
    let settings = Settings::new().with(SettingId::InitialWindowSize, 0x7fff_ffff);
    let mut conn = ProbeConn::establish(target, settings, 0x3e19);
    conn.exchange();

    // Drain the connection window with a throwaway download, then reset.
    conn.get(1, "/big/7", None);
    conn.exchange();
    conn.send(Frame::RstStream(h2wire::RstStreamFrame {
        stream_id: StreamId::new(1),
        code: h2wire::ErrorCode::Cancel,
    }));
    conn.exchange();

    // One request per weight, all siblings under the root.
    let streams: Vec<u32> = (0..weights.len() as u32).map(|k| 3 + 2 * k).collect();
    for (k, (&stream, &weight)) in streams.iter().zip(weights).enumerate() {
        let spec = PrioritySpec {
            exclusive: false,
            dependency: StreamId::CONNECTION,
            weight,
        };
        conn.get(stream, &format!("/big/{}", 1 + k as u32 % 6), Some(spec));
    }
    conn.exchange();

    // Reopen exactly `window` octets of connection window and count what
    // each stream received within it.
    conn.send(Frame::WindowUpdate(WindowUpdateFrame {
        stream_id: StreamId::CONNECTION,
        increment: window as u32,
    }));
    let mut received: HashMap<u32, u64> = HashMap::new();
    loop {
        let frames = conn.exchange();
        if frames.is_empty() {
            break;
        }
        for tf in &frames {
            if let Frame::Data(d) = &tf.frame {
                *received.entry(d.stream_id.value()).or_default() += d.data.len() as u64;
            }
        }
    }
    let total: u64 = received.values().sum();
    streams
        .iter()
        .map(|s| {
            if total == 0 {
                0.0
            } else {
                *received.get(s).unwrap_or(&0) as f64 / total as f64
            }
        })
        .collect()
}

/// §III-C2: send a PRIORITY frame making a stream depend on itself.
pub fn self_dependency(target: &Target) -> Reaction {
    let mut conn = ProbeConn::establish(target, Settings::new(), 0x5e1f);
    conn.exchange();
    conn.send(Frame::Priority(PriorityFrame {
        stream_id: StreamId::new(15),
        spec: PrioritySpec {
            exclusive: false,
            dependency: StreamId::new(15),
            weight: 16,
        },
    }));
    let frames = conn.exchange();
    classify_reaction(&frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    fn target_for(profile: ServerProfile) -> Target {
        Target::testbed(profile, SiteSpec::benchmark())
    }

    #[test]
    fn priority_servers_pass_algorithm1() {
        for profile in [
            ServerProfile::h2o(),
            ServerProfile::nghttpd(),
            ServerProfile::apache(),
        ] {
            let name = profile.name.clone();
            let report = algorithm1(&target_for(profile));
            assert!(report.passes(), "{name} must pass Algorithm 1");
            assert!(report.by_first_frame, "{name} first-frame rule");
            assert!(report.by_both, "{name}");
        }
    }

    #[test]
    fn fifo_servers_fail_algorithm1() {
        for profile in [
            ServerProfile::nginx(),
            ServerProfile::litespeed(),
            ServerProfile::tengine(),
        ] {
            let name = profile.name.clone();
            let report = algorithm1(&target_for(profile));
            assert!(!report.passes(), "{name} must fail Algorithm 1");
        }
    }

    #[test]
    fn completion_order_mode_passes_only_the_last_frame_rule() {
        let mut profile = ServerProfile::rfc7540();
        profile.behavior.priority_mode = h2server::behavior::PriorityMode::CompletionOrder;
        let report = algorithm1(&target_for(profile));
        assert!(report.by_last_frame, "completion follows priority");
        assert!(!report.by_first_frame, "first frames flush FCFS");
        assert!(!report.by_both);
        assert!(report.passes(), "Table III's test uses the last-frame rule");
    }

    #[test]
    fn first_frame_only_mode_passes_only_the_first_frame_rule() {
        let mut profile = ServerProfile::rfc7540();
        profile.behavior.priority_mode = h2server::behavior::PriorityMode::FirstFrameOnly;
        let report = algorithm1(&target_for(profile));
        assert!(report.by_first_frame, "first frames follow the tree");
        assert!(!report.by_last_frame, "completion is round-robin");
        assert!(!report.by_both);
    }

    #[test]
    fn litespeed_blocks_headers_at_zero_connection_window() {
        let report = algorithm1(&target_for(ServerProfile::litespeed()));
        assert!(report.headers_blocked_at_zero_conn_window);
        let report = algorithm1(&target_for(ServerProfile::h2o()));
        assert!(!report.headers_blocked_at_zero_conn_window);
    }

    #[test]
    fn naive_check_misclassifies_priority_capable_servers() {
        // The methodological point of Algorithm 1: without the
        // window-drain preparation, a server that honors priorities is
        // judged by its FCFS burst behavior and fails the ordering rules.
        let target = target_for(ServerProfile::h2o());
        let naive = naive_order_check(&target);
        assert!(
            !naive.by_first_frame,
            "naive check must be confounded by arrival order"
        );
        let proper = algorithm1(&target);
        assert!(proper.by_both, "Algorithm 1 recovers the true verdict");
    }

    #[test]
    fn weight_shares_follow_weights_on_priority_servers() {
        // Weighted siblings share bandwidth ∝ weight on a WRR scheduler.
        // NOTE: all-sibling trees serve the *whole window* proportionally,
        // so shares track 192:48:16 ≈ 0.75:0.19:0.06.
        let shares = weight_shares(
            &target_for(ServerProfile::h2o()),
            &[192, 48, 16],
            192 * 1024,
        );
        assert!((shares[0] - 0.75).abs() < 0.08, "{shares:?}");
        assert!((shares[1] - 0.1875).abs() < 0.08, "{shares:?}");
        assert!((shares[2] - 0.0625).abs() < 0.05, "{shares:?}");
    }

    #[test]
    fn weight_shares_are_flat_on_fcfs_servers() {
        let shares = weight_shares(
            &target_for(ServerProfile::nginx()),
            &[192, 48, 16],
            192 * 1024,
        );
        for share in &shares {
            assert!(
                (share - 1.0 / 3.0).abs() < 0.1,
                "FCFS ignores weights: {shares:?}"
            );
        }
    }

    #[test]
    fn self_dependency_matches_table_iii() {
        let expected = [
            ("Nginx", Reaction::RstStream),
            ("LiteSpeed", Reaction::Ignored),
            ("H2O", Reaction::Goaway),
            ("nghttpd", Reaction::Goaway),
            ("Tengine", Reaction::RstStream),
            ("Apache", Reaction::Goaway),
        ];
        for (profile, (name, reaction)) in ServerProfile::testbed().into_iter().zip(expected) {
            assert_eq!(profile.name, name);
            assert_eq!(self_dependency(&target_for(profile)), reaction, "{name}");
        }
    }
}
