//! HPACK probe (§III-E): send H identical requests and measure the
//! compression ratio r = Σ Sᵢ / (S₁ · H) over the response HEADERS
//! frames. A server that indexes response headers drives r toward 1/H; a
//! server that never does stays at 1.

// h2check: allow-file(index) — indices bounded by the response-count checks above each use

use serde::{Deserialize, Serialize};

use h2wire::{Frame, Settings};

use crate::client::ProbeConn;
use crate::target::Target;

/// Result of the HPACK probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HpackReport {
    /// Compression ratio r (equation 1 in the paper).
    pub ratio: f64,
    /// Response HEADERS frame sizes S₁..S_H (frame header + block).
    pub sizes: Vec<usize>,
    /// Number of identical requests sent (the paper's H).
    pub h: usize,
}

impl HpackReport {
    /// Whether the measurement should be discarded per §V-G (sites that
    /// inject cookies make r exceed 1).
    pub fn filtered(&self) -> bool {
        self.ratio > 1.0
    }
}

/// Sends `h` identical GETs for `/` and computes the ratio.
pub fn probe(target: &Target, h: usize) -> HpackReport {
    target.obs.enter_probe(h2obs::ProbeKind::Hpack);
    assert!(h >= 2, "the ratio needs at least two samples");
    let mut conn = ProbeConn::establish(target, Settings::new(), 0x4bac);
    conn.exchange();
    let mut sizes = Vec::with_capacity(h);
    for i in 0..h {
        let stream = 1 + 2 * i as u32;
        let (frames, _) = conn.fetch(stream, "/");
        for tf in &frames {
            if let Frame::Headers(hf) = &tf.frame {
                if hf.stream_id.value() == stream {
                    sizes.push(hf.fragment.len() + h2wire::FRAME_HEADER_LEN);
                }
            }
        }
    }
    let ratio = if sizes.is_empty() || sizes[0] == 0 {
        f64::NAN
    } else {
        sizes.iter().sum::<usize>() as f64 / (sizes[0] * sizes.len()) as f64
    };
    HpackReport { ratio, sizes, h }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    fn ratio_for(profile: ServerProfile) -> HpackReport {
        probe(&Target::testbed(profile, SiteSpec::benchmark()), 8)
    }

    #[test]
    fn indexing_servers_compress_well() {
        // GSE/LiteSpeed territory in Figures 4/5: r < 0.3.
        for profile in [
            ServerProfile::gse(),
            ServerProfile::litespeed(),
            ServerProfile::h2o(),
        ] {
            let name = profile.name.clone();
            let report = ratio_for(profile);
            assert_eq!(report.sizes.len(), 8);
            assert!(report.ratio < 0.3, "{name}: r = {}", report.ratio);
            assert!(!report.filtered());
        }
    }

    #[test]
    fn non_indexing_servers_stay_at_one() {
        // The Nginx/Tengine/IdeaWebServer population: r = 1.
        for profile in [
            ServerProfile::nginx(),
            ServerProfile::tengine(),
            ServerProfile::ideaweb(),
        ] {
            let name = profile.name.clone();
            let report = ratio_for(profile);
            assert!(
                (report.ratio - 1.0).abs() < 1e-9,
                "{name}: r = {}",
                report.ratio
            );
        }
    }

    #[test]
    fn cookie_injection_pushes_ratio_above_one() {
        let report = ratio_for(ServerProfile::tengine_aserver());
        assert!(report.ratio > 1.0, "r = {}", report.ratio);
        assert!(report.filtered(), "§V-G filters these sites out");
    }

    #[test]
    fn sizes_are_monotone_nonincreasing_for_indexing_servers() {
        let report = ratio_for(ServerProfile::gse());
        assert!(report.sizes[1] < report.sizes[0]);
        assert!(report.sizes.windows(2).skip(1).all(|w| w[1] <= w[0]));
    }
}
