//! Request multiplexing probe (§III-A): N simultaneous large downloads;
//! a multiplexing server interleaves DATA frames across streams, a
//! sequential one finishes each response before starting the next.

// h2check: allow-file(index) — indices bounded by the response-count checks above each use

use serde::{Deserialize, Serialize};

use h2wire::{Frame, SettingId, Settings};

use crate::client::ProbeConn;
use crate::target::Target;

/// Result of the multiplexing probe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplexingReport {
    /// Responses interleaved — the server processes requests in parallel.
    pub parallel: bool,
    /// Number of concurrent requests issued (the paper's N).
    pub streams_tested: usize,
    /// Number of stream switches observed in the DATA sequence; a
    /// sequential server shows exactly `streams_tested - 1`.
    pub stream_switches: usize,
    /// Announced `SETTINGS_MAX_CONCURRENT_STREAMS` (§III-A2).
    pub max_concurrent_streams: Option<u32>,
}

/// Issues `n` parallel downloads of large objects and inspects the DATA
/// frame ordering. The objects must be large (several DATA frames each) or
/// the probe cannot discriminate — the reason the paper only runs this in
/// the testbed.
pub fn probe(target: &Target, n: usize) -> MultiplexingReport {
    target.obs.enter_probe(h2obs::ProbeKind::Multiplexing);
    let mut conn = ProbeConn::establish(&with_big_objects(target), Settings::new(), 0x0a11);
    conn.exchange();
    let max_concurrent_streams = conn.announced(SettingId::MaxConcurrentStreams);

    // Fire all requests in one segment so they arrive simultaneously.
    for i in 0..n {
        conn.get(1 + 2 * i as u32, &format!("/big/{i}"), None);
    }

    let mut order: Vec<u32> = Vec::new();
    let mut finished = std::collections::HashSet::new();
    loop {
        let frames = conn.exchange();
        if frames.is_empty() {
            break;
        }
        for tf in &frames {
            if let Frame::Data(d) = &tf.frame {
                order.push(d.stream_id.value());
                if d.end_stream {
                    finished.insert(d.stream_id.value());
                }
                conn.replenish(d.stream_id.value(), d.flow_controlled_len());
            }
        }
        if finished.len() == n {
            break;
        }
    }

    let stream_switches = order.windows(2).filter(|w| w[0] != w[1]).count();
    // Sequential service yields exactly n-1 switches (each stream is one
    // contiguous run); anything more means interleaving.
    let parallel = stream_switches > n.saturating_sub(1);
    MultiplexingReport {
        parallel,
        streams_tested: n,
        stream_switches,
        max_concurrent_streams,
    }
}

/// The probe needs multi-frame objects; reuse the target but make sure the
/// benchmark site's large objects exist.
fn with_big_objects(target: &Target) -> Target {
    let mut target = target.clone();
    if target.site.resource("/big/0").is_none() {
        let site = std::sync::Arc::make_mut(&mut target.site);
        for (path, resource) in h2server::SiteSpec::benchmark().resources {
            site.resources.entry(path).or_insert(resource);
        }
    }
    target
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    #[test]
    fn all_testbed_servers_multiplex() {
        // Table III row 3: every tested implementation multiplexes.
        for profile in ServerProfile::testbed() {
            let name = profile.name.clone();
            let target = Target::testbed(profile, SiteSpec::benchmark());
            let report = probe(&target, 4);
            assert!(report.parallel, "{name} must interleave");
            assert_eq!(report.streams_tested, 4);
        }
    }

    #[test]
    fn sequential_server_is_detected() {
        let mut profile = ServerProfile::rfc7540();
        profile.behavior.multiplexing = false;
        let target = Target::testbed(profile, SiteSpec::benchmark());
        let report = probe(&target, 4);
        assert!(!report.parallel);
        assert_eq!(report.stream_switches, 3, "one contiguous run per stream");
    }

    #[test]
    fn max_concurrent_streams_is_read_from_settings() {
        let target = Target::testbed(ServerProfile::nginx(), SiteSpec::benchmark());
        let report = probe(&target, 2);
        assert_eq!(report.max_concurrent_streams, Some(128));
    }
}
