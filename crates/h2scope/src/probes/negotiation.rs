//! ALPN/NPN negotiation probe (§IV-A): does the site speak HTTP/2, and
//! through which TLS extension?

use serde::{Deserialize, Serialize};

use netsim::tls::{handshake, PROTO_H2, PROTO_HTTP11};

use crate::target::Target;

/// Result of the negotiation probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NegotiationReport {
    /// h2 selected via ALPN.
    pub alpn_h2: bool,
    /// h2 selected via NPN.
    pub npn_h2: bool,
}

impl NegotiationReport {
    /// The site supports HTTP/2 through at least one mechanism.
    pub fn h2(&self) -> bool {
        self.alpn_h2 || self.npn_h2
    }
}

/// Runs both negotiation mechanisms against the target, as H2Scope does.
pub fn probe(target: &Target) -> NegotiationReport {
    target.obs.enter_probe(h2obs::ProbeKind::Negotiation);
    let hs = handshake(target.tls(), &[PROTO_H2, PROTO_HTTP11]);
    NegotiationReport {
        alpn_h2: hs.alpn_selected.as_deref() == Some(PROTO_H2),
        npn_h2: hs.npn_selected.as_deref() == Some(PROTO_H2),
    }
}

/// §IV-A's cleartext path: send an HTTP/1.1 request with `Upgrade: h2c`
/// to the unencrypted port and check for `101 Switching Protocols`
/// followed by working HTTP/2 (the server's SETTINGS and a response to
/// the upgraded request on stream 1).
pub fn h2c_upgrade(target: &Target) -> bool {
    use h2server::H2Server;
    use h2wire::{Frame, FrameDecoder, SettingsFrame, CONNECTION_PREFACE};
    use netsim::Pipe;

    let server = H2Server::new_cleartext(target.profile.clone(), target.site.clone());
    let mut pipe = Pipe::connect(server, target.link, 0x42c);
    pipe.client_send(
        format!(
            "GET / HTTP/1.1\r\nHost: {}\r\nConnection: Upgrade, HTTP2-Settings\r\n\
             Upgrade: h2c\r\nHTTP2-Settings: AAMAAABkAARAAAAA\r\n\r\n",
            target.site.authority
        )
        .as_bytes(),
    );
    let arrivals = pipe.run_to_quiescence();
    let first: Vec<u8> = arrivals.iter().flat_map(|a| a.bytes.clone()).collect();
    if !first.starts_with(b"HTTP/1.1 101") {
        return false;
    }
    // Complete the upgrade: client preface + SETTINGS, then expect the
    // server's SETTINGS and a HEADERS frame for stream 1.
    let mut hello = CONNECTION_PREFACE.to_vec();
    Frame::Settings(SettingsFrame::from(h2wire::Settings::new())).encode(&mut hello);
    pipe.client_send(&hello);
    let arrivals = pipe.run_to_quiescence();
    let mut decoder = FrameDecoder::new();
    decoder.set_max_frame_size(h2wire::settings::MAX_MAX_FRAME_SIZE);
    for arrival in arrivals {
        decoder.feed(&arrival.bytes);
    }
    let Ok(frames) = decoder.drain_frames() else {
        return false;
    };
    let settings = frames
        .iter()
        .any(|f| matches!(f, Frame::Settings(s) if !s.ack));
    let response_on_stream_1 = frames
        .iter()
        .any(|f| matches!(f, Frame::Headers(h) if h.stream_id.value() == 1));
    settings && response_on_stream_1
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    fn report_for(profile: ServerProfile) -> NegotiationReport {
        probe(&Target::testbed(profile, SiteSpec::benchmark()))
    }

    #[test]
    fn table_iii_negotiation_rows() {
        for profile in ServerProfile::testbed() {
            let name = profile.name.clone();
            let report = report_for(profile);
            assert!(report.alpn_h2, "{name} supports ALPN");
            assert_eq!(report.npn_h2, name != "Apache", "{name} NPN");
            assert!(report.h2());
        }
    }

    #[test]
    fn npn_only_server_detected() {
        let report = report_for(ServerProfile::ideaweb());
        assert!(!report.alpn_h2);
        assert!(report.npn_h2);
        assert!(report.h2());
    }

    #[test]
    fn h2c_upgrade_works_on_supporting_servers() {
        for profile in [
            ServerProfile::h2o(),
            ServerProfile::nghttpd(),
            ServerProfile::apache(),
        ] {
            let name = profile.name.clone();
            let target = Target::testbed(profile, SiteSpec::benchmark());
            assert!(h2c_upgrade(&target), "{name} should accept Upgrade: h2c");
        }
    }

    #[test]
    fn h2c_upgrade_declined_by_tls_only_servers() {
        for profile in [ServerProfile::nginx(), ServerProfile::litespeed()] {
            let name = profile.name.clone();
            let target = Target::testbed(profile, SiteSpec::benchmark());
            assert!(!h2c_upgrade(&target), "{name} has no h2c path");
        }
    }

    #[test]
    fn declined_upgrade_still_gets_an_http1_response() {
        use h2server::H2Server;
        use netsim::Pipe;
        let target = Target::testbed(ServerProfile::nginx(), SiteSpec::benchmark());
        let server = H2Server::new_cleartext(target.profile.clone(), target.site.clone());
        let mut pipe = Pipe::connect(server, target.link, 1);
        pipe.client_send(b"GET / HTTP/1.1\r\nHost: x\r\nUpgrade: h2c\r\n\r\n");
        let arrivals = pipe.run_to_quiescence();
        let text: Vec<u8> = arrivals.into_iter().flat_map(|a| a.bytes).collect();
        assert!(
            text.starts_with(b"HTTP/1.1 200 OK"),
            "plain HTTP/1.1 service"
        );
    }

    #[test]
    fn prior_knowledge_preface_works_on_cleartext_port() {
        use h2server::H2Server;
        use h2wire::{Frame, FrameDecoder, SettingsFrame, CONNECTION_PREFACE};
        use netsim::Pipe;
        let target = Target::testbed(ServerProfile::nghttpd(), SiteSpec::benchmark());
        let server = H2Server::new_cleartext(target.profile.clone(), target.site.clone());
        let mut pipe = Pipe::connect(server, target.link, 2);
        let mut hello = CONNECTION_PREFACE.to_vec();
        Frame::Settings(SettingsFrame::from(h2wire::Settings::new())).encode(&mut hello);
        pipe.client_send(&hello);
        let arrivals = pipe.run_to_quiescence();
        let mut decoder = FrameDecoder::new();
        for arrival in arrivals {
            decoder.feed(&arrival.bytes);
        }
        let frames = decoder.drain_frames().unwrap();
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::Settings(s) if !s.ack)));
    }
}
