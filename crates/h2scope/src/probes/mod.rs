//! The probe suite: one module per measurement method in the paper's
//! Section III.

pub mod abuse;
pub mod flow_control;
pub mod hpack;
pub mod multiplexing;
pub mod negotiation;
pub mod ping;
pub mod priority;
pub mod push;
pub mod settings;

use serde::{Deserialize, Serialize};

use crate::client::TimedFrame;
use h2wire::Frame;

/// How a server reacted to a deliberately offending frame — the
/// classification H2Scope applies across the flow-control and priority
/// probes (§III-B3, §III-B4, §III-C2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reaction {
    /// No error frame came back; the server carried on.
    Ignored,
    /// The server reset the affected stream.
    RstStream,
    /// The server tore down the connection.
    Goaway,
    /// GOAWAY with human-readable debug data (a small population in §V-D3
    /// explained themselves: "the window update shouldn't be zero").
    GoawayWithDebug,
}

impl std::fmt::Display for Reaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Reaction::Ignored => "ignore",
            Reaction::RstStream => "RST_STREAM",
            Reaction::Goaway => "GOAWAY",
            Reaction::GoawayWithDebug => "GOAWAY+debug",
        };
        f.write_str(s)
    }
}

/// Classifies the frames received after sending an offending frame.
pub(crate) fn classify_reaction(frames: &[TimedFrame]) -> Reaction {
    for tf in frames {
        match &tf.frame {
            Frame::RstStream(_) => return Reaction::RstStream,
            Frame::Goaway(g) => {
                return if g.debug_data.is_empty() {
                    Reaction::Goaway
                } else {
                    Reaction::GoawayWithDebug
                };
            }
            _ => {}
        }
    }
    Reaction::Ignored
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use h2wire::{ErrorCode, GoawayFrame, RstStreamFrame, StreamId};
    use netsim::SimTime;

    fn tf(frame: Frame) -> TimedFrame {
        TimedFrame {
            at: SimTime::ZERO,
            frame,
            headers: None,
        }
    }

    #[test]
    fn classification_order_of_precedence() {
        assert_eq!(classify_reaction(&[]), Reaction::Ignored);
        assert_eq!(
            classify_reaction(&[tf(Frame::RstStream(RstStreamFrame {
                stream_id: StreamId::new(1),
                code: ErrorCode::ProtocolError,
            }))]),
            Reaction::RstStream
        );
        assert_eq!(
            classify_reaction(&[tf(Frame::Goaway(GoawayFrame {
                last_stream_id: StreamId::new(0),
                code: ErrorCode::ProtocolError,
                debug_data: Bytes::new(),
            }))]),
            Reaction::Goaway
        );
        assert_eq!(
            classify_reaction(&[tf(Frame::Goaway(GoawayFrame {
                last_stream_id: StreamId::new(0),
                code: ErrorCode::ProtocolError,
                debug_data: Bytes::from_static(b"the window update shouldn't be zero"),
            }))]),
            Reaction::GoawayWithDebug
        );
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(Reaction::Ignored.to_string(), "ignore");
        assert_eq!(Reaction::RstStream.to_string(), "RST_STREAM");
        assert_eq!(Reaction::Goaway.to_string(), "GOAWAY");
    }
}
