//! Server push probe (§III-D): enable push, browse pages, look for
//! PUSH_PROMISE frames.

use serde::{Deserialize, Serialize};

use h2wire::{Frame, SettingId, Settings};

use crate::client::ProbeConn;
use crate::target::Target;

/// Result of the push probe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushReport {
    /// At least one PUSH_PROMISE was received.
    pub supported: bool,
    /// Paths the server promised, in promise order.
    pub promised_paths: Vec<String>,
    /// Octets of pushed response bodies received.
    pub pushed_octets: u64,
}

/// Enables push, fetches the given pages, and records every promise.
pub fn probe(target: &Target, pages: &[&str]) -> PushReport {
    target.obs.enter_probe(h2obs::ProbeKind::Push);
    let settings = Settings::new().with(SettingId::EnablePush, 1);
    let mut conn = ProbeConn::establish(target, settings, 0x9054);
    conn.exchange();

    let mut promised_paths = Vec::new();
    let mut pushed_octets = 0u64;
    let mut promised_streams = std::collections::HashSet::new();

    for (i, page) in pages.iter().enumerate() {
        let stream = 1 + 2 * i as u32;
        let (frames, _) = conn.fetch(stream, page);
        let mut handle = |frames: &[crate::client::TimedFrame]| {
            for tf in frames {
                match &tf.frame {
                    Frame::PushPromise(p) => {
                        promised_streams.insert(p.promised_stream_id.value());
                        if let Some(headers) = &tf.headers {
                            if let Some(path) = headers.iter().find(|h| h.name == ":path") {
                                promised_paths.push(path.value.clone());
                            }
                        }
                    }
                    Frame::Data(d) if promised_streams.contains(&d.stream_id.value()) => {
                        pushed_octets += d.data.len() as u64;
                    }
                    _ => {}
                }
            }
        };
        handle(&frames);
        // Drain pushed bodies that trail the page response, replenishing
        // windows so large pushed objects can complete.
        loop {
            let trailing = conn.exchange();
            if trailing.is_empty() {
                break;
            }
            for tf in &trailing {
                if let Frame::Data(d) = &tf.frame {
                    conn.replenish(d.stream_id.value(), d.flow_controlled_len());
                }
            }
            handle(&trailing);
        }
    }
    PushReport {
        supported: !promised_paths.is_empty(),
        promised_paths,
        pushed_octets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    fn push_site() -> SiteSpec {
        SiteSpec::page_with_assets(3, 2_000)
    }

    #[test]
    fn table_iii_push_row() {
        let expected = [false, false, true, true, false, true];
        for (profile, expect) in ServerProfile::testbed().into_iter().zip(expected) {
            let name = profile.name.clone();
            let target = Target::testbed(profile, push_site());
            let report = probe(&target, &["/"]);
            assert_eq!(report.supported, expect, "{name}");
        }
    }

    #[test]
    fn promises_name_the_pushed_assets() {
        let target = Target::testbed(ServerProfile::h2o(), push_site());
        let report = probe(&target, &["/"]);
        assert_eq!(report.promised_paths.len(), 3);
        assert!(report
            .promised_paths
            .iter()
            .all(|p| p.starts_with("/asset/")));
        assert_eq!(report.pushed_octets, 3 * 2_000);
    }

    #[test]
    fn non_front_pages_push_nothing() {
        // §V-F: "when requesting URLs other than the front page, we do not
        // receive pushed objects."
        let target = Target::testbed(ServerProfile::h2o(), push_site());
        let report = probe(&target, &["/asset/0"]);
        assert!(!report.supported);
    }

    #[test]
    fn push_capable_server_without_manifest_pushes_nothing() {
        let target = Target::testbed(ServerProfile::apache(), SiteSpec::benchmark());
        let report = probe(&target, &["/"]);
        assert!(!report.supported);
    }
}
