//! Abuse-hardening probes (§VI): does a server bound the classic
//! HTTP/2 resource-exhaustion vectors, and how does it react when a
//! client crosses the bound?
//!
//! RFC 7540 §10.5 *permits* but does not *require* these defenses, so —
//! exactly like the Table III quirks — real deployments diverge. Each
//! probe deliberately exceeds the largest limit any profile configures
//! and classifies the reaction with the same [`Reaction`] taxonomy the
//! flow-control and priority probes use: a hardened server answers with
//! GOAWAY/RST_STREAM (typically `ENHANCE_YOUR_CALM`), an unhardened one
//! absorbs the abuse silently.

use serde::{Deserialize, Serialize};

use h2wire::{ErrorCode, Frame, PingFrame, RstStreamFrame, SettingId, Settings, StreamId};

use super::{classify_reaction, Reaction};
use crate::client::ProbeConn;
use crate::target::Target;

/// RST_STREAM frames sent by the rapid-reset probe; above every
/// configured budget (the largest, nghttpd's, is 1 000).
pub const RST_PROBE_VOLUME: u32 = 1_200;
/// SETTINGS frames sent by the flood probe; above every budget.
pub const SETTINGS_PROBE_VOLUME: u32 = 1_200;
/// CONTINUATION fragments in the flood probe (1 KiB each, plus the
/// initiating HEADERS); the total must exceed the largest cap (64 KiB).
pub const CONTINUATION_PROBE_FRAGMENTS: u32 = 96;
/// How long the stall probe goes quiet; beyond every configured
/// patience (the longest, nginx's, is 60 s).
pub const STALL_PROBE_SECS: u64 = 120;

/// The abuse-hardening characterization of one server — one row of the
/// §VI robustness matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbuseHardeningReport {
    /// Reaction to RST_STREAM churn past any reasonable budget.
    pub rst_rate: Reaction,
    /// Reaction to a SETTINGS flood (each frame extorts an ack).
    pub settings_rate: Reaction,
    /// Reaction to an unbounded CONTINUATION header block.
    pub continuation_bound: Reaction,
    /// Reaction to a stream stalled far past any patience window.
    pub stalled_stream: Reaction,
    /// Reaction to a header list far above SETTINGS_MAX_HEADER_LIST_SIZE.
    pub header_list_bound: Reaction,
}

/// Rapid reset (§VI-A): open a stream and immediately cancel it, over
/// and over. The request side is cheap for the attacker; each reset
/// strands server-side work. A hardened server budgets client resets
/// and closes the connection when the budget is spent.
pub fn rst_rate(target: &Target) -> Reaction {
    let mut conn = ProbeConn::establish(target, Settings::new(), 0xab01);
    conn.exchange();
    let mut churn = Vec::with_capacity(64);
    let mut stream = 1u32;
    let mut sent = 0u32;
    while sent < RST_PROBE_VOLUME {
        churn.clear();
        while churn.len() < 32 && sent < RST_PROBE_VOLUME {
            churn.push(Frame::RstStream(RstStreamFrame {
                stream_id: StreamId::new(stream),
                code: ErrorCode::Cancel,
            }));
            stream = stream.saturating_add(2);
            sent = sent.saturating_add(1);
        }
        conn.send_all(&churn);
    }
    let frames = conn.exchange();
    classify_reaction(&frames)
}

/// SETTINGS flood (§VI-B): every SETTINGS frame obligates the server to
/// ack (RFC 7540 §6.5.3), a free amplification lever. A hardened server
/// stops acking and closes once the rate is plainly abusive.
pub fn settings_rate(target: &Target) -> Reaction {
    let mut conn = ProbeConn::establish(target, Settings::new(), 0xab02);
    conn.exchange();
    let mut flood = Vec::with_capacity(64);
    let mut sent = 0u32;
    while sent < SETTINGS_PROBE_VOLUME {
        flood.clear();
        while flood.len() < 32 && sent < SETTINGS_PROBE_VOLUME {
            flood.push(Frame::Settings(
                h2wire::SettingsFrame::from(Settings::new()),
            ));
            sent = sent.saturating_add(1);
        }
        conn.send_all(&flood);
    }
    let frames = conn.exchange();
    classify_reaction(&frames)
}

/// CONTINUATION flood (§VI-C): a HEADERS frame that never sets
/// END_HEADERS, followed by CONTINUATION fragments forever. RFC 7540
/// §4.3 places no bound on a header block, so an unhardened server
/// buffers indefinitely; a hardened one caps the block and tears the
/// connection down. The fragments are junk — the server may never HPACK-
/// decode them, because the block never completes.
pub fn continuation_bound(target: &Target) -> Reaction {
    let mut conn = ProbeConn::establish(target, Settings::new(), 0xab03);
    conn.exchange();
    conn.send(Frame::Headers(h2wire::HeadersFrame {
        stream_id: StreamId::new(1),
        fragment: bytes::Bytes::from(vec![0u8; 1_024]),
        end_stream: false,
        end_headers: false,
        priority: None,
        pad_len: None,
    }));
    for _ in 0..CONTINUATION_PROBE_FRAGMENTS {
        if conn.is_dead() {
            break;
        }
        conn.send(Frame::Continuation(h2wire::ContinuationFrame {
            stream_id: StreamId::new(1),
            fragment: bytes::Bytes::from(vec![0u8; 1_024]),
            end_headers: false,
        }));
    }
    let frames = conn.exchange();
    classify_reaction(&frames)
}

/// Slow read (§VI-D): announce a one-octet window, request a large
/// object, then go silent for [`STALL_PROBE_SECS`]. The response sits
/// queued against a window that never replenishes. A hardened server
/// times the stalled connection out; an unhardened one holds the
/// stream's state for as long as the client cares to stall.
pub fn stalled_stream(target: &Target) -> Reaction {
    let settings = Settings::new().with(SettingId::InitialWindowSize, 1);
    let mut conn = ProbeConn::establish(target, settings, 0xab04);
    conn.exchange();
    conn.get(1, "/big/1", None);
    conn.exchange();
    conn.advance(netsim::time::SimDuration::from_secs(STALL_PROBE_SECS));
    // The PING is a liveness check: a patient server acks it, a hardened
    // one has already written the connection off.
    conn.send(Frame::Ping(PingFrame::request([0xab; 8])));
    let frames = conn.exchange();
    classify_reaction(&frames)
}

/// Oversized header list (§VI-E): a request whose header list blows past
/// every advertised (or merely internal) SETTINGS_MAX_HEADER_LIST_SIZE.
/// RFC 7540 §10.5.1 suggests treating it as a *stream* error, but — like
/// every "SHOULD" the paper measured — servers also answer with GOAWAY
/// or simply process the list.
pub fn header_list_bound(target: &Target) -> Reaction {
    let mut conn = ProbeConn::establish(target, Settings::new(), 0xab05);
    conn.exchange();
    // 36 padding fields of 441 octets each: the §6.5.2 list size
    // (name + value + 32 per field) lands near 17.5 KiB — above every
    // profile's limit — while the wire encoding stays below 16 KiB, so
    // the block never trips a CONTINUATION cap first.
    let mut headers = conn.request_headers("/");
    for i in 0..36 {
        headers.push(h2hpack::Header::new(
            format!("x-padding-{i:02}"),
            "abc123xyz".repeat(49),
        ));
    }
    conn.send_header_block(1, &headers, true);
    let frames = conn.exchange();
    classify_reaction(&frames)
}

/// Runs all five abuse-hardening probes against one target.
pub fn probe(target: &Target) -> AbuseHardeningReport {
    AbuseHardeningReport {
        rst_rate: rst_rate(target),
        settings_rate: settings_rate(target),
        continuation_bound: continuation_bound(target),
        stalled_stream: stalled_stream(target),
        header_list_bound: header_list_bound(target),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Target;
    use h2server::{ServerProfile, SiteSpec};

    fn testbed(profile: ServerProfile) -> Target {
        Target::testbed(profile, SiteSpec::benchmark())
    }

    #[test]
    fn rst_budgets_divide_the_testbed() {
        assert_eq!(
            rst_rate(&testbed(ServerProfile::h2o())),
            Reaction::GoawayWithDebug
        );
        assert_eq!(
            rst_rate(&testbed(ServerProfile::nginx())),
            Reaction::Ignored
        );
    }

    #[test]
    fn settings_budgets_divide_the_testbed() {
        assert_eq!(
            settings_rate(&testbed(ServerProfile::apache())),
            Reaction::GoawayWithDebug
        );
        assert_eq!(
            settings_rate(&testbed(ServerProfile::rfc7540())),
            Reaction::Ignored
        );
    }

    #[test]
    fn tengine_dropped_its_parents_continuation_cap() {
        assert_eq!(
            continuation_bound(&testbed(ServerProfile::nginx())),
            Reaction::GoawayWithDebug
        );
        assert_eq!(
            continuation_bound(&testbed(ServerProfile::tengine())),
            Reaction::Ignored
        );
    }

    #[test]
    fn stall_timeouts_divide_the_testbed() {
        assert_eq!(
            stalled_stream(&testbed(ServerProfile::litespeed())),
            Reaction::GoawayWithDebug
        );
        assert_eq!(
            stalled_stream(&testbed(ServerProfile::h2o())),
            Reaction::Ignored
        );
    }

    #[test]
    fn header_list_reactions_span_the_taxonomy() {
        assert_eq!(
            header_list_bound(&testbed(ServerProfile::apache())),
            Reaction::RstStream
        );
        assert_eq!(
            header_list_bound(&testbed(ServerProfile::nginx())),
            Reaction::Goaway
        );
        assert_eq!(
            header_list_bound(&testbed(ServerProfile::litespeed())),
            Reaction::Ignored
        );
    }

    #[test]
    fn rfc_reference_absorbs_every_vector() {
        let report = probe(&testbed(ServerProfile::rfc7540()));
        assert_eq!(
            report,
            AbuseHardeningReport {
                rst_rate: Reaction::Ignored,
                settings_rate: Reaction::Ignored,
                continuation_bound: Reaction::Ignored,
                stalled_stream: Reaction::Ignored,
                header_list_bound: Reaction::Ignored,
            }
        );
    }
}
