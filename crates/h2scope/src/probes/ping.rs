//! HTTP/2 PING probe (§III-F) and the four-way RTT comparison behind
//! Figure 6: h2-ping vs ICMP vs TCP-handshake vs HTTP/1.1 request.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use h2wire::{Frame, PingFrame, Settings};
use netsim::http1::{get_request, Http1Server};
use netsim::rtt::{icmp_rtt, tcp_handshake_rtt};
use netsim::time::SimDuration;
use netsim::Pipe;

use crate::client::ProbeConn;
use crate::target::Target;

/// Result of the PING support probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PingReport {
    /// The server echoed the PING with ACK and identical payload.
    pub supported: bool,
    /// RTT samples in milliseconds.
    pub rtt_ms: Vec<f64>,
}

/// One site's samples for all four estimators (Figure 6), in ms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RttComparison {
    /// HTTP/2 PING round trips.
    pub h2_ping: Vec<f64>,
    /// ICMP echo round trips (losses omitted).
    pub icmp: Vec<f64>,
    /// TCP three-way-handshake estimates.
    pub tcp: Vec<f64>,
    /// HTTP/1.1 request/response intervals.
    pub h1_request: Vec<f64>,
}

/// Sends `n` PING frames, one at a time, measuring each round trip.
pub fn probe(target: &Target, n: usize) -> PingReport {
    target.obs.enter_probe(h2obs::ProbeKind::Ping);
    let mut conn = ProbeConn::establish(target, Settings::new(), 0x9196);
    conn.exchange();
    let mut rtt_ms = Vec::with_capacity(n);
    let mut supported = false;
    for i in 0..n {
        let payload = (i as u64).to_be_bytes();
        let t0 = conn.now();
        conn.send(Frame::Ping(PingFrame::request(payload)));
        let frames = conn.exchange();
        for tf in &frames {
            if let Frame::Ping(p) = &tf.frame {
                if p.ack && p.payload == payload {
                    supported = true;
                    rtt_ms.push((tf.at - t0).as_millis_f64());
                }
            }
        }
    }
    PingReport { supported, rtt_ms }
}

/// Runs all four estimators against one target, `n` samples each.
pub fn compare_rtt(target: &Target, n: usize, seed: u64) -> RttComparison {
    let mut comparison = RttComparison {
        // HTTP/2 PING over a live h2 connection.
        h2_ping: probe(target, n).rtt_ms,
        ..Default::default()
    };

    // ICMP and TCP operate on the same link spec.
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n {
        if let Some(rtt) = icmp_rtt(&target.link, &mut rng) {
            comparison.icmp.push(rtt.as_millis_f64());
        }
        comparison
            .tcp
            .push(tcp_handshake_rtt(&target.link, &mut rng).as_millis_f64());
    }

    // HTTP/1.1: a request/response exchange including the server's
    // processing time — the estimator the paper finds biased upward.
    let http1 = Http1Server::new(
        target.profile.behavior.server_name.clone(),
        target.profile.behavior.processing_delay,
    );
    let mut pipe = Pipe::connect(http1, target.link, seed ^ 0x11);
    for _ in 0..n {
        let t0 = pipe.now();
        pipe.client_send(&get_request(&target.site.authority, "/"));
        let arrivals = pipe.run_to_quiescence();
        if let Some(last) = arrivals.last() {
            comparison.h1_request.push((last.at - t0).as_millis_f64());
        }
    }
    comparison
}

/// Median of a sample set (NaN when empty) — the summary statistic the
/// harness prints per estimator.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    // total_cmp gives NaN a defined order, so sorting cannot panic.
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        // h2check: allow(index) — mid < len and len is even, so mid >= 1
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        // h2check: allow(index) — mid = len/2 < len for odd len
        sorted[mid]
    }
}

/// A processing-delay-free duration helper for tests.
pub fn to_ms(d: SimDuration) -> f64 {
    d.as_millis_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};
    use netsim::LinkSpec;

    fn wan_target(delay_ms: u64) -> Target {
        let mut target = Target::testbed(ServerProfile::apache(), SiteSpec::benchmark());
        target.link = LinkSpec {
            delay: SimDuration::from_millis(delay_ms),
            jitter: SimDuration::ZERO,
            bandwidth_bps: None,
            loss: 0.0,
            retransmit_penalty: SimDuration::ZERO,
        };
        target
    }

    #[test]
    fn all_testbed_servers_answer_ping() {
        for profile in ServerProfile::testbed() {
            let name = profile.name.clone();
            let target = Target::testbed(profile, SiteSpec::benchmark());
            let report = probe(&target, 3);
            assert!(report.supported, "{name}");
            assert_eq!(report.rtt_ms.len(), 3);
        }
    }

    #[test]
    fn h2_ping_measures_network_rtt_exactly_on_clean_link() {
        let report = probe(&wan_target(30), 4);
        for rtt in &report.rtt_ms {
            assert!((rtt - 60.0).abs() < 1.0, "got {rtt} ms");
        }
    }

    #[test]
    fn figure6_relationships_hold() {
        let comparison = compare_rtt(&wan_target(25), 10, 77);
        let h2 = median(&comparison.h2_ping);
        let icmp = median(&comparison.icmp);
        let tcp = median(&comparison.tcp);
        let h1 = median(&comparison.h1_request);
        assert!((h2 - icmp).abs() < 2.0, "h2-ping ≈ icmp ({h2} vs {icmp})");
        assert!((h2 - tcp).abs() < 2.0, "h2-ping ≈ tcp ({h2} vs {tcp})");
        assert!(
            h1 > h2 + 0.2,
            "h1-request strictly above h2-ping ({h1} vs {h2})"
        );
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }
}
