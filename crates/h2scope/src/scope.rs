//! The top-level H2Scope tool: testbed characterization and site surveys.

use crate::probes::{
    flow_control, hpack, multiplexing, negotiation, ping, priority, push, settings,
};
use crate::report::{ServerCharacterization, SiteReport};
use crate::target::testbed::Testbed;
use crate::target::Target;

/// Configuration for a probe campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeConfig {
    /// Parallel requests in the multiplexing probe (the paper's N).
    pub multiplex_streams: usize,
    /// Identical requests in the HPACK probe (the paper's H).
    pub hpack_requests: usize,
    /// PING samples per site.
    pub ping_samples: usize,
}

impl Default for ScopeConfig {
    fn default() -> ScopeConfig {
        ScopeConfig {
            multiplex_streams: 4,
            hpack_requests: 8,
            ping_samples: 5,
        }
    }
}

/// The measurement tool the paper contributes.
#[derive(Debug, Clone, Default)]
pub struct H2Scope {
    config: ScopeConfig,
}

impl H2Scope {
    /// A scope with default configuration.
    pub fn new() -> H2Scope {
        H2Scope::default()
    }

    /// A scope with explicit configuration.
    pub fn with_config(config: ScopeConfig) -> H2Scope {
        H2Scope { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ScopeConfig {
        &self.config
    }

    /// Runs every probe against a testbed server — regenerating one column
    /// of Table III.
    pub fn characterize(&self, testbed: &Testbed) -> ServerCharacterization {
        let target = testbed.target();
        ServerCharacterization {
            server: target.profile.name.clone(),
            version: target.profile.version.clone(),
            negotiation: negotiation::probe(target),
            settings: settings::probe(target),
            multiplexing: multiplexing::probe(target, self.config.multiplex_streams),
            flow_control: flow_control::probe(target),
            priority: priority::algorithm1(target),
            push: push::probe(target, &["/"]),
            hpack: hpack::probe(target, self.config.hpack_requests),
            ping: ping::probe(target, self.config.ping_samples),
        }
    }

    /// Surveys one site as the scan campaigns do: negotiation first, then
    /// the follow-up probes only where HTTP/2 and HEADERS responses are
    /// available (matching the paper's funnel: 1M sites → h2 sites →
    /// HEADERS-returning sites → per-feature tests).
    pub fn survey(&self, target: &Target) -> SiteReport {
        let negotiation = negotiation::probe(target);
        if !negotiation.h2() {
            return SiteReport {
                authority: target.site.authority.clone(),
                negotiation,
                server_name: None,
                headers_received: false,
                settings: Default::default(),
                flow_control: None,
                priority: None,
                push: None,
                hpack: None,
                probe: Default::default(),
            };
        }
        let settings = settings::probe(target);
        let probe = crate::report::headers_probe(target);
        if !probe.headers_received {
            return SiteReport {
                authority: target.site.authority.clone(),
                negotiation,
                server_name: probe.server,
                headers_received: false,
                settings,
                flow_control: None,
                priority: None,
                push: None,
                hpack: None,
                probe: Default::default(),
            };
        }
        SiteReport {
            authority: target.site.authority.clone(),
            negotiation,
            server_name: probe.server,
            headers_received: true,
            settings,
            flow_control: Some(flow_control::probe(target)),
            priority: Some(priority::algorithm1(target)),
            push: Some(push::probe(target, &["/"])),
            hpack: Some(hpack::probe(target, self.config.hpack_requests)),
            probe: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    #[test]
    fn characterize_nginx_reproduces_its_table_iii_column() {
        let scope = H2Scope::new();
        let testbed = Testbed::new(ServerProfile::nginx(), SiteSpec::benchmark());
        let report = scope.characterize(&testbed);
        assert_eq!(report.server, "Nginx");
        assert!(report.negotiation.alpn_h2 && report.negotiation.npn_h2);
        assert!(report.multiplexing.parallel);
        assert_eq!(
            report.flow_control.zero_update_stream,
            crate::probes::Reaction::Ignored
        );
        assert!(!report.priority.passes());
        assert!(!report.push.supported);
        assert!((report.hpack.ratio - 1.0).abs() < 1e-9);
        assert!(report.ping.supported);
    }

    #[test]
    fn survey_funnels_non_h2_sites_out_early() {
        let mut profile = ServerProfile::nginx();
        profile.behavior.tls = netsim::TlsConfig::http1_only();
        let target = Target::testbed(profile, SiteSpec::benchmark());
        let report = H2Scope::new().survey(&target);
        assert!(!report.negotiation.h2());
        assert!(!report.headers_received);
        assert!(report.flow_control.is_none());
        assert!(report.hpack.is_none());
    }

    #[test]
    fn survey_of_h2_site_runs_all_follow_ups() {
        let target = Target::testbed(ServerProfile::gse(), SiteSpec::benchmark());
        let report = H2Scope::new().survey(&target);
        assert!(report.headers_received);
        assert_eq!(report.server_name.as_deref(), Some("GSE"));
        assert!(report.flow_control.is_some());
        assert!(report.priority.is_some());
        assert!(report.hpack.is_some());
        assert!(report.hpack.unwrap().ratio < 0.3);
    }
}
