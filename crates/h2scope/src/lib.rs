//! # h2scope — the paper's measurement tool, rebuilt
//!
//! H2Scope characterizes how an HTTP/2 server realizes the protocol's new
//! features by speaking to it at the *frame* level: it sends SETTINGS,
//! WINDOW_UPDATE, PRIORITY and PING frames a conforming client library
//! would never emit, and classifies the server's reaction.
//!
//! The probe suite maps one-to-one onto the paper's Section III:
//!
//! | Paper | Module |
//! |---|---|
//! | §III-A request multiplexing, MAX_CONCURRENT_STREAMS | [`probes::multiplexing`] |
//! | §III-B flow control (4 tests) | [`probes::flow_control`] |
//! | §III-C Algorithm 1 + self-dependency | [`probes::priority`] |
//! | §III-D server push | [`probes::push`] |
//! | §III-E HPACK ratio (eq. 1) | [`probes::hpack`] |
//! | §III-F PING RTT vs ICMP/TCP/HTTP1.1 | [`probes::ping`] |
//! | §IV-A ALPN/NPN | [`probes::negotiation`] |
//! | §V-C SETTINGS survey | [`probes::settings`] |
//! | §V-F page-load with/without push | [`pageload`] |
//! | §VI lossy-link single vs multi connection | [`multi_connection`] |
//!
//! ```
//! use h2scope::{H2Scope, testbed::Testbed};
//! use h2server::{ServerProfile, SiteSpec};
//!
//! let scope = H2Scope::new();
//! let report = scope.characterize(&Testbed::new(
//!     ServerProfile::h2o(), SiteSpec::benchmark()));
//! assert!(report.priority.passes());   // H2O honors priorities
//! assert!(report.push.supported == false); // benchmark site has no manifest
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod multi_connection;
pub mod pageload;
pub mod probes;
pub mod report;
pub mod resilient;
pub mod scope;
pub mod storage;
pub mod target;
pub mod trace;

pub use client::{ProbeConn, TimedFrame};
pub use h2obs::{Obs, ProbeKind};
pub use probes::Reaction;
pub use report::{ServerCharacterization, SiteReport};
pub use resilient::{
    survey_with_retries, FaultLog, ProbeFailure, ProbeOutcome, ProbeStats, MAX_RETRY_BACKOFF,
};
pub use scope::{H2Scope, ScopeConfig};
pub use target::testbed;
pub use target::Target;
