//! Property-based round-trip tests for the scan-report storage format.

use h2scope::probes::flow_control::{FlowControlReport, SmallWindowOutcome};
use h2scope::probes::hpack::HpackReport;
use h2scope::probes::negotiation::NegotiationReport;
use h2scope::probes::priority::PriorityReport;
use h2scope::probes::push::PushReport;
use h2scope::probes::settings::SettingsReport;
use h2scope::probes::Reaction;
use h2scope::storage::{read_report, read_reports, write_report, write_reports};
use h2scope::{ProbeOutcome, ProbeStats, SiteReport};
use netsim::time::SimDuration;
use proptest::prelude::*;

fn arb_outcome() -> impl Strategy<Value = ProbeOutcome> {
    prop_oneof![
        Just(ProbeOutcome::Ok),
        Just(ProbeOutcome::Timeout),
        Just(ProbeOutcome::ConnReset),
        Just(ProbeOutcome::Malformed),
        Just(ProbeOutcome::GaveUpAfterRetries),
    ]
}

fn arb_reaction() -> impl Strategy<Value = Reaction> {
    prop_oneof![
        Just(Reaction::Ignored),
        Just(Reaction::RstStream),
        Just(Reaction::Goaway),
        Just(Reaction::GoawayWithDebug),
    ]
}

fn arb_small_window() -> impl Strategy<Value = SmallWindowOutcome> {
    prop_oneof![
        Just(SmallWindowOutcome::OneByteData),
        Just(SmallWindowOutcome::ZeroLenData),
        Just(SmallWindowOutcome::HeadersOnly),
        Just(SmallWindowOutcome::NoResponse),
        Just(SmallWindowOutcome::Oversized),
    ]
}

prop_compose! {
    fn arb_settings()(
        received in any::<bool>(),
        hts in prop::option::of(any::<u32>()),
        push in prop::option::of(0u32..2),
        mcs in prop::option::of(any::<u32>()),
        iws in prop::option::of(any::<u32>()),
        mfs in prop::option::of(any::<u32>()),
        mhls in prop::option::of(any::<u32>()),
        zwtu in any::<bool>(),
    ) -> SettingsReport {
        SettingsReport {
            received,
            header_table_size: hts,
            enable_push: push,
            max_concurrent_streams: mcs,
            initial_window_size: iws,
            max_frame_size: mfs,
            max_header_list_size: mhls,
            zero_window_then_update: zwtu,
        }
    }
}

prop_compose! {
    fn arb_report()(
        authority in "[ -~]{1,40}",
        alpn in any::<bool>(),
        npn in any::<bool>(),
        headers_received in any::<bool>(),
        server_name in prop::option::of("[ -~]{1,24}"),
        settings in arb_settings(),
        fc in prop::option::of((
            arb_small_window(), any::<bool>(), arb_reaction(), arb_reaction(),
            arb_reaction(), arb_reaction(),
        )),
        pr in prop::option::of((
            any::<bool>(), any::<bool>(), any::<bool>(), arb_reaction(),
        )),
        push in prop::option::of((
            any::<bool>(), any::<u64>(),
            prop::collection::vec("[!-~]{1,12}", 0..4),
        )),
        hpack in prop::option::of((
            0.0f64..2.0, 2usize..10,
            prop::collection::vec(1usize..500, 1..8),
        )),
        probe in (arb_outcome(), 1u32..5, 0u64..10_000_000_000),
    ) -> SiteReport {
        SiteReport {
            authority,
            negotiation: NegotiationReport { alpn_h2: alpn, npn_h2: npn },
            server_name,
            headers_received,
            settings,
            flow_control: fc.map(|(sw, hzw, zus, zuc, lus, luc)| FlowControlReport {
                small_window: sw,
                headers_at_zero_window: hzw,
                zero_update_stream: zus,
                zero_update_conn: zuc,
                large_update_stream: lus,
                large_update_conn: luc,
            }),
            priority: pr.map(|(last, first, blocked, self_dep)| PriorityReport {
                by_last_frame: last,
                by_first_frame: first,
                by_both: last && first,
                headers_blocked_at_zero_conn_window: blocked,
                self_dependency: self_dep,
            }),
            push: push.map(|(supported, octets, paths)| PushReport {
                supported,
                pushed_octets: octets,
                promised_paths: paths,
            }),
            hpack: hpack.map(|(ratio, h, sizes)| HpackReport { ratio, h, sizes }),
            probe: ProbeStats {
                outcome: probe.0,
                attempts: probe.1,
                backoff: SimDuration::from_nanos(probe.2),
            },
        }
    }
}

proptest! {
    /// Every representable report round-trips exactly.
    #[test]
    fn storage_round_trips(report in arb_report()) {
        let line = write_report(&report);
        prop_assert!(!line.contains('\n'), "records are single lines");
        let loaded = read_report(&line).expect("parses");
        prop_assert_eq!(loaded, report);
    }

    /// Campaign files round-trip with ordering preserved.
    #[test]
    fn campaigns_round_trip(reports in prop::collection::vec(arb_report(), 0..12)) {
        let data = write_reports(&reports);
        let loaded = read_reports(&data).expect("parses");
        prop_assert_eq!(loaded, reports);
    }

    /// Arbitrary garbage never panics the parser.
    #[test]
    fn parser_never_panics(noise in "[ -~|=\\\\]{0,120}") {
        let _ = read_report(&noise);
        let _ = read_reports(&noise);
    }
}
