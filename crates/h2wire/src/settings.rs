//! SETTINGS parameters (RFC 7540 §6.5).

// h2check: allow-file(index) — dense wire codec; lengths verified before fixed-offset reads

use crate::error::DecodeFrameError;

/// Default `SETTINGS_HEADER_TABLE_SIZE` (RFC 7540 §6.5.2).
pub const DEFAULT_HEADER_TABLE_SIZE: u32 = 4_096;
/// Default `SETTINGS_INITIAL_WINDOW_SIZE` for streams and the connection.
pub const DEFAULT_INITIAL_WINDOW_SIZE: u32 = 65_535;
/// Default `SETTINGS_MAX_FRAME_SIZE`.
pub const DEFAULT_MAX_FRAME_SIZE: u32 = 16_384;
/// Largest legal `SETTINGS_MAX_FRAME_SIZE` (2^24 - 1).
pub const MAX_MAX_FRAME_SIZE: u32 = (1 << 24) - 1;
/// Largest legal flow-control window (2^31 - 1).
pub const MAX_WINDOW_SIZE: u32 = (1 << 31) - 1;
/// The value RFC 7540 recommends `SETTINGS_MAX_CONCURRENT_STREAMS` not be
/// smaller than (§6.5.2: "it is recommended that this value be no smaller
/// than 100"). The paper checks announced values against this floor.
pub const RECOMMENDED_MIN_CONCURRENT_STREAMS: u32 = 100;

/// Identifier of a SETTINGS parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SettingId {
    /// Maximum size of the peer's HPACK dynamic table (0x1).
    HeaderTableSize,
    /// Whether server push is permitted (0x2).
    EnablePush,
    /// Maximum number of concurrent streams the sender allows (0x3).
    MaxConcurrentStreams,
    /// Initial stream-level flow-control window (0x4).
    InitialWindowSize,
    /// Largest frame payload the sender will accept (0x5).
    MaxFrameSize,
    /// Advisory maximum header list size (0x6).
    MaxHeaderListSize,
    /// A parameter unknown to RFC 7540; receivers must ignore it.
    Unknown(u16),
}

impl SettingId {
    /// The 16-bit wire identifier.
    pub fn to_u16(self) -> u16 {
        match self {
            SettingId::HeaderTableSize => 0x1,
            SettingId::EnablePush => 0x2,
            SettingId::MaxConcurrentStreams => 0x3,
            SettingId::InitialWindowSize => 0x4,
            SettingId::MaxFrameSize => 0x5,
            SettingId::MaxHeaderListSize => 0x6,
            SettingId::Unknown(v) => v,
        }
    }
}

impl From<u16> for SettingId {
    fn from(v: u16) -> Self {
        match v {
            0x1 => SettingId::HeaderTableSize,
            0x2 => SettingId::EnablePush,
            0x3 => SettingId::MaxConcurrentStreams,
            0x4 => SettingId::InitialWindowSize,
            0x5 => SettingId::MaxFrameSize,
            0x6 => SettingId::MaxHeaderListSize,
            other => SettingId::Unknown(other),
        }
    }
}

/// An ordered list of SETTINGS parameters as carried in one frame.
///
/// Order is preserved because RFC 7540 §6.5.3 requires parameters to be
/// processed in the order they appear; the last value of a repeated
/// parameter wins.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Settings {
    params: Vec<(SettingId, u32)>,
}

impl Settings {
    /// Creates an empty parameter list.
    pub fn new() -> Settings {
        Settings::default()
    }

    /// Appends a parameter, keeping wire order.
    ///
    /// Returns `self` for chaining.
    pub fn push(&mut self, id: SettingId, value: u32) -> &mut Settings {
        self.params.push((id, value));
        self
    }

    /// Builder-style append.
    pub fn with(mut self, id: SettingId, value: u32) -> Settings {
        self.params.push((id, value));
        self
    }

    /// The effective value of a parameter: the last occurrence wins.
    pub fn get(&self, id: SettingId) -> Option<u32> {
        self.params
            .iter()
            .rev()
            .find(|(i, _)| *i == id)
            .map(|(_, v)| *v)
    }

    /// Iterates parameters in wire order.
    pub fn iter(&self) -> impl Iterator<Item = (SettingId, u32)> + '_ {
        self.params.iter().copied()
    }

    /// Number of parameters carried.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` when no parameters are carried.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Validates every parameter value per RFC 7540 §6.5.2.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeFrameError::InvalidSettingValue`] for: `ENABLE_PUSH`
    /// outside {0, 1}, `INITIAL_WINDOW_SIZE` above 2^31-1, or
    /// `MAX_FRAME_SIZE` outside [2^14, 2^24-1].
    pub fn validate(&self) -> Result<(), DecodeFrameError> {
        for (id, value) in self.iter() {
            let bad = match id {
                SettingId::EnablePush => value > 1,
                SettingId::InitialWindowSize => value > MAX_WINDOW_SIZE,
                SettingId::MaxFrameSize => {
                    !(DEFAULT_MAX_FRAME_SIZE..=MAX_MAX_FRAME_SIZE).contains(&value)
                }
                _ => false,
            };
            if bad {
                return Err(DecodeFrameError::InvalidSettingValue {
                    id: id.to_u16(),
                    value,
                });
            }
        }
        Ok(())
    }

    /// Serializes the parameter list as a SETTINGS payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        for (id, value) in self.iter() {
            out.extend_from_slice(&id.to_u16().to_be_bytes());
            out.extend_from_slice(&value.to_be_bytes());
        }
    }

    /// Parses a SETTINGS payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeFrameError::InvalidLength`] when the payload is not
    /// a multiple of six octets, and propagates value validation errors.
    pub fn decode(payload: &[u8]) -> Result<Settings, DecodeFrameError> {
        if !payload.len().is_multiple_of(6) {
            return Err(DecodeFrameError::InvalidLength {
                kind: 0x4,
                length: payload.len() as u32,
            });
        }
        let mut settings = Settings::new();
        for chunk in payload.chunks_exact(6) {
            let id = SettingId::from(u16::from_be_bytes([chunk[0], chunk[1]]));
            let value = u32::from_be_bytes([chunk[2], chunk[3], chunk[4], chunk[5]]);
            settings.push(id, value);
        }
        settings.validate()?;
        Ok(settings)
    }
}

impl FromIterator<(SettingId, u32)> for Settings {
    fn from_iter<T: IntoIterator<Item = (SettingId, u32)>>(iter: T) -> Settings {
        Settings {
            params: iter.into_iter().collect(),
        }
    }
}

impl Extend<(SettingId, u32)> for Settings {
    fn extend<T: IntoIterator<Item = (SettingId, u32)>>(&mut self, iter: T) {
        self.params.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_occurrence_wins() {
        let s = Settings::new()
            .with(SettingId::InitialWindowSize, 10)
            .with(SettingId::InitialWindowSize, 20);
        assert_eq!(s.get(SettingId::InitialWindowSize), Some(20));
    }

    #[test]
    fn round_trip_preserves_order() {
        let s = Settings::new()
            .with(SettingId::MaxConcurrentStreams, 128)
            .with(SettingId::Unknown(0x99), 7)
            .with(SettingId::HeaderTableSize, 4_096);
        let mut buf = Vec::new();
        s.encode(&mut buf);
        assert_eq!(Settings::decode(&buf).unwrap(), s);
    }

    #[test]
    fn decode_rejects_misaligned_payload() {
        assert!(matches!(
            Settings::decode(&[0; 5]),
            Err(DecodeFrameError::InvalidLength {
                kind: 0x4,
                length: 5
            })
        ));
    }

    #[test]
    fn validate_rejects_enable_push_two() {
        let s = Settings::new().with(SettingId::EnablePush, 2);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_oversized_initial_window() {
        let s = Settings::new().with(SettingId::InitialWindowSize, MAX_WINDOW_SIZE + 1);
        assert!(s.validate().is_err());
        let s = Settings::new().with(SettingId::InitialWindowSize, MAX_WINDOW_SIZE);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_enforces_max_frame_size_bounds() {
        assert!(Settings::new()
            .with(SettingId::MaxFrameSize, 16_383)
            .validate()
            .is_err());
        assert!(Settings::new()
            .with(SettingId::MaxFrameSize, 16_384)
            .validate()
            .is_ok());
        assert!(Settings::new()
            .with(SettingId::MaxFrameSize, MAX_MAX_FRAME_SIZE)
            .validate()
            .is_ok());
        assert!(Settings::new()
            .with(SettingId::MaxFrameSize, MAX_MAX_FRAME_SIZE + 1)
            .validate()
            .is_err());
    }

    #[test]
    fn unknown_parameters_survive_round_trip() {
        let s = Settings::new().with(SettingId::Unknown(0xff00), 42);
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let parsed = Settings::decode(&buf).unwrap();
        assert_eq!(parsed.get(SettingId::Unknown(0xff00)), Some(42));
    }
}
