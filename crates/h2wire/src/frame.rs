//! Typed frames for all ten RFC 7540 frame types, with encode/decode.

// h2check: allow-file(index) — dense wire codec; lengths verified before fixed-offset reads

use std::fmt;

use bytes::Bytes;

use crate::error::{DecodeFrameError, ErrorCode};
use crate::header::{flags, FrameHeader, FrameKind, FRAME_HEADER_LEN};
use crate::settings::Settings;
use crate::stream_id::StreamId;

/// Priority fields carried in HEADERS (with the PRIORITY flag) and
/// PRIORITY frames (RFC 7540 §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrioritySpec {
    /// Exclusive dependency flag (the `E` bit).
    pub exclusive: bool,
    /// The stream this stream depends on; 0 makes it a root dependent.
    pub dependency: StreamId,
    /// Weight between 1 and 256 (stored as its real value, not wire - 1).
    pub weight: u16,
}

impl PrioritySpec {
    /// The default priority given to new streams: non-exclusive dependency
    /// on stream 0 with weight 16 (RFC 7540 §5.3.5).
    pub fn default_spec() -> PrioritySpec {
        PrioritySpec {
            exclusive: false,
            dependency: StreamId::CONNECTION,
            weight: 16,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        let mut dep = self.dependency.value();
        if self.exclusive {
            dep |= 0x8000_0000;
        }
        out.extend_from_slice(&dep.to_be_bytes());
        debug_assert!((1..=256).contains(&self.weight));
        out.push((self.weight - 1) as u8);
    }

    fn decode(buf: &[u8]) -> Result<PrioritySpec, DecodeFrameError> {
        if buf.len() < 5 {
            return Err(DecodeFrameError::Truncated);
        }
        let raw = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        Ok(PrioritySpec {
            exclusive: raw & 0x8000_0000 != 0,
            dependency: StreamId::new(raw),
            weight: u16::from(buf[4]) + 1,
        })
    }
}

impl Default for PrioritySpec {
    fn default() -> PrioritySpec {
        PrioritySpec::default_spec()
    }
}

/// A DATA frame (RFC 7540 §6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    /// The stream carrying this data; never 0.
    pub stream_id: StreamId,
    /// Application payload.
    pub data: Bytes,
    /// END_STREAM flag.
    pub end_stream: bool,
    /// Number of padding octets, when the PADDED flag is used.
    pub pad_len: Option<u8>,
}

impl DataFrame {
    /// Octets charged against flow control: payload plus padding plus the
    /// pad-length octet itself (RFC 7540 §6.9: "the entire DATA frame
    /// payload is included in flow control").
    pub fn flow_controlled_len(&self) -> u32 {
        let padding = self.pad_len.map_or(0, |p| u32::from(p) + 1);
        self.data.len() as u32 + padding
    }
}

/// A HEADERS frame (RFC 7540 §6.2). `fragment` is an opaque HPACK block
/// fragment; assembly across CONTINUATION frames happens in `h2conn`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadersFrame {
    /// The stream being opened or continued; never 0.
    pub stream_id: StreamId,
    /// HPACK-encoded header block fragment.
    pub fragment: Bytes,
    /// END_STREAM flag.
    pub end_stream: bool,
    /// END_HEADERS flag.
    pub end_headers: bool,
    /// Optional priority fields (PRIORITY flag).
    pub priority: Option<PrioritySpec>,
    /// Number of padding octets, when the PADDED flag is used.
    pub pad_len: Option<u8>,
}

/// A PRIORITY frame (RFC 7540 §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityFrame {
    /// The stream being (re-)prioritized; never 0.
    pub stream_id: StreamId,
    /// New priority information.
    pub spec: PrioritySpec,
}

/// An RST_STREAM frame (RFC 7540 §6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RstStreamFrame {
    /// The stream being reset; never 0.
    pub stream_id: StreamId,
    /// Why the stream is being terminated.
    pub code: ErrorCode,
}

/// A SETTINGS frame (RFC 7540 §6.5).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SettingsFrame {
    /// ACK flag; an ack carries no parameters.
    pub ack: bool,
    /// Parameters in wire order.
    pub settings: Settings,
}

impl SettingsFrame {
    /// An acknowledgement frame.
    pub fn ack() -> SettingsFrame {
        SettingsFrame {
            ack: true,
            settings: Settings::new(),
        }
    }
}

impl From<Settings> for SettingsFrame {
    fn from(settings: Settings) -> SettingsFrame {
        SettingsFrame {
            ack: false,
            settings,
        }
    }
}

/// A PUSH_PROMISE frame (RFC 7540 §6.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushPromiseFrame {
    /// The stream the promise is associated with; never 0.
    pub stream_id: StreamId,
    /// The reserved even-numbered stream for the pushed response.
    pub promised_stream_id: StreamId,
    /// HPACK-encoded request header block fragment.
    pub fragment: Bytes,
    /// END_HEADERS flag.
    pub end_headers: bool,
    /// Number of padding octets, when the PADDED flag is used.
    pub pad_len: Option<u8>,
}

/// A PING frame (RFC 7540 §6.7). Payload is always exactly eight octets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PingFrame {
    /// ACK flag.
    pub ack: bool,
    /// Opaque payload echoed back by the receiver.
    pub payload: [u8; 8],
}

impl PingFrame {
    /// A ping request carrying `payload`.
    pub fn request(payload: [u8; 8]) -> PingFrame {
        PingFrame {
            ack: false,
            payload,
        }
    }

    /// The acknowledgement for a received ping.
    pub fn ack_of(&self) -> PingFrame {
        PingFrame {
            ack: true,
            payload: self.payload,
        }
    }
}

/// A GOAWAY frame (RFC 7540 §6.8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoawayFrame {
    /// Highest stream id the sender might have processed.
    pub last_stream_id: StreamId,
    /// Why the connection is shutting down.
    pub code: ErrorCode,
    /// Opaque debug data (the paper observed servers explaining zero
    /// window updates here).
    pub debug_data: Bytes,
}

/// Largest window increment expressible on the wire: 2^31 - 1 (the field
/// is 31 bits; the 32nd is a reserved bit senders must leave zero).
pub const MAX_WINDOW_INCREMENT: u32 = (1 << 31) - 1;

/// A WINDOW_UPDATE frame (RFC 7540 §6.9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowUpdateFrame {
    /// Stream 0 adjusts the connection window; otherwise a stream window.
    pub stream_id: StreamId,
    /// Window size increment, 1..=2^31-1. Zero is a protocol violation the
    /// paper probes servers with, so the codec representation permits it —
    /// but values above [`MAX_WINDOW_INCREMENT`] are *not* representable
    /// and are refused at encode time rather than silently masked. Use
    /// [`WindowUpdateFrame::checked`] to construct RFC-conformant frames.
    pub increment: u32,
}

/// Error from [`WindowUpdateFrame::checked`]: the increment is outside the
/// legal range `1..=2^31-1` (RFC 7540 §6.9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementOutOfRange {
    /// The rejected increment.
    pub increment: u32,
}

impl fmt::Display for IncrementOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "window update increment {} outside 1..=2^31-1",
            self.increment
        )
    }
}

impl std::error::Error for IncrementOutOfRange {}

impl WindowUpdateFrame {
    /// Constructs a WINDOW_UPDATE whose increment is validated against RFC
    /// 7540 §6.9: nonzero and at most 2^31 - 1.
    ///
    /// The struct literal remains available for probes that *intend* to
    /// violate the protocol with a zero increment; an increment above the
    /// 31-bit field, however, has no wire representation at all, so every
    /// path that might carry an untrusted value should come through here.
    ///
    /// # Errors
    ///
    /// [`IncrementOutOfRange`] when `increment` is zero or exceeds
    /// [`MAX_WINDOW_INCREMENT`].
    pub fn checked(stream_id: StreamId, increment: u32) -> Result<Self, IncrementOutOfRange> {
        if increment == 0 || increment > MAX_WINDOW_INCREMENT {
            return Err(IncrementOutOfRange { increment });
        }
        Ok(WindowUpdateFrame {
            stream_id,
            increment,
        })
    }
}

/// A CONTINUATION frame (RFC 7540 §6.10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContinuationFrame {
    /// Must match the preceding HEADERS/PUSH_PROMISE stream.
    pub stream_id: StreamId,
    /// HPACK-encoded header block fragment.
    pub fragment: Bytes,
    /// END_HEADERS flag.
    pub end_headers: bool,
}

/// An extension frame of unknown type, preserved opaquely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFrame {
    /// The unrecognized wire type.
    pub kind: u8,
    /// Raw flags.
    pub flags: u8,
    /// Stream the frame was received on.
    pub stream_id: StreamId,
    /// Raw payload.
    pub payload: Bytes,
}

/// Any HTTP/2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// DATA (0x0).
    Data(DataFrame),
    /// HEADERS (0x1).
    Headers(HeadersFrame),
    /// PRIORITY (0x2).
    Priority(PriorityFrame),
    /// RST_STREAM (0x3).
    RstStream(RstStreamFrame),
    /// SETTINGS (0x4).
    Settings(SettingsFrame),
    /// PUSH_PROMISE (0x5).
    PushPromise(PushPromiseFrame),
    /// PING (0x6).
    Ping(PingFrame),
    /// GOAWAY (0x7).
    Goaway(GoawayFrame),
    /// WINDOW_UPDATE (0x8).
    WindowUpdate(WindowUpdateFrame),
    /// CONTINUATION (0x9).
    Continuation(ContinuationFrame),
    /// Any extension frame; receivers must ignore these.
    Unknown(UnknownFrame),
}

impl Frame {
    /// The frame type.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::Data(_) => FrameKind::Data,
            Frame::Headers(_) => FrameKind::Headers,
            Frame::Priority(_) => FrameKind::Priority,
            Frame::RstStream(_) => FrameKind::RstStream,
            Frame::Settings(_) => FrameKind::Settings,
            Frame::PushPromise(_) => FrameKind::PushPromise,
            Frame::Ping(_) => FrameKind::Ping,
            Frame::Goaway(_) => FrameKind::Goaway,
            Frame::WindowUpdate(_) => FrameKind::WindowUpdate,
            Frame::Continuation(_) => FrameKind::Continuation,
            Frame::Unknown(u) => FrameKind::Unknown(u.kind),
        }
    }

    /// The stream this frame addresses (0 for connection-scoped frames).
    pub fn stream_id(&self) -> StreamId {
        match self {
            Frame::Data(f) => f.stream_id,
            Frame::Headers(f) => f.stream_id,
            Frame::Priority(f) => f.stream_id,
            Frame::RstStream(f) => f.stream_id,
            Frame::Settings(_) | Frame::Ping(_) | Frame::Goaway(_) => StreamId::CONNECTION,
            Frame::PushPromise(f) => f.stream_id,
            Frame::WindowUpdate(f) => f.stream_id,
            Frame::Continuation(f) => f.stream_id,
            Frame::Unknown(f) => f.stream_id,
        }
    }

    /// Serializes the frame (header and payload) onto `out`.
    ///
    /// The payload streams straight into `out` — the nine-octet header
    /// slot is reserved up front and patched once the length is known —
    /// so encoding never stages bytes through a temporary buffer. A DATA
    /// frame costs exactly one `memcpy` of its payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let header_at = out.len();
        out.resize(header_at + FRAME_HEADER_LEN, 0);
        let payload_at = out.len();
        let (kind, frame_flags, stream_id) = match self {
            Frame::Data(f) => {
                let mut fl = 0;
                if f.end_stream {
                    fl |= flags::END_STREAM;
                }
                if let Some(pad) = f.pad_len {
                    fl |= flags::PADDED;
                    out.push(pad);
                }
                out.extend_from_slice(&f.data);
                if let Some(pad) = f.pad_len {
                    out.resize(out.len() + pad as usize, 0);
                }
                (FrameKind::Data, fl, f.stream_id)
            }
            Frame::Headers(f) => {
                let mut fl = 0;
                if f.end_stream {
                    fl |= flags::END_STREAM;
                }
                if f.end_headers {
                    fl |= flags::END_HEADERS;
                }
                if let Some(pad) = f.pad_len {
                    fl |= flags::PADDED;
                    out.push(pad);
                }
                if let Some(spec) = &f.priority {
                    fl |= flags::PRIORITY;
                    spec.encode(out);
                }
                out.extend_from_slice(&f.fragment);
                if let Some(pad) = f.pad_len {
                    out.resize(out.len() + pad as usize, 0);
                }
                (FrameKind::Headers, fl, f.stream_id)
            }
            Frame::Priority(f) => {
                f.spec.encode(out);
                (FrameKind::Priority, 0, f.stream_id)
            }
            Frame::RstStream(f) => {
                out.extend_from_slice(&f.code.to_u32().to_be_bytes());
                (FrameKind::RstStream, 0, f.stream_id)
            }
            Frame::Settings(f) => {
                let fl = if f.ack { flags::ACK } else { 0 };
                if !f.ack {
                    f.settings.encode(out);
                }
                (FrameKind::Settings, fl, StreamId::CONNECTION)
            }
            Frame::PushPromise(f) => {
                let mut fl = 0;
                if f.end_headers {
                    fl |= flags::END_HEADERS;
                }
                if let Some(pad) = f.pad_len {
                    fl |= flags::PADDED;
                    out.push(pad);
                }
                out.extend_from_slice(&f.promised_stream_id.value().to_be_bytes());
                out.extend_from_slice(&f.fragment);
                if let Some(pad) = f.pad_len {
                    out.resize(out.len() + pad as usize, 0);
                }
                (FrameKind::PushPromise, fl, f.stream_id)
            }
            Frame::Ping(f) => {
                out.extend_from_slice(&f.payload);
                let fl = if f.ack { flags::ACK } else { 0 };
                (FrameKind::Ping, fl, StreamId::CONNECTION)
            }
            Frame::Goaway(f) => {
                out.extend_from_slice(&f.last_stream_id.value().to_be_bytes());
                out.extend_from_slice(&f.code.to_u32().to_be_bytes());
                out.extend_from_slice(&f.debug_data);
                (FrameKind::Goaway, 0, StreamId::CONNECTION)
            }
            Frame::WindowUpdate(f) => {
                // An earlier version masked `increment & 0x7fff_ffff` here,
                // silently corrupting out-of-range increments on the wire.
                // The 31-bit field simply cannot carry such a value, so an
                // attempt to encode one is a caller bug, not a wire event.
                assert!(
                    f.increment <= MAX_WINDOW_INCREMENT,
                    "WINDOW_UPDATE increment {} exceeds 2^31-1; use WindowUpdateFrame::checked",
                    f.increment
                );
                out.extend_from_slice(&f.increment.to_be_bytes());
                (FrameKind::WindowUpdate, 0, f.stream_id)
            }
            Frame::Continuation(f) => {
                let fl = if f.end_headers { flags::END_HEADERS } else { 0 };
                out.extend_from_slice(&f.fragment);
                (FrameKind::Continuation, fl, f.stream_id)
            }
            Frame::Unknown(f) => {
                out.extend_from_slice(&f.payload);
                (FrameKind::Unknown(f.kind), f.flags, f.stream_id)
            }
        };
        FrameHeader {
            length: (out.len() - payload_at) as u32,
            kind,
            flags: frame_flags,
            stream_id,
        }
        .write_to(&mut out[header_at..payload_at]);
    }

    /// Serializes the frame into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a frame whose payload is a view into a shared segment.
    ///
    /// Identical to [`Frame::decode`] except that a DATA frame's body
    /// becomes a zero-copy [`Bytes::slice`] of `payload` instead of a
    /// fresh allocation — DATA carries virtually all transferred octets,
    /// so the receive path of a bulk download does no per-frame payload
    /// copies at all. Other frame kinds are small and delegate to the
    /// slice-based decoder unchanged.
    ///
    /// # Errors
    ///
    /// Same contract as [`Frame::decode`].
    pub fn decode_shared(header: FrameHeader, payload: Bytes) -> Result<Frame, DecodeFrameError> {
        if header.kind == FrameKind::Data {
            if payload.len() as u32 != header.length {
                return Err(DecodeFrameError::Truncated);
            }
            if header.stream_id.is_connection() {
                return Err(DecodeFrameError::InvalidStreamId {
                    kind: header.kind.to_u8(),
                    stream_id: 0,
                });
            }
            let (pad_len, body_range) = match strip_padding(&header, payload.as_ref())? {
                (None, body) => (None, 0..body.len()),
                (Some(pad), body) => (Some(pad), 1..1 + body.len()),
            };
            return Ok(Frame::Data(DataFrame {
                stream_id: header.stream_id,
                data: payload.slice(body_range),
                end_stream: header.has_flag(flags::END_STREAM),
                pad_len,
            }));
        }
        Frame::decode(header, payload.as_ref())
    }

    /// Decodes a frame from a header plus its complete payload.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeFrameError`] describing any structural violation:
    /// wrong payload length for fixed-size frames, a stream id of zero on
    /// stream-scoped frames (or nonzero on connection-scoped frames),
    /// padding overruns, or invalid SETTINGS values.
    pub fn decode(header: FrameHeader, payload: &[u8]) -> Result<Frame, DecodeFrameError> {
        if payload.len() as u32 != header.length {
            return Err(DecodeFrameError::Truncated);
        }
        let kind_byte = header.kind.to_u8();
        let require_stream = |hdr: &FrameHeader| {
            if hdr.stream_id.is_connection() {
                Err(DecodeFrameError::InvalidStreamId {
                    kind: kind_byte,
                    stream_id: 0,
                })
            } else {
                Ok(())
            }
        };
        let require_connection = |hdr: &FrameHeader| {
            if !hdr.stream_id.is_connection() {
                Err(DecodeFrameError::InvalidStreamId {
                    kind: kind_byte,
                    stream_id: hdr.stream_id.value(),
                })
            } else {
                Ok(())
            }
        };

        match header.kind {
            FrameKind::Data => {
                require_stream(&header)?;
                let (pad_len, body) = strip_padding(&header, payload)?;
                Ok(Frame::Data(DataFrame {
                    stream_id: header.stream_id,
                    data: Bytes::copy_from_slice(body),
                    end_stream: header.has_flag(flags::END_STREAM),
                    pad_len,
                }))
            }
            FrameKind::Headers => {
                require_stream(&header)?;
                let (pad_len, body) = strip_padding(&header, payload)?;
                let (priority, fragment) = if header.has_flag(flags::PRIORITY) {
                    // Too short for the priority fields the flag promises:
                    // a frame size error (RFC 7540 §4.2), not a truncation.
                    if body.len() < 5 {
                        return Err(DecodeFrameError::InvalidLength {
                            kind: kind_byte,
                            length: header.length,
                        });
                    }
                    let spec = PrioritySpec::decode(body)?;
                    (Some(spec), &body[5..])
                } else {
                    (None, body)
                };
                Ok(Frame::Headers(HeadersFrame {
                    stream_id: header.stream_id,
                    fragment: Bytes::copy_from_slice(fragment),
                    end_stream: header.has_flag(flags::END_STREAM),
                    end_headers: header.has_flag(flags::END_HEADERS),
                    priority,
                    pad_len,
                }))
            }
            FrameKind::Priority => {
                require_stream(&header)?;
                if header.length != 5 {
                    return Err(DecodeFrameError::InvalidLength {
                        kind: kind_byte,
                        length: header.length,
                    });
                }
                Ok(Frame::Priority(PriorityFrame {
                    stream_id: header.stream_id,
                    spec: PrioritySpec::decode(payload)?,
                }))
            }
            FrameKind::RstStream => {
                require_stream(&header)?;
                if header.length != 4 {
                    return Err(DecodeFrameError::InvalidLength {
                        kind: kind_byte,
                        length: header.length,
                    });
                }
                let code = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
                Ok(Frame::RstStream(RstStreamFrame {
                    stream_id: header.stream_id,
                    code: ErrorCode::from(code),
                }))
            }
            FrameKind::Settings => {
                require_connection(&header)?;
                let ack = header.has_flag(flags::ACK);
                if ack && header.length != 0 {
                    return Err(DecodeFrameError::SettingsAckWithPayload);
                }
                let settings = Settings::decode(payload)?;
                Ok(Frame::Settings(SettingsFrame { ack, settings }))
            }
            FrameKind::PushPromise => {
                require_stream(&header)?;
                let (pad_len, body) = strip_padding(&header, payload)?;
                // Too short for the promised stream id: a frame size
                // error (RFC 7540 §4.2), not a truncation.
                if body.len() < 4 {
                    return Err(DecodeFrameError::InvalidLength {
                        kind: kind_byte,
                        length: header.length,
                    });
                }
                let promised = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
                Ok(Frame::PushPromise(PushPromiseFrame {
                    stream_id: header.stream_id,
                    promised_stream_id: StreamId::new(promised),
                    fragment: Bytes::copy_from_slice(&body[4..]),
                    end_headers: header.has_flag(flags::END_HEADERS),
                    pad_len,
                }))
            }
            FrameKind::Ping => {
                require_connection(&header)?;
                if header.length != 8 {
                    return Err(DecodeFrameError::InvalidLength {
                        kind: kind_byte,
                        length: header.length,
                    });
                }
                let mut buf = [0u8; 8];
                buf.copy_from_slice(payload);
                Ok(Frame::Ping(PingFrame {
                    ack: header.has_flag(flags::ACK),
                    payload: buf,
                }))
            }
            FrameKind::Goaway => {
                require_connection(&header)?;
                if header.length < 8 {
                    return Err(DecodeFrameError::InvalidLength {
                        kind: kind_byte,
                        length: header.length,
                    });
                }
                let last = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
                let code = u32::from_be_bytes([payload[4], payload[5], payload[6], payload[7]]);
                Ok(Frame::Goaway(GoawayFrame {
                    last_stream_id: StreamId::new(last),
                    code: ErrorCode::from(code),
                    debug_data: Bytes::copy_from_slice(&payload[8..]),
                }))
            }
            FrameKind::WindowUpdate => {
                if header.length != 4 {
                    return Err(DecodeFrameError::InvalidLength {
                        kind: kind_byte,
                        length: header.length,
                    });
                }
                let raw = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
                // Masking here is RFC-correct: §6.9 reserves the top bit
                // and receivers MUST ignore it. (Zero increments decode
                // fine too — a strict endpoint rejects them via
                // `FrameDecoder::reject_zero_window_update`.)
                Ok(Frame::WindowUpdate(WindowUpdateFrame {
                    stream_id: header.stream_id,
                    increment: raw & 0x7fff_ffff,
                }))
            }
            FrameKind::Continuation => {
                require_stream(&header)?;
                Ok(Frame::Continuation(ContinuationFrame {
                    stream_id: header.stream_id,
                    fragment: Bytes::copy_from_slice(payload),
                    end_headers: header.has_flag(flags::END_HEADERS),
                }))
            }
            FrameKind::Unknown(kind) => Ok(Frame::Unknown(UnknownFrame {
                kind,
                flags: header.flags,
                stream_id: header.stream_id,
                payload: Bytes::copy_from_slice(payload),
            })),
        }
    }
}

/// Strips the pad-length octet and trailing padding when PADDED is set.
fn strip_padding<'a>(
    header: &FrameHeader,
    payload: &'a [u8],
) -> Result<(Option<u8>, &'a [u8]), DecodeFrameError> {
    if !header.has_flag(flags::PADDED) {
        return Ok((None, payload));
    }
    let (&pad, rest) = payload.split_first().ok_or(DecodeFrameError::Truncated)?;
    if usize::from(pad) > rest.len() {
        return Err(DecodeFrameError::InvalidPadding);
    }
    Ok((Some(pad), &rest[..rest.len() - usize::from(pad)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_one;

    fn round_trip(frame: Frame) -> Frame {
        let bytes = frame.to_bytes();
        let (decoded, consumed) = decode_one(&bytes, crate::settings::MAX_MAX_FRAME_SIZE)
            .expect("decodable")
            .expect("complete");
        assert_eq!(consumed, bytes.len());
        decoded
    }

    #[test]
    fn data_round_trip_with_padding() {
        let frame = Frame::Data(DataFrame {
            stream_id: StreamId::new(3),
            data: Bytes::from_static(b"hello world"),
            end_stream: true,
            pad_len: Some(7),
        });
        assert_eq!(round_trip(frame.clone()), frame);
        if let Frame::Data(d) = &frame {
            assert_eq!(d.flow_controlled_len(), 11 + 7 + 1);
        }
    }

    #[test]
    fn headers_round_trip_with_priority() {
        let frame = Frame::Headers(HeadersFrame {
            stream_id: StreamId::new(5),
            fragment: Bytes::from_static(&[0x82, 0x86]),
            end_stream: false,
            end_headers: true,
            priority: Some(PrioritySpec {
                exclusive: true,
                dependency: StreamId::new(3),
                weight: 256,
            }),
            pad_len: None,
        });
        assert_eq!(round_trip(frame.clone()), frame);
    }

    #[test]
    fn priority_frame_round_trip() {
        let frame = Frame::Priority(PriorityFrame {
            stream_id: StreamId::new(7),
            spec: PrioritySpec {
                exclusive: false,
                dependency: StreamId::new(5),
                weight: 1,
            },
        });
        assert_eq!(round_trip(frame.clone()), frame);
    }

    #[test]
    fn rst_settings_ping_goaway_window_update_round_trip() {
        for frame in [
            Frame::RstStream(RstStreamFrame {
                stream_id: StreamId::new(9),
                code: ErrorCode::Cancel,
            }),
            Frame::Settings(SettingsFrame::from(
                Settings::new().with(crate::settings::SettingId::MaxConcurrentStreams, 100),
            )),
            Frame::Settings(SettingsFrame::ack()),
            Frame::Ping(PingFrame::request(*b"abcdefgh")),
            Frame::Goaway(GoawayFrame {
                last_stream_id: StreamId::new(41),
                code: ErrorCode::EnhanceYourCalm,
                debug_data: Bytes::from_static(b"window update shouldn't be zero"),
            }),
            Frame::WindowUpdate(WindowUpdateFrame {
                stream_id: StreamId::CONNECTION,
                increment: (1 << 31) - 1,
            }),
        ] {
            assert_eq!(round_trip(frame.clone()), frame);
        }
    }

    #[test]
    fn push_promise_round_trip() {
        let frame = Frame::PushPromise(PushPromiseFrame {
            stream_id: StreamId::new(1),
            promised_stream_id: StreamId::new(2),
            fragment: Bytes::from_static(&[0x82]),
            end_headers: true,
            pad_len: Some(3),
        });
        assert_eq!(round_trip(frame.clone()), frame);
    }

    #[test]
    fn continuation_round_trip() {
        let frame = Frame::Continuation(ContinuationFrame {
            stream_id: StreamId::new(11),
            fragment: Bytes::from_static(&[1, 2, 3]),
            end_headers: true,
        });
        assert_eq!(round_trip(frame.clone()), frame);
    }

    #[test]
    fn unknown_frame_round_trip() {
        let frame = Frame::Unknown(UnknownFrame {
            kind: 0xfa,
            flags: 0x55,
            stream_id: StreamId::new(13),
            payload: Bytes::from_static(b"ext"),
        });
        assert_eq!(round_trip(frame.clone()), frame);
    }

    #[test]
    fn zero_window_update_is_representable() {
        // The paper sends zero increments on purpose (§III-B3); the codec
        // must carry them so the *endpoint* can classify the violation.
        let frame = Frame::WindowUpdate(WindowUpdateFrame {
            stream_id: StreamId::new(1),
            increment: 0,
        });
        assert_eq!(round_trip(frame.clone()), frame);
    }

    #[test]
    fn checked_window_update_rejects_out_of_range_increments() {
        assert_eq!(
            WindowUpdateFrame::checked(StreamId::new(1), 0),
            Err(IncrementOutOfRange { increment: 0 })
        );
        assert_eq!(
            WindowUpdateFrame::checked(StreamId::CONNECTION, MAX_WINDOW_INCREMENT + 1),
            Err(IncrementOutOfRange {
                increment: MAX_WINDOW_INCREMENT + 1
            })
        );
        assert_eq!(
            WindowUpdateFrame::checked(StreamId::CONNECTION, u32::MAX)
                .unwrap_err()
                .to_string(),
            format!("window update increment {} outside 1..=2^31-1", u32::MAX)
        );
        let ok = WindowUpdateFrame::checked(StreamId::new(3), MAX_WINDOW_INCREMENT).unwrap();
        assert_eq!(ok.increment, MAX_WINDOW_INCREMENT);
        assert_eq!(round_trip(Frame::WindowUpdate(ok)), Frame::WindowUpdate(ok));
    }

    #[test]
    #[should_panic(expected = "exceeds 2^31-1")]
    fn encode_refuses_to_mask_an_oversized_increment() {
        // Regression: encode used to apply `& 0x7fff_ffff`, silently
        // turning e.g. 2^31 into 0 on the wire. It must refuse instead.
        let frame = Frame::WindowUpdate(WindowUpdateFrame {
            stream_id: StreamId::new(1),
            increment: 1 << 31,
        });
        let mut out = Vec::new();
        frame.encode(&mut out);
    }

    #[test]
    fn decode_ignores_the_reserved_increment_bit() {
        // §6.9: the top bit is reserved; receivers MUST ignore it rather
        // than reject the frame.
        let legal = Frame::WindowUpdate(WindowUpdateFrame {
            stream_id: StreamId::new(5),
            increment: 7,
        });
        let mut bytes = legal.to_bytes();
        let payload_start = bytes.len() - 4;
        bytes[payload_start] |= 0x80;
        let header = FrameHeader::decode(&bytes).unwrap();
        let decoded = Frame::decode(header, &bytes[crate::header::FRAME_HEADER_LEN..]).unwrap();
        assert_eq!(decoded, legal);
    }

    #[test]
    fn ping_with_wrong_length_is_rejected() {
        let mut bytes = Frame::Ping(PingFrame::request([0; 8])).to_bytes();
        bytes[2] = 7; // shrink declared length
        bytes.truncate(9 + 7);
        let err = decode_one(&bytes, 16_384).unwrap_err();
        assert!(matches!(
            err,
            DecodeFrameError::InvalidLength {
                kind: 0x6,
                length: 7
            }
        ));
    }

    #[test]
    fn data_on_stream_zero_is_rejected() {
        let frame = Frame::Data(DataFrame {
            stream_id: StreamId::new(1),
            data: Bytes::from_static(b"x"),
            end_stream: false,
            pad_len: None,
        });
        let mut bytes = frame.to_bytes();
        bytes[5..9].copy_from_slice(&0u32.to_be_bytes()); // rewrite stream id to 0
        let err = decode_one(&bytes, 16_384).unwrap_err();
        assert!(matches!(
            err,
            DecodeFrameError::InvalidStreamId {
                kind: 0x0,
                stream_id: 0
            }
        ));
    }

    #[test]
    fn settings_on_nonzero_stream_is_rejected() {
        let mut bytes = Frame::Settings(SettingsFrame::ack()).to_bytes();
        bytes[5..9].copy_from_slice(&3u32.to_be_bytes());
        let err = decode_one(&bytes, 16_384).unwrap_err();
        assert!(matches!(
            err,
            DecodeFrameError::InvalidStreamId {
                kind: 0x4,
                stream_id: 3
            }
        ));
    }

    #[test]
    fn padding_overrun_is_rejected() {
        let frame = Frame::Data(DataFrame {
            stream_id: StreamId::new(1),
            data: Bytes::from_static(b"ab"),
            end_stream: false,
            pad_len: Some(2),
        });
        let mut bytes = frame.to_bytes();
        // Payload is [pad=2, 'a', 'b', 0, 0]; claim more padding than exists.
        bytes[9] = 200;
        let err = decode_one(&bytes, 16_384).unwrap_err();
        assert_eq!(err, DecodeFrameError::InvalidPadding);
    }

    #[test]
    fn settings_ack_with_payload_is_rejected() {
        let mut bytes = Frame::Settings(SettingsFrame::from(
            Settings::new().with(crate::settings::SettingId::EnablePush, 1),
        ))
        .to_bytes();
        bytes[4] |= flags::ACK;
        let err = decode_one(&bytes, 16_384).unwrap_err();
        assert_eq!(err, DecodeFrameError::SettingsAckWithPayload);
    }

    #[test]
    fn weight_encodes_as_value_minus_one() {
        let frame = Frame::Priority(PriorityFrame {
            stream_id: StreamId::new(3),
            spec: PrioritySpec {
                exclusive: false,
                dependency: StreamId::CONNECTION,
                weight: 1,
            },
        });
        let bytes = frame.to_bytes();
        assert_eq!(bytes[9 + 4], 0); // weight 1 -> wire 0
    }
}
