//! The 9-octet frame header (RFC 7540 §4.1) and per-type flag bits.

// h2check: allow-file(index) — dense wire codec; lengths verified before fixed-offset reads

use crate::error::DecodeFrameError;
use crate::stream_id::StreamId;

/// Number of octets in every frame header.
pub const FRAME_HEADER_LEN: usize = 9;

/// The ten frame types defined by RFC 7540 §6, plus a catch-all for
/// extension frames, which receivers must ignore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Carries request/response bodies; the only flow-controlled type (0x0).
    Data,
    /// Opens a stream and carries a header block fragment (0x1).
    Headers,
    /// Re-prioritizes a stream (0x2).
    Priority,
    /// Terminates a single stream (0x3).
    RstStream,
    /// Conveys configuration parameters (0x4).
    Settings,
    /// Announces a server-initiated stream (0x5).
    PushPromise,
    /// Round-trip measurement and liveness check (0x6).
    Ping,
    /// Initiates connection shutdown (0x7).
    Goaway,
    /// Increments a flow-control window (0x8).
    WindowUpdate,
    /// Continues a header block fragment (0x9).
    Continuation,
    /// An extension frame type unknown to RFC 7540.
    Unknown(u8),
}

impl FrameKind {
    /// The wire byte for this frame type.
    pub fn to_u8(self) -> u8 {
        match self {
            FrameKind::Data => 0x0,
            FrameKind::Headers => 0x1,
            FrameKind::Priority => 0x2,
            FrameKind::RstStream => 0x3,
            FrameKind::Settings => 0x4,
            FrameKind::PushPromise => 0x5,
            FrameKind::Ping => 0x6,
            FrameKind::Goaway => 0x7,
            FrameKind::WindowUpdate => 0x8,
            FrameKind::Continuation => 0x9,
            FrameKind::Unknown(v) => v,
        }
    }
}

impl From<u8> for FrameKind {
    fn from(v: u8) -> Self {
        match v {
            0x0 => FrameKind::Data,
            0x1 => FrameKind::Headers,
            0x2 => FrameKind::Priority,
            0x3 => FrameKind::RstStream,
            0x4 => FrameKind::Settings,
            0x5 => FrameKind::PushPromise,
            0x6 => FrameKind::Ping,
            0x7 => FrameKind::Goaway,
            0x8 => FrameKind::WindowUpdate,
            0x9 => FrameKind::Continuation,
            other => FrameKind::Unknown(other),
        }
    }
}

/// Flag bits used across frame types (RFC 7540 §6).
pub mod flags {
    /// DATA / HEADERS: no further frames on this stream from the sender.
    pub const END_STREAM: u8 = 0x1;
    /// SETTINGS / PING: acknowledgement.
    pub const ACK: u8 = 0x1;
    /// HEADERS / PUSH_PROMISE / CONTINUATION: header block complete.
    pub const END_HEADERS: u8 = 0x4;
    /// DATA / HEADERS / PUSH_PROMISE: payload is padded.
    pub const PADDED: u8 = 0x8;
    /// HEADERS: priority fields are present.
    pub const PRIORITY: u8 = 0x20;
}

/// A decoded 9-octet frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length (24-bit on the wire).
    pub length: u32,
    /// Frame type.
    pub kind: FrameKind,
    /// Raw flag bits.
    pub flags: u8,
    /// Stream identifier (reserved bit masked).
    pub stream_id: StreamId,
}

impl FrameHeader {
    /// Parses a frame header from exactly [`FRAME_HEADER_LEN`] octets.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeFrameError::Truncated`] when fewer than nine octets
    /// are supplied.
    pub fn decode(buf: &[u8]) -> Result<FrameHeader, DecodeFrameError> {
        if buf.len() < FRAME_HEADER_LEN {
            return Err(DecodeFrameError::Truncated);
        }
        let length = u32::from(buf[0]) << 16 | u32::from(buf[1]) << 8 | u32::from(buf[2]);
        let kind = FrameKind::from(buf[3]);
        let flags = buf[4];
        let raw_id = u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]);
        Ok(FrameHeader {
            length,
            kind,
            flags,
            stream_id: StreamId::new(raw_id),
        })
    }

    /// Serializes this header into nine octets.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let at = out.len();
        out.resize(at + FRAME_HEADER_LEN, 0);
        self.write_to(&mut out[at..]);
    }

    /// Writes the nine header octets into the front of `buf`.
    ///
    /// This exists for the copy-free frame encoder, which reserves the
    /// header slot, streams the payload directly after it, and only then
    /// knows the length to patch in.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`FRAME_HEADER_LEN`].
    pub fn write_to(&self, buf: &mut [u8]) {
        buf[0] = (self.length >> 16) as u8;
        buf[1] = (self.length >> 8) as u8;
        buf[2] = self.length as u8;
        buf[3] = self.kind.to_u8();
        buf[4] = self.flags;
        buf[5..FRAME_HEADER_LEN].copy_from_slice(&self.stream_id.value().to_be_bytes());
    }

    /// `true` when the given flag bit is set.
    pub fn has_flag(&self, flag: u8) -> bool {
        self.flags & flag != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_kind_round_trips() {
        for v in 0u8..=12 {
            assert_eq!(FrameKind::from(v).to_u8(), v);
        }
    }

    #[test]
    fn header_round_trips() {
        let hdr = FrameHeader {
            length: 0x01_02_03,
            kind: FrameKind::Headers,
            flags: flags::END_HEADERS | flags::PRIORITY,
            stream_id: StreamId::new(77),
        };
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), FRAME_HEADER_LEN);
        assert_eq!(FrameHeader::decode(&buf).unwrap(), hdr);
    }

    #[test]
    fn decode_rejects_short_input() {
        assert_eq!(
            FrameHeader::decode(&[0; 8]),
            Err(DecodeFrameError::Truncated)
        );
    }

    #[test]
    fn reserved_stream_bit_is_ignored_on_decode() {
        let mut buf = Vec::new();
        FrameHeader {
            length: 0,
            kind: FrameKind::Ping,
            flags: 0,
            stream_id: StreamId::CONNECTION,
        }
        .encode(&mut buf);
        buf[5] |= 0x80; // set the reserved bit
        let hdr = FrameHeader::decode(&buf).unwrap();
        assert_eq!(hdr.stream_id, StreamId::CONNECTION);
    }
}
