//! Streaming frame codec: turns a byte stream into frames and back.

// h2check: allow-file(index) — dense wire codec; lengths verified before fixed-offset reads

use bytes::Bytes;

use crate::error::DecodeFrameError;
use crate::frame::Frame;
use crate::header::{FrameHeader, FRAME_HEADER_LEN};

/// Attempts to decode a single frame from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, or `Ok(Some((frame,
/// consumed)))` on success.
///
/// # Errors
///
/// Propagates structural violations from [`Frame::decode`], and rejects
/// frames whose declared payload length exceeds `max_frame_size` before
/// buffering the payload (RFC 7540 §4.2).
pub fn decode_one(
    buf: &[u8],
    max_frame_size: u32,
) -> Result<Option<(Frame, usize)>, DecodeFrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let header = FrameHeader::decode(buf)?;
    if header.length > max_frame_size {
        return Err(DecodeFrameError::FrameTooLarge {
            length: header.length,
            max: max_frame_size,
        });
    }
    let total = FRAME_HEADER_LEN + header.length as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let frame = Frame::decode(header, &buf[FRAME_HEADER_LEN..total])?;
    Ok(Some((frame, total)))
}

/// A stateful decoder that accumulates bytes and yields complete frames.
///
/// This is the receive half every endpoint in the workspace uses; it
/// enforces the receiver's `SETTINGS_MAX_FRAME_SIZE`.
#[derive(Debug, Clone)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`: bytes before it are already-consumed frame
    /// data, compacted away on the next [`FrameDecoder::feed`] rather than
    /// memmoved on every decoded frame.
    pos: usize,
    max_frame_size: u32,
    reject_zero_window_update: bool,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// Creates a decoder with the protocol-default max frame size (16,384).
    pub fn new() -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame_size: crate::settings::DEFAULT_MAX_FRAME_SIZE,
            reject_zero_window_update: false,
        }
    }

    /// Opts in to strict RFC 7540 §6.9 handling: a WINDOW_UPDATE whose
    /// increment is zero becomes a decode error
    /// ([`DecodeFrameError::InvalidWindowIncrement`], surfacing
    /// PROTOCOL_ERROR) instead of a decoded frame.
    ///
    /// This is off by default on purpose: the paper's §III-B3 probe *sends*
    /// zero increments to classify server reactions, so the testbed's
    /// simulated servers must receive them as frames and decide for
    /// themselves. A conforming endpoint that wants the codec to enforce
    /// the rule flips this on.
    pub fn set_reject_zero_window_update(&mut self, strict: bool) {
        self.reject_zero_window_update = strict;
    }

    /// Adjusts the maximum frame size this decoder will accept, typically
    /// after announcing a new `SETTINGS_MAX_FRAME_SIZE`.
    pub fn set_max_frame_size(&mut self, max: u32) {
        self.max_frame_size = max;
    }

    /// The limit currently enforced.
    pub fn max_frame_size(&self) -> u32 {
        self.max_frame_size
    }

    /// Appends raw bytes received from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact once per segment (not once per frame): consumed bytes at
        // the front are dropped before new ones are appended, so the buffer
        // stays bounded by one segment plus one partial frame.
        if self.pos > 0 {
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(self.buf.len() - self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if any.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation encountered; after an error
    /// the decoder's buffer is cleared because RFC 7540 treats most framing
    /// errors as connection errors.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeFrameError> {
        match decode_one(&self.buf[self.pos..], self.max_frame_size) {
            Ok(Some((frame, consumed))) => {
                if self.reject_zero_window_update {
                    if let Frame::WindowUpdate(wu) = &frame {
                        if wu.increment == 0 {
                            self.buf.clear();
                            self.pos = 0;
                            return Err(DecodeFrameError::InvalidWindowIncrement);
                        }
                    }
                }
                self.pos += consumed;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                }
                Ok(Some(frame))
            }
            Ok(None) => Ok(None),
            Err(err) => {
                self.buf.clear();
                self.pos = 0;
                Err(err)
            }
        }
    }

    /// Streaming decode that borrows from `input` instead of buffering it.
    ///
    /// Complete frames at the front of `input` are decoded in place —
    /// `input` is advanced past each one — so fully-framed segments (the
    /// overwhelmingly common case on this workspace's simulated
    /// transport, which never splits an endpoint's output batch) cost no
    /// copy into the decoder at all. Only a trailing partial frame is
    /// copied into the internal buffer; it completes on a later call.
    /// `Ok(None)` means `input` is exhausted.
    ///
    /// # Errors
    ///
    /// Same contract as [`FrameDecoder::next_frame`]: the first
    /// structural violation is returned and all buffered *and* remaining
    /// `input` bytes are discarded (framing errors are connection
    /// errors).
    pub fn next_frame_in(&mut self, input: &mut &[u8]) -> Result<Option<Frame>, DecodeFrameError> {
        if self.buffered_len() > 0 {
            // A partial frame is already buffered: complete it the
            // buffered way. Rare, so the copy is acceptable.
            if !input.is_empty() {
                self.feed(input);
                *input = &[];
            }
            return self.next_frame();
        }
        match decode_one(input, self.max_frame_size) {
            Ok(Some((frame, consumed))) => {
                if self.reject_zero_window_update {
                    if let Frame::WindowUpdate(wu) = &frame {
                        if wu.increment == 0 {
                            *input = &[];
                            return Err(DecodeFrameError::InvalidWindowIncrement);
                        }
                    }
                }
                *input = &input[consumed..];
                Ok(Some(frame))
            }
            Ok(None) => {
                if !input.is_empty() {
                    self.feed(input);
                    *input = &[];
                }
                Ok(None)
            }
            Err(err) => {
                *input = &[];
                Err(err)
            }
        }
    }

    /// Streaming decode over a shared, refcounted segment.
    ///
    /// Like [`FrameDecoder::next_frame_in`], but because `input` is a
    /// [`Bytes`] view the decoder can hand DATA frames a zero-copy slice
    /// of the segment ([`Frame::decode_shared`]) instead of copying each
    /// payload out. On a bulk download this removes the last per-frame
    /// copy on the receive side: the segment arrives once and every DATA
    /// body is a refcount bump into it. `input` is advanced past each
    /// decoded frame; a trailing partial frame is copied into the
    /// internal buffer and completes on a later call. `Ok(None)` means
    /// `input` is exhausted.
    ///
    /// # Errors
    ///
    /// Same contract as [`FrameDecoder::next_frame`]: the first
    /// structural violation is returned and all buffered *and* remaining
    /// `input` bytes are discarded (framing errors are connection
    /// errors).
    pub fn next_frame_shared(
        &mut self,
        input: &mut Bytes,
    ) -> Result<Option<Frame>, DecodeFrameError> {
        if self.buffered_len() > 0 {
            // A partial frame is already buffered: complete it the
            // buffered way. Rare, so the copy is acceptable.
            if !input.is_empty() {
                self.feed(input);
                *input = Bytes::new();
            }
            return self.next_frame();
        }
        let buf: &[u8] = input.as_ref();
        if buf.len() < FRAME_HEADER_LEN {
            if !buf.is_empty() {
                self.feed(buf);
                *input = Bytes::new();
            }
            return Ok(None);
        }
        let header = match FrameHeader::decode(buf) {
            Ok(header) => header,
            Err(err) => {
                *input = Bytes::new();
                return Err(err);
            }
        };
        if header.length > self.max_frame_size {
            *input = Bytes::new();
            return Err(DecodeFrameError::FrameTooLarge {
                length: header.length,
                max: self.max_frame_size,
            });
        }
        let total = FRAME_HEADER_LEN + header.length as usize;
        if buf.len() < total {
            self.feed(buf);
            *input = Bytes::new();
            return Ok(None);
        }
        match Frame::decode_shared(header, input.slice(FRAME_HEADER_LEN..total)) {
            Ok(frame) => {
                if self.reject_zero_window_update {
                    if let Frame::WindowUpdate(wu) = &frame {
                        if wu.increment == 0 {
                            *input = Bytes::new();
                            return Err(DecodeFrameError::InvalidWindowIncrement);
                        }
                    }
                }
                *input = input.slice(total..);
                Ok(Some(frame))
            }
            Err(err) => {
                *input = Bytes::new();
                Err(err)
            }
        }
    }

    /// Drains every complete frame currently buffered.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first structural violation.
    pub fn drain_frames(&mut self) -> Result<Vec<Frame>, DecodeFrameError> {
        let mut frames = Vec::new();
        while let Some(frame) = self.next_frame()? {
            frames.push(frame);
        }
        Ok(frames)
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Encodes a sequence of frames onto the end of `out` (which is *not*
/// cleared first), so hot paths can reuse one scratch buffer instead of
/// allocating per batch.
pub fn encode_all_into<'a, I>(frames: I, out: &mut Vec<u8>)
where
    I: IntoIterator<Item = &'a Frame>,
{
    for frame in frames {
        frame.encode(out);
    }
}

/// Encodes a sequence of frames into one freshly allocated buffer.
pub fn encode_all<'a, I>(frames: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a Frame>,
{
    let mut out = Vec::new();
    encode_all_into(frames, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{DataFrame, PingFrame};
    use crate::stream_id::StreamId;
    use bytes::Bytes;

    #[test]
    fn incremental_feed_yields_frame_only_when_complete() {
        let frame = Frame::Ping(PingFrame::request(*b"12345678"));
        let bytes = frame.to_bytes();
        let mut dec = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            assert_eq!(dec.next_frame().unwrap(), None, "byte {i}");
            dec.feed(&[*b]);
        }
        assert_eq!(dec.next_frame().unwrap(), Some(frame));
        assert_eq!(dec.buffered_len(), 0);
    }

    #[test]
    fn drain_frames_returns_all_buffered() {
        let frames = vec![
            Frame::Ping(PingFrame::request([1; 8])),
            Frame::Data(DataFrame {
                stream_id: StreamId::new(1),
                data: Bytes::from_static(b"abc"),
                end_stream: true,
                pad_len: None,
            }),
        ];
        let mut dec = FrameDecoder::new();
        dec.feed(&encode_all(&frames));
        assert_eq!(dec.drain_frames().unwrap(), frames);
    }

    #[test]
    fn oversized_frame_is_rejected_from_header_alone() {
        let mut dec = FrameDecoder::new();
        dec.set_max_frame_size(16);
        // Header declaring a 17-byte DATA payload on stream 1.
        dec.feed(&[0, 0, 17, 0, 0, 0, 0, 0, 1]);
        let err = dec.next_frame().unwrap_err();
        assert_eq!(
            err,
            DecodeFrameError::FrameTooLarge {
                length: 17,
                max: 16
            }
        );
    }

    #[test]
    fn strict_decoder_rejects_zero_window_update() {
        use crate::frame::WindowUpdateFrame;
        let zero = Frame::WindowUpdate(WindowUpdateFrame {
            stream_id: StreamId::new(1),
            increment: 0,
        });
        // Default (probe-friendly) mode: the frame decodes.
        let mut dec = FrameDecoder::new();
        dec.feed(&zero.to_bytes());
        assert_eq!(dec.next_frame().unwrap(), Some(zero.clone()));
        // Strict mode: PROTOCOL_ERROR per RFC 7540 §6.9, buffer flushed.
        let mut dec = FrameDecoder::new();
        dec.set_reject_zero_window_update(true);
        dec.feed(&zero.to_bytes());
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err, DecodeFrameError::InvalidWindowIncrement);
        assert_eq!(err.h2_error_code(), crate::error::ErrorCode::ProtocolError);
        assert_eq!(dec.buffered_len(), 0);
        // Nonzero increments still pass in strict mode.
        let one = Frame::WindowUpdate(WindowUpdateFrame {
            stream_id: StreamId::new(1),
            increment: 1,
        });
        let mut dec = FrameDecoder::new();
        dec.set_reject_zero_window_update(true);
        dec.feed(&one.to_bytes());
        assert_eq!(dec.next_frame().unwrap(), Some(one));
    }

    #[test]
    fn shared_decode_matches_slice_decode_and_borrows_data_payloads() {
        let frames = vec![
            Frame::Ping(PingFrame::request([9; 8])),
            Frame::Data(DataFrame {
                stream_id: StreamId::new(3),
                data: Bytes::from(vec![0x5a; 4096]),
                end_stream: false,
                pad_len: None,
            }),
            Frame::Data(DataFrame {
                stream_id: StreamId::new(3),
                data: Bytes::from(vec![0xa5; 100]),
                end_stream: true,
                pad_len: Some(7),
            }),
        ];
        let segment = Bytes::from(encode_all(&frames));
        let base = segment.as_ref().as_ptr() as usize;
        let end = base + segment.len();

        let mut dec = FrameDecoder::new();
        let mut input = segment;
        let mut decoded = Vec::new();
        while let Some(frame) = dec.next_frame_shared(&mut input).unwrap() {
            decoded.push(frame);
        }
        assert_eq!(decoded, frames);
        assert_eq!(dec.buffered_len(), 0);
        // Every DATA payload is a view into the original segment, not a
        // copy of it.
        for frame in &decoded {
            if let Frame::Data(d) = frame {
                let p = d.data.as_ref().as_ptr() as usize;
                assert!(base <= p && p < end, "payload borrowed from segment");
            }
        }
    }

    #[test]
    fn shared_decode_buffers_a_partial_tail_across_segments() {
        let frame = Frame::Data(DataFrame {
            stream_id: StreamId::new(1),
            data: Bytes::from(vec![0xcc; 300]),
            end_stream: true,
            pad_len: None,
        });
        let wire = frame.to_bytes();
        let (head, tail) = wire.split_at(100);

        let mut dec = FrameDecoder::new();
        let mut first = Bytes::from(head.to_vec());
        assert_eq!(dec.next_frame_shared(&mut first).unwrap(), None);
        assert!(first.is_empty(), "partial input fully consumed");
        assert_eq!(dec.buffered_len(), 100);

        let mut second = Bytes::from(tail.to_vec());
        assert_eq!(dec.next_frame_shared(&mut second).unwrap(), Some(frame));
        assert_eq!(dec.buffered_len(), 0);
    }

    #[test]
    fn shared_decode_rejects_oversized_frames_and_clears_input() {
        let mut dec = FrameDecoder::new();
        dec.set_max_frame_size(16);
        let mut input = Bytes::from(vec![0, 0, 17, 0, 0, 0, 0, 0, 1]);
        let err = dec.next_frame_shared(&mut input).unwrap_err();
        assert_eq!(
            err,
            DecodeFrameError::FrameTooLarge {
                length: 17,
                max: 16
            }
        );
        assert!(input.is_empty(), "remaining input discarded on error");
    }

    #[test]
    fn larger_max_frame_size_admits_large_frames() {
        let data = vec![0xab; 20_000];
        let frame = Frame::Data(DataFrame {
            stream_id: StreamId::new(1),
            data: Bytes::from(data),
            end_stream: false,
            pad_len: None,
        });
        let mut dec = FrameDecoder::new();
        dec.feed(&frame.to_bytes());
        assert!(dec.next_frame().is_err() || dec.buffered_len() == 0);

        let mut dec = FrameDecoder::new();
        dec.set_max_frame_size(1 << 15);
        dec.feed(&frame.to_bytes());
        assert_eq!(dec.next_frame().unwrap(), Some(frame));
    }
}
