//! # h2wire — RFC 7540 binary framing layer
//!
//! This crate implements the HTTP/2 wire format from scratch: the 9-octet
//! frame header, all ten frame types with their flags and padding rules,
//! the SETTINGS parameter space, error codes, and a streaming
//! [`FrameDecoder`].
//!
//! It deliberately allows *constructing* protocol-violating frames (zero
//! window updates, self-dependent priorities) because the H2Scope probes in
//! this workspace exist to send exactly those frames and observe how
//! servers react — the paper's core methodology. Violations are rejected on
//! the *decode* path, where a conforming endpoint must detect them. The one
//! exception is a WINDOW_UPDATE increment above 2^31-1: the 31-bit wire
//! field cannot carry it, so encoding refuses (no silent masking) and
//! [`frame::WindowUpdateFrame::checked`] is the fallible construction path.
//!
//! ```
//! use h2wire::{Frame, frame::PingFrame, FrameDecoder};
//!
//! # fn main() -> Result<(), h2wire::DecodeFrameError> {
//! let ping = Frame::Ping(PingFrame::request(*b"RTTprobe"));
//! let mut decoder = FrameDecoder::new();
//! decoder.feed(&ping.to_bytes());
//! assert_eq!(decoder.next_frame()?, Some(ping));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod frame;
pub mod header;
pub mod settings;
pub mod stream_id;

pub use codec::{decode_one, encode_all, encode_all_into, FrameDecoder};
pub use error::{DecodeFrameError, ErrorCode};
pub use frame::{
    ContinuationFrame, DataFrame, Frame, GoawayFrame, HeadersFrame, IncrementOutOfRange, PingFrame,
    PriorityFrame, PrioritySpec, PushPromiseFrame, RstStreamFrame, SettingsFrame, UnknownFrame,
    WindowUpdateFrame, MAX_WINDOW_INCREMENT,
};
pub use header::{FrameHeader, FrameKind, FRAME_HEADER_LEN};
pub use settings::{SettingId, Settings};
pub use stream_id::StreamId;

/// The client connection preface every HTTP/2 connection starts with
/// (RFC 7540 §3.5).
pub const CONNECTION_PREFACE: &[u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preface_is_24_octets() {
        assert_eq!(CONNECTION_PREFACE.len(), 24);
        assert!(CONNECTION_PREFACE.starts_with(b"PRI * HTTP/2.0"));
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Frame>();
        assert_send_sync::<FrameDecoder>();
        assert_send_sync::<Settings>();
        assert_send_sync::<ErrorCode>();
        assert_send_sync::<DecodeFrameError>();
    }
}
