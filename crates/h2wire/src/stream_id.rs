//! Stream identifiers (RFC 7540 §5.1.1).

use std::fmt;

/// A 31-bit HTTP/2 stream identifier.
///
/// Stream 0 addresses the connection as a whole. Client-initiated streams
/// are odd, server-initiated (pushed) streams are even. The most
/// significant bit on the wire is reserved and always transmitted as zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StreamId(u32);

impl StreamId {
    /// The connection control stream (id 0).
    pub const CONNECTION: StreamId = StreamId(0);
    /// Largest legal stream identifier (2^31 - 1).
    pub const MAX: StreamId = StreamId((1 << 31) - 1);

    /// Creates a stream id, masking off the reserved bit.
    pub fn new(id: u32) -> StreamId {
        StreamId(id & 0x7fff_ffff)
    }

    /// Returns the numeric value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// `true` for stream 0, the connection control stream.
    pub fn is_connection(self) -> bool {
        self.0 == 0
    }

    /// `true` when this id can be initiated by a client (odd).
    pub fn is_client_initiated(self) -> bool {
        self.0 % 2 == 1
    }

    /// `true` when this id can be initiated by a server (even, nonzero).
    pub fn is_server_initiated(self) -> bool {
        self.0 != 0 && self.0.is_multiple_of(2)
    }

    /// The next stream id initiated by the same endpoint, if any remain.
    pub fn next_for_same_peer(self) -> Option<StreamId> {
        let next = self.0.checked_add(2)?;
        if next > Self::MAX.0 {
            None
        } else {
            Some(StreamId(next))
        }
    }
}

impl From<u32> for StreamId {
    fn from(v: u32) -> Self {
        StreamId::new(v)
    }
}

impl From<StreamId> for u32 {
    fn from(id: StreamId) -> u32 {
        id.value()
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_bit_is_masked() {
        assert_eq!(StreamId::new(0xffff_ffff), StreamId::MAX);
        assert_eq!(StreamId::new(0x8000_0001).value(), 1);
    }

    #[test]
    fn parity_classification() {
        assert!(StreamId::new(1).is_client_initiated());
        assert!(StreamId::new(2).is_server_initiated());
        assert!(!StreamId::CONNECTION.is_client_initiated());
        assert!(!StreamId::CONNECTION.is_server_initiated());
        assert!(StreamId::CONNECTION.is_connection());
    }

    #[test]
    fn next_for_same_peer_steps_by_two() {
        assert_eq!(
            StreamId::new(1).next_for_same_peer(),
            Some(StreamId::new(3))
        );
        assert_eq!(
            StreamId::new(2).next_for_same_peer(),
            Some(StreamId::new(4))
        );
        assert_eq!(StreamId::MAX.next_for_same_peer(), None);
    }
}
