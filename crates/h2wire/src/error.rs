//! Error codes (RFC 7540 §7) and frame-decoding errors.

use std::error::Error;
use std::fmt;

/// An HTTP/2 error code as carried in `RST_STREAM` and `GOAWAY` frames
/// (RFC 7540 §7).
///
/// Unknown codes are preserved verbatim in [`ErrorCode::Unknown`] because
/// RFC 7540 requires endpoints to treat them as equivalent to
/// [`ErrorCode::InternalError`] without discarding the wire value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorCode {
    /// Graceful shutdown or no error condition (0x0).
    NoError,
    /// Detected an unspecific protocol error (0x1).
    ProtocolError,
    /// Unexpected internal error (0x2).
    InternalError,
    /// Flow-control protocol violated (0x3).
    FlowControlError,
    /// Settings acknowledgement not received in time (0x4).
    SettingsTimeout,
    /// Frame received for a half-closed stream (0x5).
    StreamClosed,
    /// Frame with an invalid size (0x6).
    FrameSizeError,
    /// Stream refused before any application processing (0x7).
    RefusedStream,
    /// Stream no longer needed (0x8).
    Cancel,
    /// Header compression context cannot be maintained (0x9).
    CompressionError,
    /// Connection established in response to a CONNECT was reset (0xa).
    ConnectError,
    /// Peer exhibiting behavior that might generate excessive load (0xb).
    EnhanceYourCalm,
    /// Transport security properties inadequate (0xc).
    InadequateSecurity,
    /// HTTP/1.1 required instead of HTTP/2 (0xd).
    Http11Required,
    /// Any error code not defined by RFC 7540.
    Unknown(u32),
}

impl ErrorCode {
    /// Returns the 32-bit wire representation of this code.
    pub fn to_u32(self) -> u32 {
        match self {
            ErrorCode::NoError => 0x0,
            ErrorCode::ProtocolError => 0x1,
            ErrorCode::InternalError => 0x2,
            ErrorCode::FlowControlError => 0x3,
            ErrorCode::SettingsTimeout => 0x4,
            ErrorCode::StreamClosed => 0x5,
            ErrorCode::FrameSizeError => 0x6,
            ErrorCode::RefusedStream => 0x7,
            ErrorCode::Cancel => 0x8,
            ErrorCode::CompressionError => 0x9,
            ErrorCode::ConnectError => 0xa,
            ErrorCode::EnhanceYourCalm => 0xb,
            ErrorCode::InadequateSecurity => 0xc,
            ErrorCode::Http11Required => 0xd,
            ErrorCode::Unknown(v) => v,
        }
    }
}

impl From<u32> for ErrorCode {
    fn from(v: u32) -> Self {
        match v {
            0x0 => ErrorCode::NoError,
            0x1 => ErrorCode::ProtocolError,
            0x2 => ErrorCode::InternalError,
            0x3 => ErrorCode::FlowControlError,
            0x4 => ErrorCode::SettingsTimeout,
            0x5 => ErrorCode::StreamClosed,
            0x6 => ErrorCode::FrameSizeError,
            0x7 => ErrorCode::RefusedStream,
            0x8 => ErrorCode::Cancel,
            0x9 => ErrorCode::CompressionError,
            0xa => ErrorCode::ConnectError,
            0xb => ErrorCode::EnhanceYourCalm,
            0xc => ErrorCode::InadequateSecurity,
            0xd => ErrorCode::Http11Required,
            other => ErrorCode::Unknown(other),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::NoError => "NO_ERROR",
            ErrorCode::ProtocolError => "PROTOCOL_ERROR",
            ErrorCode::InternalError => "INTERNAL_ERROR",
            ErrorCode::FlowControlError => "FLOW_CONTROL_ERROR",
            ErrorCode::SettingsTimeout => "SETTINGS_TIMEOUT",
            ErrorCode::StreamClosed => "STREAM_CLOSED",
            ErrorCode::FrameSizeError => "FRAME_SIZE_ERROR",
            ErrorCode::RefusedStream => "REFUSED_STREAM",
            ErrorCode::Cancel => "CANCEL",
            ErrorCode::CompressionError => "COMPRESSION_ERROR",
            ErrorCode::ConnectError => "CONNECT_ERROR",
            ErrorCode::EnhanceYourCalm => "ENHANCE_YOUR_CALM",
            ErrorCode::InadequateSecurity => "INADEQUATE_SECURITY",
            ErrorCode::Http11Required => "HTTP_1_1_REQUIRED",
            ErrorCode::Unknown(v) => return write!(f, "UNKNOWN({v:#x})"),
        };
        f.write_str(name)
    }
}

/// An error raised while decoding a frame from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeFrameError {
    /// The payload length in the frame header exceeds the receiver's
    /// advertised `SETTINGS_MAX_FRAME_SIZE`.
    FrameTooLarge {
        /// Length declared in the frame header.
        length: u32,
        /// The limit in force.
        max: u32,
    },
    /// A frame whose payload length is invalid for its type (e.g. a PING
    /// that is not exactly 8 octets).
    InvalidLength {
        /// The frame type as a wire byte.
        kind: u8,
        /// The offending length.
        length: u32,
    },
    /// A frame that requires a stream identifier carried stream 0, or vice
    /// versa.
    InvalidStreamId {
        /// The frame type as a wire byte.
        kind: u8,
        /// The offending stream identifier.
        stream_id: u32,
    },
    /// Padding length equals or exceeds the remaining payload.
    InvalidPadding,
    /// A `WINDOW_UPDATE` carried a reserved bit or otherwise malformed
    /// increment field.
    InvalidWindowIncrement,
    /// A SETTINGS frame with the ACK flag carried a payload.
    SettingsAckWithPayload,
    /// A SETTINGS parameter had an illegal value (RFC 7540 §6.5.2).
    InvalidSettingValue {
        /// The parameter identifier.
        id: u16,
        /// The rejected value.
        value: u32,
    },
    /// Not enough bytes to decode the structure.
    Truncated,
}

impl fmt::Display for DecodeFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeFrameError::FrameTooLarge { length, max } => {
                write!(f, "frame length {length} exceeds max frame size {max}")
            }
            DecodeFrameError::InvalidLength { kind, length } => {
                write!(
                    f,
                    "invalid payload length {length} for frame type {kind:#x}"
                )
            }
            DecodeFrameError::InvalidStreamId { kind, stream_id } => {
                write!(f, "invalid stream id {stream_id} for frame type {kind:#x}")
            }
            DecodeFrameError::InvalidPadding => f.write_str("padding length exceeds payload"),
            DecodeFrameError::InvalidWindowIncrement => {
                f.write_str("malformed window update increment")
            }
            DecodeFrameError::SettingsAckWithPayload => {
                f.write_str("settings ack frame carries a payload")
            }
            DecodeFrameError::InvalidSettingValue { id, value } => {
                write!(f, "invalid value {value} for settings parameter {id:#x}")
            }
            DecodeFrameError::Truncated => f.write_str("unexpected end of frame payload"),
        }
    }
}

impl Error for DecodeFrameError {}

impl DecodeFrameError {
    /// The HTTP/2 error code an endpoint should surface for this decode
    /// failure (RFC 7540 §4.2, §6).
    pub fn h2_error_code(&self) -> ErrorCode {
        match self {
            DecodeFrameError::FrameTooLarge { .. }
            | DecodeFrameError::InvalidLength { .. }
            | DecodeFrameError::SettingsAckWithPayload => ErrorCode::FrameSizeError,
            DecodeFrameError::InvalidSettingValue { id: 0x4, .. } => ErrorCode::FlowControlError,
            _ => ErrorCode::ProtocolError,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_code_round_trips_all_known_codes() {
        for v in 0u32..=0xd {
            let code = ErrorCode::from(v);
            assert_eq!(code.to_u32(), v);
            assert!(!matches!(code, ErrorCode::Unknown(_)));
        }
    }

    #[test]
    fn unknown_error_codes_are_preserved() {
        let code = ErrorCode::from(0xdead_beef);
        assert_eq!(code, ErrorCode::Unknown(0xdead_beef));
        assert_eq!(code.to_u32(), 0xdead_beef);
    }

    #[test]
    fn display_names_match_rfc() {
        assert_eq!(
            ErrorCode::FlowControlError.to_string(),
            "FLOW_CONTROL_ERROR"
        );
        assert_eq!(ErrorCode::EnhanceYourCalm.to_string(), "ENHANCE_YOUR_CALM");
        assert_eq!(ErrorCode::Unknown(0x20).to_string(), "UNKNOWN(0x20)");
    }

    #[test]
    fn decode_error_maps_to_h2_code() {
        let err = DecodeFrameError::FrameTooLarge {
            length: 1 << 20,
            max: 16_384,
        };
        assert_eq!(err.h2_error_code(), ErrorCode::FrameSizeError);
        let err = DecodeFrameError::InvalidSettingValue {
            id: 0x4,
            value: u32::MAX,
        };
        assert_eq!(err.h2_error_code(), ErrorCode::FlowControlError);
        let err = DecodeFrameError::InvalidPadding;
        assert_eq!(err.h2_error_code(), ErrorCode::ProtocolError);
    }
}
