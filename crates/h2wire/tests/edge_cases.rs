//! Edge-case decoding tests beyond the round-trip suites: truncated
//! priority fields, padded HEADERS with priority, oversized extension
//! frames, and reserved-bit handling.

use bytes::Bytes;
use h2wire::settings::MAX_MAX_FRAME_SIZE;
use h2wire::{
    decode_one, DecodeFrameError, Frame, FrameHeader, FrameKind, HeadersFrame, PrioritySpec,
    StreamId, UnknownFrame,
};

#[test]
fn headers_with_priority_flag_but_short_payload_is_a_size_error() {
    // HEADERS with PRIORITY flag requires >= 5 payload octets; the flag
    // promises fields the frame does not carry, so this is a frame size
    // error (RFC 7540 §4.2), not a mere truncation.
    let mut bytes = Vec::new();
    FrameHeader {
        length: 3,
        kind: FrameKind::Headers,
        flags: h2wire::header::flags::PRIORITY | h2wire::header::flags::END_HEADERS,
        stream_id: StreamId::new(1),
    }
    .encode(&mut bytes);
    bytes.extend_from_slice(&[0, 0, 0]);
    assert_eq!(
        decode_one(&bytes, 16_384),
        Err(DecodeFrameError::InvalidLength {
            kind: 0x1,
            length: 3
        })
    );
}

#[test]
fn headers_with_priority_and_padding_round_trips() {
    let frame = Frame::Headers(HeadersFrame {
        stream_id: StreamId::new(7),
        fragment: Bytes::from_static(&[0x82, 0x84, 0x86]),
        end_stream: true,
        end_headers: true,
        priority: Some(PrioritySpec {
            exclusive: true,
            dependency: StreamId::new(3),
            weight: 147,
        }),
        pad_len: Some(13),
    });
    let bytes = frame.to_bytes();
    let (decoded, consumed) = decode_one(&bytes, 16_384).unwrap().unwrap();
    assert_eq!(consumed, bytes.len());
    assert_eq!(decoded, frame);
    // Wire length: pad byte + 5 priority octets + 3 fragment + 13 padding.
    assert_eq!(bytes.len(), 9 + 1 + 5 + 3 + 13);
}

#[test]
fn priority_spec_reserved_bit_reads_as_exclusive() {
    // The E bit is the MSB of the dependency word.
    let frame = Frame::Priority(h2wire::PriorityFrame {
        stream_id: StreamId::new(9),
        spec: PrioritySpec {
            exclusive: true,
            dependency: StreamId::MAX,
            weight: 1,
        },
    });
    let bytes = frame.to_bytes();
    assert_eq!(bytes[9] & 0x80, 0x80, "E bit set on the wire");
    let (decoded, _) = decode_one(&bytes, 16_384).unwrap().unwrap();
    assert_eq!(decoded, frame);
}

#[test]
fn extension_frames_respect_the_frame_size_limit_too() {
    let frame = Frame::Unknown(UnknownFrame {
        kind: 0x42,
        flags: 0xff,
        stream_id: StreamId::new(5),
        payload: Bytes::from(vec![0u8; 20_000]),
    });
    let bytes = frame.to_bytes();
    assert_eq!(
        decode_one(&bytes, 16_384),
        Err(DecodeFrameError::FrameTooLarge {
            length: 20_000,
            max: 16_384
        })
    );
    // ...but decode fine under a raised limit.
    let (decoded, _) = decode_one(&bytes, MAX_MAX_FRAME_SIZE).unwrap().unwrap();
    assert_eq!(decoded, frame);
}

#[test]
fn goaway_shorter_than_eight_octets_is_invalid() {
    let mut bytes = Vec::new();
    FrameHeader {
        length: 7,
        kind: FrameKind::Goaway,
        flags: 0,
        stream_id: StreamId::CONNECTION,
    }
    .encode(&mut bytes);
    bytes.extend_from_slice(&[0; 7]);
    assert!(matches!(
        decode_one(&bytes, 16_384),
        Err(DecodeFrameError::InvalidLength {
            kind: 0x7,
            length: 7
        })
    ));
}

#[test]
fn rst_stream_with_wrong_length_is_invalid() {
    let mut bytes = Vec::new();
    FrameHeader {
        length: 5,
        kind: FrameKind::RstStream,
        flags: 0,
        stream_id: StreamId::new(1),
    }
    .encode(&mut bytes);
    bytes.extend_from_slice(&[0; 5]);
    assert!(matches!(
        decode_one(&bytes, 16_384),
        Err(DecodeFrameError::InvalidLength {
            kind: 0x3,
            length: 5
        })
    ));
}

#[test]
fn window_update_on_idle_high_stream_decodes() {
    // WINDOW_UPDATE addressing a never-opened stream is structurally
    // valid; stream-state policy lives above the codec.
    let frame = Frame::WindowUpdate(h2wire::WindowUpdateFrame {
        stream_id: StreamId::new(0x7fff_fffd),
        increment: 1,
    });
    let (decoded, _) = decode_one(&frame.to_bytes(), 16_384).unwrap().unwrap();
    assert_eq!(decoded, frame);
}

#[test]
fn empty_data_frame_with_end_stream_round_trips() {
    let frame = Frame::Data(h2wire::DataFrame {
        stream_id: StreamId::new(1),
        data: Bytes::new(),
        end_stream: true,
        pad_len: None,
    });
    let bytes = frame.to_bytes();
    assert_eq!(bytes.len(), 9, "zero-length payload");
    let (decoded, _) = decode_one(&bytes, 16_384).unwrap().unwrap();
    assert_eq!(decoded, frame);
}

#[test]
fn maximally_padded_data_frame_round_trips() {
    let frame = Frame::Data(h2wire::DataFrame {
        stream_id: StreamId::new(1),
        data: Bytes::from_static(b"x"),
        end_stream: false,
        pad_len: Some(255),
    });
    let bytes = frame.to_bytes();
    let (decoded, _) = decode_one(&bytes, 16_384).unwrap().unwrap();
    assert_eq!(decoded, frame);
    if let Frame::Data(d) = decoded {
        assert_eq!(d.flow_controlled_len(), 1 + 255 + 1);
    }
}
