//! Property-based round-trip tests for the frame codec.

use bytes::Bytes;
use h2wire::frame::*;
use h2wire::settings::{SettingId, Settings, MAX_MAX_FRAME_SIZE};
use h2wire::{decode_one, ErrorCode, Frame, FrameDecoder, StreamId};
use proptest::prelude::*;

fn arb_stream_id() -> impl Strategy<Value = StreamId> {
    (1u32..=0x7fff_ffff).prop_map(StreamId::new)
}

fn arb_any_stream_id() -> impl Strategy<Value = StreamId> {
    (0u32..=0x7fff_ffff).prop_map(StreamId::new)
}

fn arb_priority_spec() -> impl Strategy<Value = PrioritySpec> {
    (any::<bool>(), arb_any_stream_id(), 1u16..=256).prop_map(|(exclusive, dependency, weight)| {
        PrioritySpec {
            exclusive,
            dependency,
            weight,
        }
    })
}

fn arb_setting_id() -> impl Strategy<Value = SettingId> {
    prop_oneof![
        Just(SettingId::HeaderTableSize),
        Just(SettingId::MaxConcurrentStreams),
        Just(SettingId::MaxHeaderListSize),
        (7u16..=0xffff).prop_map(SettingId::Unknown),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            arb_stream_id(),
            prop::collection::vec(any::<u8>(), 0..512),
            any::<bool>(),
            prop::option::of(0u8..=32)
        )
            .prop_map(
                |(stream_id, data, end_stream, pad_len)| Frame::Data(DataFrame {
                    stream_id,
                    data: Bytes::from(data),
                    end_stream,
                    pad_len,
                })
            ),
        (
            arb_stream_id(),
            prop::collection::vec(any::<u8>(), 0..256),
            any::<bool>(),
            any::<bool>(),
            prop::option::of(arb_priority_spec()),
            prop::option::of(0u8..=16)
        )
            .prop_map(
                |(stream_id, frag, end_stream, end_headers, priority, pad_len)| {
                    Frame::Headers(HeadersFrame {
                        stream_id,
                        fragment: Bytes::from(frag),
                        end_stream,
                        end_headers,
                        priority,
                        pad_len,
                    })
                }
            ),
        (arb_stream_id(), arb_priority_spec())
            .prop_map(|(stream_id, spec)| Frame::Priority(PriorityFrame { stream_id, spec })),
        (arb_stream_id(), any::<u32>()).prop_map(|(stream_id, code)| {
            Frame::RstStream(RstStreamFrame {
                stream_id,
                code: ErrorCode::from(code),
            })
        }),
        prop::collection::vec((arb_setting_id(), any::<u32>()), 0..8).prop_map(|params| {
            Frame::Settings(SettingsFrame::from(
                params.into_iter().collect::<Settings>(),
            ))
        }),
        (
            arb_stream_id(),
            arb_stream_id(),
            prop::collection::vec(any::<u8>(), 0..128),
            any::<bool>()
        )
            .prop_map(|(stream_id, promised, frag, end_headers)| {
                Frame::PushPromise(PushPromiseFrame {
                    stream_id,
                    promised_stream_id: promised,
                    fragment: Bytes::from(frag),
                    end_headers,
                    pad_len: None,
                })
            }),
        (any::<bool>(), any::<[u8; 8]>())
            .prop_map(|(ack, payload)| Frame::Ping(PingFrame { ack, payload })),
        (
            arb_any_stream_id(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(last, code, debug)| Frame::Goaway(GoawayFrame {
                last_stream_id: last,
                code: ErrorCode::from(code),
                debug_data: Bytes::from(debug),
            })),
        (arb_any_stream_id(), 0u32..=0x7fff_ffff).prop_map(|(stream_id, increment)| {
            Frame::WindowUpdate(WindowUpdateFrame {
                stream_id,
                increment,
            })
        }),
        (
            arb_stream_id(),
            prop::collection::vec(any::<u8>(), 0..128),
            any::<bool>()
        )
            .prop_map(|(stream_id, frag, end_headers)| {
                Frame::Continuation(ContinuationFrame {
                    stream_id,
                    fragment: Bytes::from(frag),
                    end_headers,
                })
            }),
    ]
}

proptest! {
    /// Every encodable frame decodes back to itself, consuming exactly its
    /// own bytes.
    #[test]
    fn frame_round_trips(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        let (decoded, consumed) = decode_one(&bytes, MAX_MAX_FRAME_SIZE)
            .expect("decode")
            .expect("complete frame");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    /// Splitting the byte stream arbitrarily never changes the decoded
    /// frame sequence.
    #[test]
    fn arbitrary_fragmentation_is_transparent(
        frames in prop::collection::vec(arb_frame(), 1..6),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = h2wire::encode_all(&frames);
        let cut = cut.index(bytes.len().max(1));
        let mut dec = FrameDecoder::new();
        dec.set_max_frame_size(MAX_MAX_FRAME_SIZE);
        dec.feed(&bytes[..cut]);
        let mut got = dec.drain_frames().expect("prefix decodes");
        dec.feed(&bytes[cut..]);
        got.extend(dec.drain_frames().expect("suffix decodes"));
        prop_assert_eq!(got, frames);
    }

    /// Truncated buffers never panic and never produce a frame.
    #[test]
    fn truncation_is_detected(frame in arb_frame(), keep in 0usize..9) {
        let bytes = frame.to_bytes();
        let keep = keep.min(bytes.len().saturating_sub(1));
        let result = decode_one(&bytes[..keep], MAX_MAX_FRAME_SIZE);
        prop_assert!(matches!(result, Ok(None) | Err(_)));
    }
}
