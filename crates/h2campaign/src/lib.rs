//! # h2campaign — persistent campaign store, crash resume, longitudinal diff
//!
//! The paper's wild-scan result is *longitudinal*: the same top-1M
//! population scanned in Jul 2016 and again in Jan 2017, compared
//! site-by-site. That only works if per-site scan records outlive the
//! scanning process. This crate is that durability layer:
//!
//! * [`record`] — the versioned (`h2campaign-v1`), append-only on-disk
//!   record: a schema header carrying the campaign seed, fault config
//!   and population hash, one compact line per scanned site with the
//!   full feature vector and [`h2scope::ProbeOutcome`] accounting, and a
//!   checksummed `end|` trailer written only on completion. Scan workers
//!   append and flush each row as it finishes, so a killed process loses
//!   at most its in-flight sites.
//! * Crash resume — a partial record (no trailer) identifies exactly
//!   which sites are already done; the scanner re-scans only the missing
//!   ones and [`finalize`] rewrites the canonical file. Because every
//!   row is a pure function of `(population, index)` and the final bytes
//!   are a pure function of `(meta, row set)`, a resumed campaign is
//!   **byte-identical** to an uninterrupted one, at any thread count.
//! * [`diff`] — the Jul→Jan comparison recomputed from two persisted
//!   records: adoption deltas, appeared/disappeared sites, per-site
//!   behavior transitions, server-family churn.
//!
//! Everything here is deterministic and wall-clock-free; the only
//! side effects are the record files themselves.

#![forbid(unsafe_code)]

pub mod diff;
pub mod record;

pub use diff::{diff_records, render_diff, AdoptionDelta, CampaignDiff, Transition};
pub use record::{
    finalize, read, CampaignMeta, CampaignRow, RecordError, RecordWriter, StoredRecord, SCHEMA,
};
