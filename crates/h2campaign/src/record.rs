//! The on-disk campaign record: a versioned, append-only, line-oriented
//! journal of one scan campaign.
//!
//! Layout (`h2campaign-v1`, LF-terminated lines):
//!
//! ```text
//! h2campaign-v1
//! meta|campaign=experiment-1|label=Jul. 2016|scale=0.1|scale_bits=3fb999999999999a|faults=none|seed=0|population=59cf9ad2366a3f9d|sites=5230
//! r|i=0|f=nginx|site=site-0.top1m|alpn=1|npn=1|hdrs=1|…
//! r|i=1|f=litespeed|…
//! …
//! end|rows=5230|checksum=8aa4c2f10b93e77d
//! ```
//!
//! * The two header lines are written first and fsync-free-flushed, so
//!   any crash leaves at least an identifiable record.
//! * Each `r|` row is appended and flushed as soon as a scan worker
//!   finishes the site, in whatever order workers finish — a killed
//!   process loses at most its in-flight sites.
//! * The trailing `end|` line exists **only** on finalized records.
//!   Finalization rewrites the whole file with rows in canonical site
//!   (index) order via a temp-file rename, which is what makes a resumed
//!   campaign byte-identical to an uninterrupted one: the final bytes
//!   are a pure function of `(meta, row set)`.
//!
//! A record without the `end|` line is a *partial* record — the durable
//! residue of a crash — and is exactly what [`read`] hands to the resume
//! path. A torn final line (no trailing `\n`) is tolerated on partial
//! records and dropped; the site is simply re-scanned on resume.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use h2scope::storage::{read_report, write_report};
use h2scope::SiteReport;
use webpop::{Family, Population};

/// Schema identifier — the record file's first line. Any change to the
/// meta line fields, the row layout, the family codes, or the report
/// line format is a format break and must bump this.
pub const SCHEMA: &str = "h2campaign-v1";

/// Error raised by record I/O, parsing, or resume-compatibility checks.
#[derive(Debug)]
pub enum RecordError {
    /// Filesystem failure, annotated with the path.
    Io {
        /// The record path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Malformed record content.
    Parse {
        /// 1-based line number in the record file.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The record on disk belongs to a different campaign configuration.
    Mismatch(String),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            RecordError::Parse { line, message } => write!(f, "line {line}: {message}"),
            RecordError::Mismatch(why) => write!(f, "campaign mismatch: {why}"),
        }
    }
}

impl std::error::Error for RecordError {}

fn io_err(path: &Path, source: std::io::Error) -> RecordError {
    RecordError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Escapes a metadata value so it cannot contain a field separator or a
/// line break (same scheme as `h2scope::storage` report lines).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\p"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('p') => out.push('|'),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

/// Splits a record line on unescaped `|`.
fn split_fields(line: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let mut start = 0;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'|' => {
                fields.push(&line[start..i]);
                i += 1;
                start = i;
            }
            _ => i += 1,
        }
    }
    fields.push(&line[start..]);
    fields
}

/// FNV-1a 64-bit — the record checksum and population hash primitive.
/// Dependency-free and stable across platforms, which is all a
/// corruption tripwire needs (this is not a cryptographic seal).
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Checksum over the canonical (index-sorted) row lines.
fn rows_checksum(rows: &[CampaignRow]) -> u64 {
    let mut h = FNV_OFFSET;
    for row in rows {
        h = fnv1a(h, row.encode().as_bytes());
        h = fnv1a(h, b"\n");
    }
    h
}

/// The campaign configuration a record was produced under. Two records
/// are resume-compatible only when every field matches — resuming a
/// `flaky` campaign under `chaos`, or at a different scale, would blend
/// two different experiments into one file.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignMeta {
    /// Campaign identifier (`ExperimentSpec::name`).
    pub campaign: String,
    /// Human label ("Jul. 2016").
    pub label: String,
    /// Population scale factor.
    pub scale: f64,
    /// Fault profile name ("none", "flaky", …).
    pub faults: String,
    /// Campaign fault seed.
    pub seed: u64,
    /// Hash of the generated population's identity (spec + scale).
    pub population: u64,
    /// Expected number of rows when complete (`Population::h2_count`).
    pub sites: u64,
}

impl CampaignMeta {
    /// The meta for scanning `population` under `(faults, seed)`.
    pub fn describe(population: &Population, faults: &str, seed: u64) -> CampaignMeta {
        let spec = population.spec();
        let mut h = FNV_OFFSET;
        h = fnv1a(h, spec.name.as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, &spec.seed.to_le_bytes());
        h = fnv1a(h, &population.h2_count().to_le_bytes());
        h = fnv1a(h, &population.headers_count().to_le_bytes());
        h = fnv1a(h, &population.scale().to_bits().to_le_bytes());
        CampaignMeta {
            campaign: spec.name.to_string(),
            label: spec.label.to_string(),
            scale: population.scale(),
            faults: faults.to_string(),
            seed,
            population: h,
            sites: population.h2_count(),
        }
    }

    /// The two header lines (schema + meta), each LF-terminated.
    pub fn header(&self) -> String {
        format!(
            "{SCHEMA}\nmeta|campaign={}|label={}|scale={}|scale_bits={:016x}|faults={}|seed={}|population={:016x}|sites={}\n",
            escape(&self.campaign),
            escape(&self.label),
            self.scale,
            self.scale.to_bits(),
            escape(&self.faults),
            self.seed,
            self.population,
            self.sites,
        )
    }

    fn parse_line(line: &str) -> Result<CampaignMeta, String> {
        let mut campaign = None;
        let mut label = None;
        let mut scale_bits = None;
        let mut faults = None;
        let mut seed = None;
        let mut population = None;
        let mut sites = None;
        let fields = split_fields(line);
        if fields.first() != Some(&"meta") {
            return Err("expected a meta| line".to_string());
        }
        for field in &fields[1..] {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("meta field without '=': {field:?}"))?;
            match key {
                "campaign" => campaign = Some(unescape(value)?),
                "label" => label = Some(unescape(value)?),
                "scale" => {} // human-readable duplicate of scale_bits
                "scale_bits" => {
                    scale_bits = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| format!("bad scale_bits {value:?}"))?,
                    );
                }
                "faults" => faults = Some(unescape(value)?),
                "seed" => {
                    seed = Some(value.parse().map_err(|_| format!("bad seed {value:?}"))?);
                }
                "population" => {
                    population = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| format!("bad population {value:?}"))?,
                    );
                }
                "sites" => {
                    sites = Some(value.parse().map_err(|_| format!("bad sites {value:?}"))?);
                }
                other => return Err(format!("unknown meta field {other:?}")),
            }
        }
        let missing = |what: &str| format!("meta line missing {what}");
        Ok(CampaignMeta {
            campaign: campaign.ok_or_else(|| missing("campaign"))?,
            label: label.ok_or_else(|| missing("label"))?,
            scale: f64::from_bits(scale_bits.ok_or_else(|| missing("scale_bits"))?),
            faults: faults.ok_or_else(|| missing("faults"))?,
            seed: seed.ok_or_else(|| missing("seed"))?,
            population: population.ok_or_else(|| missing("population"))?,
            sites: sites.ok_or_else(|| missing("sites"))?,
        })
    }

    /// Checks resume compatibility against a record read from disk.
    pub fn ensure_matches(&self, on_disk: &CampaignMeta) -> Result<(), RecordError> {
        let mut clashes = Vec::new();
        if self.campaign != on_disk.campaign {
            clashes.push(format!(
                "campaign {:?} vs {:?}",
                on_disk.campaign, self.campaign
            ));
        }
        if self.scale.to_bits() != on_disk.scale.to_bits() {
            clashes.push(format!("scale {} vs {}", on_disk.scale, self.scale));
        }
        if self.faults != on_disk.faults {
            clashes.push(format!("faults {:?} vs {:?}", on_disk.faults, self.faults));
        }
        if self.seed != on_disk.seed {
            clashes.push(format!("seed {} vs {}", on_disk.seed, self.seed));
        }
        if self.population != on_disk.population {
            clashes.push(format!(
                "population {:016x} vs {:016x}",
                on_disk.population, self.population
            ));
        }
        if self.sites != on_disk.sites {
            clashes.push(format!("sites {} vs {}", on_disk.sites, self.sites));
        }
        if clashes.is_empty() {
            Ok(())
        } else {
            Err(RecordError::Mismatch(format!(
                "record was written by a different campaign ({})",
                clashes.join(", ")
            )))
        }
    }
}

/// One persisted site: its campaign index, generated server family, and
/// the full measured [`SiteReport`] (feature vector + probe outcome).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Site index within the campaign (also its stable rank identity).
    pub index: u64,
    /// Generated server family.
    pub family: Family,
    /// Everything H2Scope measured, including resilience accounting.
    pub report: SiteReport,
}

impl CampaignRow {
    /// The row's single record line (no trailing newline).
    pub fn encode(&self) -> String {
        format!(
            "r|i={}|f={}|{}",
            self.index,
            self.family.code(),
            write_report(&self.report)
        )
    }

    /// Parses one `r|` line.
    pub fn decode(line: &str) -> Result<CampaignRow, String> {
        let rest = line.strip_prefix("r|i=").ok_or("expected an r| row")?;
        let (index, rest) = rest.split_once('|').ok_or("row truncated after index")?;
        let index = index
            .parse()
            .map_err(|_| format!("bad row index {index:?}"))?;
        let family = rest.strip_prefix("f=").ok_or("row missing family")?;
        let (family, report) = family.split_once('|').ok_or("row truncated after family")?;
        let family =
            Family::parse_code(family).ok_or_else(|| format!("unknown family {family:?}"))?;
        let report = read_report(report).map_err(|e| e.message)?;
        Ok(CampaignRow {
            index,
            family,
            report,
        })
    }
}

/// A campaign record read back from disk.
#[derive(Debug, Clone)]
pub struct StoredRecord {
    /// The campaign configuration it was produced under.
    pub meta: CampaignMeta,
    /// Rows in index order (whatever subset survived, for partials).
    pub rows: Vec<CampaignRow>,
    /// Whether the `end|` line (and a verified checksum) was present.
    pub finalized: bool,
}

/// Incremental journal writer shared by the scan workers. Every append
/// is written and flushed under one lock, so rows are never interleaved
/// mid-line and the returned count is the number of rows durably in the
/// file — the quantity kill points compare against.
#[derive(Debug)]
pub struct RecordWriter {
    file: Mutex<(File, u64)>,
    path: PathBuf,
}

impl RecordWriter {
    /// Creates (truncates) `path` and writes the header lines.
    pub fn create(path: &Path, meta: &CampaignMeta) -> Result<RecordWriter, RecordError> {
        let mut file = File::create(path).map_err(|e| io_err(path, e))?;
        file.write_all(meta.header().as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| io_err(path, e))?;
        Ok(RecordWriter {
            file: Mutex::new((file, 0)),
            path: path.to_path_buf(),
        })
    }

    /// Reopens an existing partial record for appending; `rows_present`
    /// is how many rows the partial already holds.
    pub fn append_to(path: &Path, rows_present: u64) -> Result<RecordWriter, RecordError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(RecordWriter {
            file: Mutex::new((file, rows_present)),
            path: path.to_path_buf(),
        })
    }

    /// Appends one row; returns the total number of rows now in the file.
    pub fn append(&self, row: &CampaignRow) -> Result<u64, RecordError> {
        let mut line = row.encode();
        line.push('\n');
        let mut guard = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        let (file, rows) = &mut *guard;
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| io_err(&self.path, e))?;
        *rows += 1;
        Ok(*rows)
    }

    /// Rows appended so far (including any preloaded partial rows).
    pub fn rows_written(&self) -> u64 {
        self.file.lock().unwrap_or_else(PoisonError::into_inner).1
    }
}

/// The complete, canonical byte content of a finalized record.
fn canonical_content(meta: &CampaignMeta, rows: &[CampaignRow]) -> String {
    let mut out = meta.header();
    for row in rows {
        out.push_str(&row.encode());
        out.push('\n');
    }
    out.push_str(&format!(
        "end|rows={}|checksum={:016x}\n",
        rows.len(),
        rows_checksum(rows)
    ));
    out
}

/// Finalizes a completed campaign: rewrites `path` with the header, all
/// rows in index order, and the `end|` trailer, via a temp-file rename
/// so a crash during finalization never destroys the journal. The
/// output is a pure function of `(meta, rows)` — the byte-identity
/// guarantee resumed campaigns rely on.
///
/// `rows` must be sorted by index and complete (`meta.sites` rows).
pub fn finalize(path: &Path, meta: &CampaignMeta, rows: &[CampaignRow]) -> Result<(), RecordError> {
    debug_assert!(rows.windows(2).all(|w| w[0].index < w[1].index));
    if rows.len() as u64 != meta.sites {
        return Err(RecordError::Mismatch(format!(
            "finalize with {} rows, campaign has {} sites",
            rows.len(),
            meta.sites
        )));
    }
    let tmp = path.with_extension("h2c.tmp");
    let content = canonical_content(meta, rows);
    std::fs::write(&tmp, content).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// Reads a record — finalized or partial — back from disk.
///
/// Partial records (no `end|` trailer) may end in a torn line, which is
/// dropped; every fully written row is recovered, sorted by index, and
/// deduplicated (later duplicates win — they can only arise from a
/// crash between a row's write and the scheduler's bookkeeping, and
/// duplicate rows of a deterministic scan are identical anyway).
/// Finalized records are held to strict form: row count and checksum
/// must verify.
///
/// # Errors
///
/// [`RecordError::Io`] on filesystem failure, [`RecordError::Parse`] on
/// malformed content.
pub fn read(path: &Path) -> Result<StoredRecord, RecordError> {
    let mut content = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut content))
        .map_err(|e| io_err(path, e))?;
    let terminated = content.ends_with('\n');
    let mut lines: Vec<&str> = content.split('\n').collect();
    // split('\n') leaves a trailing "" for terminated files and the torn
    // fragment otherwise.
    let torn = if terminated {
        lines.pop();
        None
    } else {
        lines.pop()
    };
    let parse_err = |line: usize, message: String| RecordError::Parse { line, message };
    if lines.first().copied() != Some(SCHEMA) {
        return Err(parse_err(
            1,
            format!("not a {SCHEMA} record (bad schema line)"),
        ));
    }
    let meta_line = lines
        .get(1)
        .ok_or_else(|| parse_err(2, "missing meta line".to_string()))?;
    let meta = CampaignMeta::parse_line(meta_line).map_err(|m| parse_err(2, m))?;

    let mut rows = Vec::new();
    let mut end: Option<(u64, u64)> = None;
    for (number, line) in lines.iter().enumerate().skip(2) {
        let number = number + 1; // 1-based
        if let Some(rest) = line.strip_prefix("end|") {
            let parse_end = || -> Result<(u64, u64), String> {
                let (rows_field, checksum_field) =
                    rest.split_once('|').ok_or("end line truncated")?;
                let rows = rows_field
                    .strip_prefix("rows=")
                    .ok_or("end line missing rows=")?
                    .parse()
                    .map_err(|_| "bad end row count".to_string())?;
                let checksum = checksum_field
                    .strip_prefix("checksum=")
                    .and_then(|v| u64::from_str_radix(v, 16).ok())
                    .ok_or("bad end checksum")?;
                Ok((rows, checksum))
            };
            end = Some(parse_end().map_err(|m| parse_err(number, m))?);
            if number != lines.len() {
                return Err(parse_err(number, "content after end| trailer".to_string()));
            }
            break;
        }
        rows.push(CampaignRow::decode(line).map_err(|m| parse_err(number, m))?);
    }

    rows.sort_by_key(|r| r.index);
    rows.dedup_by_key(|r| r.index);

    match end {
        Some((count, checksum)) => {
            if torn.is_some() {
                return Err(parse_err(
                    lines.len() + 1,
                    "torn finalized record".to_string(),
                ));
            }
            if count != rows.len() as u64 {
                return Err(parse_err(
                    lines.len(),
                    format!("end says {count} rows, found {}", rows.len()),
                ));
            }
            let computed = rows_checksum(&rows);
            if checksum != computed {
                return Err(parse_err(
                    lines.len(),
                    format!("checksum {checksum:016x} != computed {computed:016x}"),
                ));
            }
            Ok(StoredRecord {
                meta,
                rows,
                finalized: true,
            })
        }
        None => Ok(StoredRecord {
            meta,
            rows,
            finalized: false,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webpop::ExperimentSpec;

    fn tiny_population() -> Population {
        Population::new(ExperimentSpec::first(), 0.0005)
    }

    fn sample_rows(population: &Population, n: u64) -> Vec<CampaignRow> {
        let scope = h2scope::H2Scope::new();
        (0..n)
            .map(|i| {
                let site = population.site(i);
                CampaignRow {
                    index: i,
                    family: site.family,
                    report: scope.survey(&site.target()),
                }
            })
            .collect()
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("h2campaign-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    #[test]
    fn meta_header_round_trips() {
        let population = tiny_population();
        let meta = CampaignMeta::describe(&population, "flaky", 0xfa17);
        let header = meta.header();
        let mut lines = header.lines();
        assert_eq!(lines.next(), Some(SCHEMA));
        let parsed =
            CampaignMeta::parse_line(lines.next().expect("meta line")).expect("meta parses");
        assert_eq!(parsed, meta);
    }

    #[test]
    fn meta_escaping_survives_hostile_values() {
        let population = tiny_population();
        let mut meta = CampaignMeta::describe(&population, "none", 0);
        meta.label = "pipe|back\\slash\nnewline".to_string();
        let header = meta.header();
        let meta_line = header.lines().nth(1).expect("meta line");
        let parsed = CampaignMeta::parse_line(meta_line).expect("meta parses");
        assert_eq!(parsed.label, meta.label);
    }

    #[test]
    fn row_round_trips_through_the_line_format() {
        let population = tiny_population();
        for row in sample_rows(&population, 5) {
            let decoded = CampaignRow::decode(&row.encode()).expect("row decodes");
            assert_eq!(decoded, row);
        }
    }

    #[test]
    fn write_finalize_read_round_trips() {
        let population = tiny_population();
        let mut meta = CampaignMeta::describe(&population, "none", 0);
        let rows = sample_rows(&population, 6);
        meta.sites = rows.len() as u64;
        let path = temp_path("roundtrip.h2c");
        let writer = RecordWriter::create(&path, &meta).expect("create");
        for row in &rows {
            writer.append(row).expect("append");
        }
        assert_eq!(writer.rows_written(), 6);
        finalize(&path, &meta, &rows).expect("finalize");
        let stored = read(&path).expect("read back");
        assert!(stored.finalized);
        assert_eq!(stored.meta, meta);
        assert_eq!(stored.rows, rows);
    }

    #[test]
    fn partial_record_reads_without_end_line() {
        let population = tiny_population();
        let meta = CampaignMeta::describe(&population, "none", 0);
        let rows = sample_rows(&population, 4);
        let path = temp_path("partial.h2c");
        let writer = RecordWriter::create(&path, &meta).expect("create");
        // Rows land out of order, as parallel workers would write them.
        for i in [2usize, 0, 3, 1] {
            writer.append(&rows[i]).expect("append");
        }
        let stored = read(&path).expect("read partial");
        assert!(!stored.finalized);
        assert_eq!(stored.rows, rows, "read sorts rows into index order");
    }

    #[test]
    fn torn_tail_is_dropped_on_partial_records() {
        let population = tiny_population();
        let meta = CampaignMeta::describe(&population, "none", 0);
        let rows = sample_rows(&population, 3);
        let path = temp_path("torn.h2c");
        let writer = RecordWriter::create(&path, &meta).expect("create");
        for row in &rows {
            writer.append(row).expect("append");
        }
        // Simulate a crash mid-write: append half a row, no newline.
        let mut content = std::fs::read_to_string(&path).expect("read file");
        let torn = rows[0].encode();
        content.push_str(&torn[..torn.len() / 2]);
        std::fs::write(&path, content).expect("write torn file");
        let stored = read(&path).expect("torn partial still reads");
        assert!(!stored.finalized);
        assert_eq!(stored.rows, rows, "the torn fragment is dropped");
    }

    #[test]
    fn finalized_record_rejects_corruption() {
        let population = tiny_population();
        let mut meta = CampaignMeta::describe(&population, "none", 0);
        let rows = sample_rows(&population, 3);
        meta.sites = rows.len() as u64;
        let path = temp_path("corrupt.h2c");
        finalize(&path, &meta, &rows).expect("finalize");
        let good = std::fs::read_to_string(&path).expect("read file");
        // Flip one negotiation bit inside a row.
        let bad = good.replacen("alpn=1", "alpn=0", 1);
        assert_ne!(good, bad, "fixture must actually change");
        std::fs::write(&path, bad).expect("write corrupted");
        let err = read(&path).expect_err("corruption detected");
        assert!(matches!(err, RecordError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn mismatched_campaigns_refuse_to_resume() {
        let population = tiny_population();
        let ours = CampaignMeta::describe(&population, "flaky", 1);
        let theirs = CampaignMeta::describe(&population, "flaky", 2);
        let err = ours.ensure_matches(&theirs).expect_err("seeds differ");
        assert!(err.to_string().contains("seed"));
        let other_scale = Population::new(ExperimentSpec::first(), 0.001);
        let theirs = CampaignMeta::describe(&other_scale, "flaky", 1);
        let err = ours.ensure_matches(&theirs).expect_err("scales differ");
        assert!(err.to_string().contains("population"));
        ours.ensure_matches(&ours.clone()).expect("self matches");
    }

    #[test]
    fn finalize_is_a_pure_function_of_meta_and_rows() {
        let population = tiny_population();
        let mut meta = CampaignMeta::describe(&population, "none", 0);
        let rows = sample_rows(&population, 5);
        meta.sites = rows.len() as u64;
        let a = temp_path("pure-a.h2c");
        let b = temp_path("pure-b.h2c");
        finalize(&a, &meta, &rows).expect("finalize a");
        // The second file goes through a journal full of out-of-order
        // appends first — the finalized bytes must not care.
        let writer = RecordWriter::create(&b, &meta).expect("create");
        for i in [4usize, 1, 0, 3, 2] {
            writer.append(&rows[i]).expect("append");
        }
        finalize(&b, &meta, &rows).expect("finalize b");
        assert_eq!(
            std::fs::read(&a).expect("bytes a"),
            std::fs::read(&b).expect("bytes b")
        );
    }
}
