//! The longitudinal diff engine: everything the paper's Jul-2016 →
//! Jan-2017 comparison says, recomputed from two persisted campaign
//! records instead of in-memory scan state.
//!
//! The paper ran its wild scan twice, six months apart, and reported
//! (a) how adoption counts moved (§V-B1), (b) how the population churned
//! (new h2 sites appearing), and (c) how individual servers' behaviors
//! changed between campaigns (e.g. the Tengine → Tengine/Aserver fleet
//! rename, LiteSpeed's flow-control fix). [`diff_records`] reproduces
//! all three from disk alone: records are joined on the stable site
//! identity (`site-<rank>.top1m`), so a site keeps its row across
//! campaign generations even when its server family or features change.

use std::collections::HashMap;
use std::fmt::Write as _;

use h2scope::SiteReport;

use crate::record::{CampaignRow, StoredRecord};

/// One adoption counter measured in both campaigns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdoptionDelta {
    /// What is being counted.
    pub name: &'static str,
    /// Count in the first (older) record.
    pub a: u64,
    /// Count in the second (newer) record.
    pub b: u64,
}

/// Site-level churn of one boolean feature among the common sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// The feature.
    pub name: &'static str,
    /// Sites where the feature was absent in A and present in B.
    pub gained: u64,
    /// Sites where the feature was present in A and absent in B.
    pub lost: u64,
    /// Sites where the feature was present in both.
    pub stable: u64,
}

/// The full longitudinal comparison of two campaign records.
#[derive(Debug, Clone)]
pub struct CampaignDiff {
    /// Label of the older record.
    pub a_label: String,
    /// Label of the newer record.
    pub b_label: String,
    /// Scale of the older record.
    pub a_scale: f64,
    /// Scale of the newer record.
    pub b_scale: f64,
    /// Row counts of the two records.
    pub a_sites: u64,
    /// Row count of the newer record.
    pub b_sites: u64,
    /// Sites present in both records (joined on authority).
    pub common: u64,
    /// Sites only in the newer record (new h2 adopters).
    pub appeared: Vec<String>,
    /// Sites only in the older record (dropped out of h2).
    pub disappeared: Vec<String>,
    /// Adoption counters side by side.
    pub adoption: Vec<AdoptionDelta>,
    /// Per-feature churn among common sites.
    pub transitions: Vec<Transition>,
    /// Common sites whose generated server family changed.
    pub family_flips: u64,
}

/// A feature predicate over one site's stored report.
type FeatureProbe = fn(&SiteReport) -> bool;

/// The boolean feature vector the transition analysis tracks, in render
/// order. Kept in one place so counts and transitions can't drift apart.
const FEATURES: &[(&str, FeatureProbe)] = &[
    ("NPN h2", |r| r.negotiation.npn_h2),
    ("ALPN h2", |r| r.negotiation.alpn_h2),
    ("HEADERS returned", |r| r.headers_received),
    ("server push", |r| {
        r.push.as_ref().is_some_and(|p| p.supported)
    }),
    ("priority (last-frame)", |r| {
        r.priority.as_ref().is_some_and(|p| p.by_last_frame)
    }),
];

fn feature_counts(rows: &[CampaignRow]) -> Vec<u64> {
    FEATURES
        .iter()
        .map(|(_, f)| rows.iter().filter(|row| f(&row.report)).count() as u64)
        .collect()
}

/// Joins two records on site identity and computes the longitudinal
/// comparison. Records may come from different campaign generations and
/// even different scales — identity is the site's rank hostname.
pub fn diff_records(a: &StoredRecord, b: &StoredRecord) -> CampaignDiff {
    let index_a: HashMap<&str, &CampaignRow> = a
        .rows
        .iter()
        .map(|row| (row.report.authority.as_str(), row))
        .collect();
    let index_b: HashMap<&str, &CampaignRow> = b
        .rows
        .iter()
        .map(|row| (row.report.authority.as_str(), row))
        .collect();

    let mut appeared: Vec<String> = b
        .rows
        .iter()
        .filter(|row| !index_a.contains_key(row.report.authority.as_str()))
        .map(|row| row.report.authority.clone())
        .collect();
    appeared.sort();
    let mut disappeared: Vec<String> = a
        .rows
        .iter()
        .filter(|row| !index_b.contains_key(row.report.authority.as_str()))
        .map(|row| row.report.authority.clone())
        .collect();
    disappeared.sort();

    let counts_a = feature_counts(&a.rows);
    let counts_b = feature_counts(&b.rows);
    let adoption = FEATURES
        .iter()
        .zip(counts_a.iter().zip(&counts_b))
        .map(|((name, _), (&ca, &cb))| AdoptionDelta { name, a: ca, b: cb })
        .collect();

    let mut common = 0u64;
    let mut family_flips = 0u64;
    let mut transitions: Vec<Transition> = FEATURES
        .iter()
        .map(|(name, _)| Transition {
            name,
            gained: 0,
            lost: 0,
            stable: 0,
        })
        .collect();
    for row_a in &a.rows {
        let Some(row_b) = index_b.get(row_a.report.authority.as_str()) else {
            continue;
        };
        common += 1;
        if row_a.family != row_b.family {
            family_flips += 1;
        }
        for ((_, f), t) in FEATURES.iter().zip(&mut transitions) {
            match (f(&row_a.report), f(&row_b.report)) {
                (false, true) => t.gained += 1,
                (true, false) => t.lost += 1,
                (true, true) => t.stable += 1,
                (false, false) => {}
            }
        }
    }

    CampaignDiff {
        a_label: a.meta.label.clone(),
        b_label: b.meta.label.clone(),
        a_scale: a.meta.scale,
        b_scale: b.meta.scale,
        a_sites: a.rows.len() as u64,
        b_sites: b.rows.len() as u64,
        common,
        appeared,
        disappeared,
        adoption,
        transitions,
        family_flips,
    }
}

fn upscale(count: u64, scale: f64) -> u64 {
    (count as f64 / scale).round() as u64
}

fn fmt_count(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

fn signed(delta: i64) -> String {
    if delta >= 0 {
        format!("+{}", fmt_count(delta.unsigned_abs()))
    } else {
        format!("-{}", fmt_count(delta.unsigned_abs()))
    }
}

/// Renders the diff as the paper-style longitudinal report.
pub fn render_diff(diff: &CampaignDiff) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "LONGITUDINAL DIFF — {} → {}",
        diff.a_label, diff.b_label
    );
    let _ = writeln!(
        out,
        "  sites: {} → {}   common {}, appeared {}, disappeared {}",
        fmt_count(diff.a_sites),
        fmt_count(diff.b_sites),
        fmt_count(diff.common),
        fmt_count(diff.appeared.len() as u64),
        fmt_count(diff.disappeared.len() as u64),
    );
    if (diff.a_scale - diff.b_scale).abs() > f64::EPSILON {
        let _ = writeln!(
            out,
            "  note: records use different scales ({} vs {}); paper-scale columns are per-record",
            diff.a_scale, diff.b_scale
        );
    }
    let _ = writeln!(out, "  adoption ({} → {}):", diff.a_label, diff.b_label);
    let _ = writeln!(
        out,
        "    {:<24}{:>10}{:>10}{:>9}   {:>11}{:>12}",
        "feature", "measured", "measured", "delta", "paper-scale", "paper-scale"
    );
    for delta in &diff.adoption {
        let _ = writeln!(
            out,
            "    {:<24}{:>10}{:>10}{:>9}   {:>11}{:>12}",
            delta.name,
            fmt_count(delta.a),
            fmt_count(delta.b),
            signed(delta.b as i64 - delta.a as i64),
            fmt_count(upscale(delta.a, diff.a_scale)),
            fmt_count(upscale(delta.b, diff.b_scale)),
        );
    }
    let _ = writeln!(
        out,
        "  per-site transitions among {} common sites:",
        fmt_count(diff.common)
    );
    let _ = writeln!(
        out,
        "    {:<24}{:>9}{:>9}{:>9}",
        "feature", "gained", "lost", "stable"
    );
    for t in &diff.transitions {
        let _ = writeln!(
            out,
            "    {:<24}{:>9}{:>9}{:>9}",
            t.name,
            fmt_count(t.gained),
            fmt_count(t.lost),
            fmt_count(t.stable),
        );
    }
    let _ = writeln!(
        out,
        "  server family changed on {} common sites",
        fmt_count(diff.family_flips)
    );
    for (what, sites) in [
        ("appeared", &diff.appeared),
        ("disappeared", &diff.disappeared),
    ] {
        if sites.is_empty() {
            continue;
        }
        let shown = sites.iter().take(10).cloned().collect::<Vec<_>>();
        let suffix = if sites.len() > shown.len() {
            format!(" … ({} more)", sites.len() - shown.len())
        } else {
            String::new()
        };
        let _ = writeln!(out, "  {what}: {}{suffix}", shown.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CampaignMeta;
    use webpop::{ExperimentSpec, Population};

    fn record_for(spec: ExperimentSpec, scale: f64) -> StoredRecord {
        let population = Population::new(spec, scale);
        let scope = h2scope::H2Scope::new();
        let rows: Vec<CampaignRow> = (0..population.h2_count())
            .map(|i| {
                let site = population.site(i);
                CampaignRow {
                    index: i,
                    family: site.family,
                    report: scope.survey(&site.target()),
                }
            })
            .collect();
        let mut meta = CampaignMeta::describe(&population, "none", 0);
        meta.sites = rows.len() as u64;
        StoredRecord {
            meta,
            rows,
            finalized: true,
        }
    }

    #[test]
    fn diff_of_the_two_campaigns_matches_the_paper_shape() {
        let a = record_for(ExperimentSpec::first(), 0.001);
        let b = record_for(ExperimentSpec::second(), 0.001);
        let diff = diff_records(&a, &b);
        // Jan 2017 has more h2 sites than Jul 2016; with stable rank
        // identity, the earlier campaign's sites are a prefix of the
        // later population, so nothing disappears at equal scale.
        assert!(diff.b_sites > diff.a_sites);
        assert_eq!(diff.common, diff.a_sites);
        assert_eq!(
            diff.appeared.len() as u64,
            diff.b_sites - diff.a_sites,
            "appeared sites are exactly the new h2 adopters"
        );
        assert!(diff.disappeared.is_empty());
        // Adoption counters in the diff are the same numbers the live
        // aggregation computes from in-memory records.
        for (delta, (ca, cb)) in diff
            .adoption
            .iter()
            .zip(feature_counts(&a.rows).iter().zip(feature_counts(&b.rows)))
        {
            assert_eq!(delta.a, *ca);
            assert_eq!(delta.b, cb);
        }
        let npn = &diff.adoption[0];
        assert!(npn.b > npn.a, "NPN adoption grows Jul → Jan");
        // Transition bookkeeping is internally consistent: sites with
        // the feature in A either keep it or lose it.
        let counts_a = feature_counts(&a.rows);
        for (t, ca) in diff.transitions.iter().zip(counts_a) {
            assert_eq!(t.stable + t.lost, ca, "{} churn adds up", t.name);
        }
    }

    #[test]
    fn render_includes_every_section() {
        let a = record_for(ExperimentSpec::first(), 0.001);
        let b = record_for(ExperimentSpec::second(), 0.001);
        let rendered = render_diff(&diff_records(&a, &b));
        for needle in [
            "LONGITUDINAL DIFF — Jul. 2016 → Jan. 2017",
            "adoption",
            "NPN h2",
            "per-site transitions",
            "server family changed",
            "appeared:",
        ] {
            assert!(rendered.contains(needle), "missing {needle:?}:\n{rendered}");
        }
    }

    #[test]
    fn identical_records_diff_to_zero_churn() {
        let a = record_for(ExperimentSpec::first(), 0.001);
        let diff = diff_records(&a, &a);
        assert_eq!(diff.common, diff.a_sites);
        assert!(diff.appeared.is_empty() && diff.disappeared.is_empty());
        assert_eq!(diff.family_flips, 0);
        for t in &diff.transitions {
            assert_eq!(t.gained + t.lost, 0, "{} must not churn", t.name);
        }
    }
}
