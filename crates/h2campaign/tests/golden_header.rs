//! Schema-stability check: the exact header bytes of the `h2campaign-v1`
//! record format, pinned against a committed fixture. If this test
//! fails, the on-disk format changed — which is only acceptable together
//! with a schema bump (`h2campaign-v2`) and a deliberate regeneration of
//! the fixture:
//!
//! ```text
//! H2CAMPAIGN_BLESS=1 cargo test -p h2campaign --test golden_header
//! ```

use h2campaign::{CampaignMeta, CampaignRow, SCHEMA};
use webpop::{ExperimentSpec, Population};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_header.txt")
}

fn golden_headers() -> String {
    let mut out = String::new();
    for (spec, faults, seed) in [
        (ExperimentSpec::first(), "none", 0u64),
        (ExperimentSpec::first(), "flaky", 0xfa17),
        (ExperimentSpec::second(), "chaos", 7),
    ] {
        let population = Population::new(spec, 0.001);
        out.push_str(&CampaignMeta::describe(&population, faults, seed).header());
    }
    out
}

#[test]
fn header_bytes_are_pinned() {
    let got = golden_headers();
    if std::env::var_os("H2CAMPAIGN_BLESS").is_some() {
        std::fs::write(fixture_path(), &got).expect("write fixture");
    }
    let want = std::fs::read_to_string(fixture_path())
        .expect("golden_header.txt fixture missing — run with H2CAMPAIGN_BLESS=1 to create it");
    assert_eq!(
        got, want,
        "h2campaign record header changed; this is a format break — bump SCHEMA \
         and re-bless the fixture only if the break is intentional"
    );
}

#[test]
fn schema_version_is_pinned() {
    assert_eq!(SCHEMA, "h2campaign-v1");
}

#[test]
fn row_layout_is_pinned() {
    // The row prefix (`r|i=<index>|f=<family code>|`) and the embedded
    // report line's leading field are part of the v1 schema.
    let population = Population::new(ExperimentSpec::first(), 0.001);
    let site = population.site(3);
    let row = CampaignRow {
        index: 3,
        family: site.family,
        report: h2scope::H2Scope::new().survey(&site.target()),
    };
    let line = row.encode();
    let prefix = format!("r|i=3|f={}|site=site-3.top1m|", site.family.code());
    assert!(
        line.starts_with(&prefix),
        "row line {line:?} lost its v1 prefix {prefix:?}"
    );
    assert_eq!(CampaignRow::decode(&line).expect("round-trip"), row);
}
