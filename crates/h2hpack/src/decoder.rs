//! HPACK decoder.

// h2check: allow-file(index) — wire decode hot path; every index follows an explicit length check

use crate::error::HpackDecodeError;
use crate::huffman;
use crate::integer;
use crate::table::{static_entry, DynamicTable, Header, STATIC_TABLE_LEN};

/// A stateful HPACK decoder for one direction of one connection.
#[derive(Debug, Clone)]
pub struct Decoder {
    table: DynamicTable,
}

impl Default for Decoder {
    fn default() -> Decoder {
        Decoder::new()
    }
}

impl Decoder {
    /// Creates a decoder with the protocol-default table size (4,096).
    pub fn new() -> Decoder {
        Decoder::with_table_size(crate::DEFAULT_TABLE_SIZE)
    }

    /// Creates a decoder whose dynamic table is capped at `max_size`
    /// octets (the value this endpoint announced in
    /// `SETTINGS_HEADER_TABLE_SIZE`).
    pub fn with_table_size(max_size: u32) -> Decoder {
        Decoder {
            table: DynamicTable::new(max_size),
        }
    }

    /// Read-only view of the dynamic table.
    pub fn table(&self) -> &DynamicTable {
        &self.table
    }

    /// Updates the SETTINGS-level table ceiling.
    pub fn set_protocol_max_table_size(&mut self, max: u32) {
        self.table.set_protocol_max_size(max);
    }

    /// Decodes one complete header block into a header list.
    ///
    /// # Errors
    ///
    /// Any [`HpackDecodeError`]; per RFC 7541 §2.2 a failure leaves the
    /// compression context undefined, so callers must treat it as a
    /// connection-level `COMPRESSION_ERROR`.
    pub fn decode_block(&mut self, mut buf: &[u8]) -> Result<Vec<Header>, HpackDecodeError> {
        let mut headers = Vec::new();
        let mut seen_field = false;
        while let Some(&first) = buf.first() {
            if first & 0b1000_0000 != 0 {
                // Indexed header field.
                let (index, used) = integer::decode(buf, 7)?;
                buf = &buf[used..];
                headers.push(self.indexed(index)?);
                seen_field = true;
            } else if first & 0b0100_0000 != 0 {
                // Literal with incremental indexing.
                let (header, used) = self.literal(buf, 6)?;
                buf = &buf[used..];
                self.table.insert(header.clone());
                headers.push(header);
                seen_field = true;
            } else if first & 0b0010_0000 != 0 {
                // Dynamic table size update.
                if seen_field {
                    return Err(HpackDecodeError::LateTableSizeUpdate);
                }
                let (size, used) = integer::decode(buf, 5)?;
                buf = &buf[used..];
                let max = self.table.protocol_max_size();
                if size > u64::from(max) {
                    return Err(HpackDecodeError::TableSizeUpdateTooLarge {
                        requested: size as u32,
                        max,
                    });
                }
                self.table.set_max_size(size as u32);
            } else {
                // Literal without indexing (0000) or never indexed (0001).
                let (header, used) = self.literal(buf, 4)?;
                buf = &buf[used..];
                headers.push(header);
                seen_field = true;
            }
        }
        Ok(headers)
    }

    fn indexed(&self, index: u64) -> Result<Header, HpackDecodeError> {
        if index == 0 {
            return Err(HpackDecodeError::InvalidIndex(0));
        }
        let idx = index as usize;
        if idx <= STATIC_TABLE_LEN {
            return static_entry(idx).ok_or(HpackDecodeError::InvalidIndex(index));
        }
        self.table
            .get(idx)
            .cloned()
            .ok_or(HpackDecodeError::InvalidIndex(index))
    }

    fn literal(&self, buf: &[u8], prefix: u8) -> Result<(Header, usize), HpackDecodeError> {
        let (name_index, mut used) = integer::decode(buf, prefix)?;
        let name = if name_index == 0 {
            let (name, n) = self.string(&buf[used..])?;
            used += n;
            String::from_utf8(name).map_err(|_| HpackDecodeError::InvalidHeaderName)?
        } else {
            self.indexed(name_index)?.name
        };
        let (value, n) = self.string(&buf[used..])?;
        used += n;
        let value = String::from_utf8(value).map_err(|_| HpackDecodeError::InvalidHeaderName)?;
        Ok((Header::new(name, value), used))
    }

    fn string(&self, buf: &[u8]) -> Result<(Vec<u8>, usize), HpackDecodeError> {
        let &first = buf.first().ok_or(HpackDecodeError::Truncated)?;
        let huffman_coded = first & 0b1000_0000 != 0;
        let (len, used) = integer::decode(buf, 7)?;
        let len = len as usize;
        let end = used
            .checked_add(len)
            .ok_or(HpackDecodeError::IntegerOverflow)?;
        if buf.len() < end {
            return Err(HpackDecodeError::Truncated);
        }
        let raw = &buf[used..end];
        let bytes = if huffman_coded {
            huffman::decode(raw)?
        } else {
            raw.to_vec()
        };
        Ok((bytes, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderOptions, IndexingPolicy};

    fn h(name: &str, value: &str) -> Header {
        Header::new(name, value)
    }

    /// RFC 7541 §C.3: three successive request blocks without Huffman.
    #[test]
    fn rfc_c3_request_examples() {
        let mut dec = Decoder::new();
        // C.3.1 first request.
        let block1 = [
            0x82, 0x86, 0x84, 0x41, 0x0f, 0x77, 0x77, 0x77, 0x2e, 0x65, 0x78, 0x61, 0x6d, 0x70,
            0x6c, 0x65, 0x2e, 0x63, 0x6f, 0x6d,
        ];
        let got = dec.decode_block(&block1).unwrap();
        assert_eq!(
            got,
            vec![
                h(":method", "GET"),
                h(":scheme", "http"),
                h(":path", "/"),
                h(":authority", "www.example.com"),
            ]
        );
        assert_eq!(dec.table().size(), 57);

        // C.3.2 second request reuses the dynamic entry.
        let block2 = [
            0x82, 0x86, 0x84, 0xbe, 0x58, 0x08, 0x6e, 0x6f, 0x2d, 0x63, 0x61, 0x63, 0x68, 0x65,
        ];
        let got = dec.decode_block(&block2).unwrap();
        assert_eq!(got[3], h(":authority", "www.example.com"));
        assert_eq!(got[4], h("cache-control", "no-cache"));
        assert_eq!(dec.table().size(), 110);

        // C.3.3 third request.
        let block3 = [
            0x82, 0x87, 0x85, 0xbf, 0x40, 0x0a, 0x63, 0x75, 0x73, 0x74, 0x6f, 0x6d, 0x2d, 0x6b,
            0x65, 0x79, 0x0c, 0x63, 0x75, 0x73, 0x74, 0x6f, 0x6d, 0x2d, 0x76, 0x61, 0x6c, 0x75,
            0x65,
        ];
        let got = dec.decode_block(&block3).unwrap();
        assert_eq!(
            got,
            vec![
                h(":method", "GET"),
                h(":scheme", "https"),
                h(":path", "/index.html"),
                h(":authority", "www.example.com"),
                h("custom-key", "custom-value"),
            ]
        );
        assert_eq!(dec.table().size(), 164);
        assert_eq!(dec.table().len(), 3);
    }

    /// RFC 7541 §C.4: the same requests with Huffman coding.
    #[test]
    fn rfc_c4_huffman_request_examples() {
        let mut dec = Decoder::new();
        let block1 = [
            0x82, 0x86, 0x84, 0x41, 0x8c, 0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab,
            0x90, 0xf4, 0xff,
        ];
        let got = dec.decode_block(&block1).unwrap();
        assert_eq!(got[3], h(":authority", "www.example.com"));
        assert_eq!(dec.table().size(), 57);
    }

    #[test]
    fn round_trip_with_all_policies() {
        let headers = vec![
            h(":status", "200"),
            h("server", "h2o/1.6.2"),
            h("content-type", "text/html; charset=utf-8"),
            h("x-custom", "value-\u{00e9}\u{00ff}"),
        ];
        for policy in [
            IndexingPolicy::Always,
            IndexingPolicy::Never,
            IndexingPolicy::NeverIndexed,
        ] {
            for use_huffman in [true, false] {
                let mut enc = Encoder::with_options(EncoderOptions {
                    indexing: policy,
                    use_huffman,
                    ..EncoderOptions::default()
                });
                let mut dec = Decoder::new();
                for _ in 0..3 {
                    let block = enc.encode_block(&headers);
                    let got = dec.decode_block(&block).unwrap();
                    assert_eq!(got, headers, "policy {policy:?} huffman {use_huffman}");
                }
            }
        }
    }

    #[test]
    fn index_zero_is_rejected() {
        let mut dec = Decoder::new();
        assert_eq!(
            dec.decode_block(&[0x80]),
            Err(HpackDecodeError::InvalidIndex(0))
        );
    }

    #[test]
    fn out_of_range_index_is_rejected() {
        let mut dec = Decoder::new();
        // Indexed field 62 with an empty dynamic table.
        let mut block = Vec::new();
        integer::decode(&[0], 7).ok(); // silence unused import lint path
        crate::integer::encode(62, 7, 0x80, &mut block);
        assert_eq!(
            dec.decode_block(&block),
            Err(HpackDecodeError::InvalidIndex(62))
        );
    }

    #[test]
    fn late_table_size_update_is_rejected() {
        let mut dec = Decoder::new();
        // Indexed :method GET, then a size update.
        let block = [0x82, 0x20];
        assert_eq!(
            dec.decode_block(&block),
            Err(HpackDecodeError::LateTableSizeUpdate)
        );
    }

    #[test]
    fn oversized_table_update_is_rejected() {
        let mut dec = Decoder::with_table_size(4_096);
        let mut block = Vec::new();
        crate::integer::encode(8_192, 5, 0b0010_0000, &mut block);
        assert_eq!(
            dec.decode_block(&block),
            Err(HpackDecodeError::TableSizeUpdateTooLarge {
                requested: 8_192,
                max: 4_096
            })
        );
    }

    #[test]
    fn truncated_literal_is_rejected() {
        let mut dec = Decoder::new();
        // Literal with incremental indexing, name length 10, but no bytes.
        let block = [0x40, 0x0a];
        assert_eq!(dec.decode_block(&block), Err(HpackDecodeError::Truncated));
    }

    #[test]
    fn decoder_respects_encoder_size_updates() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let headers = vec![h("a-header", "a-value"), h("b-header", "b-value")];
        dec.decode_block(&enc.encode_block(&headers)).unwrap();
        assert_eq!(dec.table().len(), 2);
        enc.resize_table(0);
        dec.decode_block(&enc.encode_block(&[h(":method", "GET")]))
            .unwrap();
        assert_eq!(dec.table().len(), 0, "size update 0 must flush the table");
    }
}
