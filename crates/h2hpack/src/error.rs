//! HPACK decoding errors.

use std::error::Error;
use std::fmt;

/// An error raised while decoding an HPACK header block (RFC 7541).
///
/// Any of these is a `COMPRESSION_ERROR` at the HTTP/2 layer: header
/// compression state can no longer be trusted, so the connection must be
/// torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpackDecodeError {
    /// Input ended in the middle of a representation.
    Truncated,
    /// A prefix integer exceeded the implementation limit (`u32::MAX`).
    IntegerOverflow,
    /// An indexed representation referenced index 0 or one past the end of
    /// the static + dynamic address space.
    InvalidIndex(u64),
    /// A Huffman-coded string contained the EOS symbol or invalid padding.
    InvalidHuffman,
    /// A dynamic-table-size update exceeded the limit set by SETTINGS.
    TableSizeUpdateTooLarge {
        /// Requested size.
        requested: u32,
        /// Maximum allowed by `SETTINGS_HEADER_TABLE_SIZE`.
        max: u32,
    },
    /// A dynamic-table-size update appeared after the first header field,
    /// which RFC 7541 §4.2 forbids.
    LateTableSizeUpdate,
    /// A header name contained bytes outside the token charset.
    InvalidHeaderName,
}

impl fmt::Display for HpackDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpackDecodeError::Truncated => f.write_str("truncated header block"),
            HpackDecodeError::IntegerOverflow => f.write_str("prefix integer overflow"),
            HpackDecodeError::InvalidIndex(idx) => write!(f, "invalid table index {idx}"),
            HpackDecodeError::InvalidHuffman => f.write_str("invalid huffman coding"),
            HpackDecodeError::TableSizeUpdateTooLarge { requested, max } => {
                write!(f, "table size update {requested} exceeds maximum {max}")
            }
            HpackDecodeError::LateTableSizeUpdate => {
                f.write_str("dynamic table size update after first header field")
            }
            HpackDecodeError::InvalidHeaderName => f.write_str("invalid header field name"),
        }
    }
}

impl Error for HpackDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            HpackDecodeError::Truncated,
            HpackDecodeError::IntegerOverflow,
            HpackDecodeError::InvalidIndex(99),
            HpackDecodeError::InvalidHuffman,
            HpackDecodeError::TableSizeUpdateTooLarge {
                requested: 8192,
                max: 4096,
            },
            HpackDecodeError::LateTableSizeUpdate,
            HpackDecodeError::InvalidHeaderName,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
