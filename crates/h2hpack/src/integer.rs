//! HPACK prefix-integer representation (RFC 7541 §5.1).

use crate::error::HpackDecodeError;

/// Encodes `value` with an N-bit prefix, OR-ing `first_byte_flags` into the
/// first octet (the representation discriminator bits).
///
/// # Panics
///
/// Panics if `prefix_bits` is not in `1..=8` (a programmer error — the
/// representations in RFC 7541 use prefixes of 4, 5, 6 and 7 bits).
pub fn encode(value: u64, prefix_bits: u8, first_byte_flags: u8, out: &mut Vec<u8>) {
    assert!((1..=8).contains(&prefix_bits), "prefix must be 1..=8 bits");
    let max_prefix = (1u64 << prefix_bits) - 1;
    if value < max_prefix {
        out.push(first_byte_flags | value as u8);
        return;
    }
    out.push(first_byte_flags | max_prefix as u8);
    let mut rest = value - max_prefix;
    while rest >= 128 {
        out.push((rest % 128) as u8 | 0x80);
        rest /= 128;
    }
    out.push(rest as u8);
}

/// Decodes an N-bit-prefix integer from the front of `buf`.
///
/// Returns the value and the number of octets consumed.
///
/// # Errors
///
/// Returns [`HpackDecodeError::Truncated`] if the continuation bytes run
/// out, or [`HpackDecodeError::IntegerOverflow`] if the value exceeds
/// `u32::MAX` (far beyond any legal HPACK field; RFC 7541 §5.1 lets
/// implementations set limits).
pub fn decode(buf: &[u8], prefix_bits: u8) -> Result<(u64, usize), HpackDecodeError> {
    assert!((1..=8).contains(&prefix_bits), "prefix must be 1..=8 bits");
    let (&first, rest) = buf.split_first().ok_or(HpackDecodeError::Truncated)?;
    let max_prefix = (1u64 << prefix_bits) - 1;
    let mut value = u64::from(first) & max_prefix;
    if value < max_prefix {
        return Ok((value, 1));
    }
    let mut shift = 0u32;
    for (i, &byte) in rest.iter().enumerate() {
        let chunk = u64::from(byte & 0x7f);
        value = value
            .checked_add(
                chunk
                    .checked_shl(shift)
                    .ok_or(HpackDecodeError::IntegerOverflow)?,
            )
            .ok_or(HpackDecodeError::IntegerOverflow)?;
        if value > u64::from(u32::MAX) {
            return Err(HpackDecodeError::IntegerOverflow);
        }
        if byte & 0x80 == 0 {
            return Ok((value, i + 2));
        }
        shift += 7;
    }
    Err(HpackDecodeError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_example_10_with_5_bit_prefix() {
        // RFC 7541 §C.1.1: encoding 10 with a 5-bit prefix gives 0b01010.
        let mut out = Vec::new();
        encode(10, 5, 0, &mut out);
        assert_eq!(out, vec![0b01010]);
        assert_eq!(decode(&out, 5).unwrap(), (10, 1));
    }

    #[test]
    fn rfc_example_1337_with_5_bit_prefix() {
        // RFC 7541 §C.1.2.
        let mut out = Vec::new();
        encode(1337, 5, 0, &mut out);
        assert_eq!(out, vec![0b11111, 0b1001_1010, 0b0000_1010]);
        assert_eq!(decode(&out, 5).unwrap(), (1337, 3));
    }

    #[test]
    fn rfc_example_42_with_8_bit_prefix() {
        // RFC 7541 §C.1.3: 42 fits directly into one octet.
        let mut out = Vec::new();
        encode(42, 8, 0, &mut out);
        assert_eq!(out, vec![42]);
        assert_eq!(decode(&out, 8).unwrap(), (42, 1));
    }

    #[test]
    fn flags_are_preserved_in_first_octet() {
        let mut out = Vec::new();
        encode(3, 6, 0b0100_0000, &mut out);
        assert_eq!(out, vec![0b0100_0011]);
    }

    #[test]
    fn boundary_values_round_trip() {
        for prefix in 1u8..=8 {
            let max_prefix = (1u64 << prefix) - 1;
            for value in [
                0,
                1,
                max_prefix - 1,
                max_prefix,
                max_prefix + 1,
                127,
                128,
                16_383,
                u64::from(u32::MAX),
            ] {
                if value == 0 && max_prefix == 0 {
                    continue;
                }
                let mut out = Vec::new();
                encode(value, prefix, 0, &mut out);
                let (decoded, used) = decode(&out, prefix).unwrap();
                assert_eq!(decoded, value, "prefix {prefix} value {value}");
                assert_eq!(used, out.len());
            }
        }
    }

    #[test]
    fn truncated_continuation_is_detected() {
        let mut out = Vec::new();
        encode(1337, 5, 0, &mut out);
        assert_eq!(decode(&out[..2], 5), Err(HpackDecodeError::Truncated));
        assert_eq!(decode(&[], 5), Err(HpackDecodeError::Truncated));
    }

    #[test]
    fn overflow_is_detected() {
        // 0x1f then endless 0xff continuations overflows past u32.
        let buf = [0x1f, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert_eq!(decode(&buf, 5), Err(HpackDecodeError::IntegerOverflow));
    }
}
