//! HPACK encoder with configurable indexing policy.

use crate::huffman;
use crate::integer;
use crate::table::{static_lookup, DynamicTable, Header};

/// How the encoder uses the dynamic table.
///
/// The policy knob exists because the paper's Figures 4 and 5 hinge on
/// exactly this implementation difference: GSE/LiteSpeed index response
/// headers aggressively (compression ratio < 0.3 across repeated
/// responses), while Nginx and Tengine never insert response fields into
/// the dynamic table, so every repeated response header costs the same and
/// the measured ratio stays at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexingPolicy {
    /// Insert every literal into the dynamic table (incremental indexing).
    #[default]
    Always,
    /// Never insert into the dynamic table; emit literals without
    /// indexing. Static-table and previously indexed entries are still
    /// referenced by index.
    Never,
    /// Emit literals as never-indexed (RFC 7541 §6.2.3), for sensitive
    /// fields.
    NeverIndexed,
}

/// Options controlling an [`Encoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderOptions {
    /// Dynamic table budget (both sides default to 4,096).
    pub max_table_size: u32,
    /// Whether string literals are Huffman-coded.
    pub use_huffman: bool,
    /// Dynamic-table usage policy.
    pub indexing: IndexingPolicy,
}

impl Default for EncoderOptions {
    fn default() -> EncoderOptions {
        EncoderOptions {
            max_table_size: crate::DEFAULT_TABLE_SIZE,
            use_huffman: true,
            indexing: IndexingPolicy::Always,
        }
    }
}

/// A stateful HPACK encoder for one direction of one connection.
#[derive(Debug, Clone)]
pub struct Encoder {
    table: DynamicTable,
    options: EncoderOptions,
    /// A table-size update to emit at the start of the next block.
    pending_size_update: Option<u32>,
}

impl Default for Encoder {
    fn default() -> Encoder {
        Encoder::new()
    }
}

impl Encoder {
    /// Creates an encoder with default options.
    pub fn new() -> Encoder {
        Encoder::with_options(EncoderOptions::default())
    }

    /// Creates an encoder with explicit options.
    pub fn with_options(options: EncoderOptions) -> Encoder {
        Encoder {
            table: DynamicTable::new(options.max_table_size),
            options,
            pending_size_update: None,
        }
    }

    /// The indexing policy in force.
    pub fn indexing(&self) -> IndexingPolicy {
        self.options.indexing
    }

    /// Replaces the indexing policy.
    pub fn set_indexing(&mut self, indexing: IndexingPolicy) {
        self.options.indexing = indexing;
    }

    /// Read-only view of the dynamic table (useful in tests and probes).
    pub fn table(&self) -> &DynamicTable {
        &self.table
    }

    /// Schedules a dynamic-table-size change, emitted as a size-update
    /// instruction at the start of the next encoded block (RFC 7541 §4.2).
    pub fn resize_table(&mut self, max_size: u32) {
        self.table.set_max_size(max_size);
        self.pending_size_update = Some(max_size);
    }

    /// Encodes a complete header list into one header block, appending to
    /// `out` (not cleared first) so callers can reuse a scratch buffer.
    pub fn encode_block_into<'a, I>(&mut self, headers: I, out: &mut Vec<u8>)
    where
        I: IntoIterator<Item = &'a Header>,
    {
        if let Some(size) = self.pending_size_update.take() {
            integer::encode(u64::from(size), 5, 0b0010_0000, out);
        }
        for header in headers {
            self.encode_field(header, out);
        }
    }

    /// Encodes a complete header list into one freshly allocated block.
    pub fn encode_block<'a, I>(&mut self, headers: I) -> Vec<u8>
    where
        I: IntoIterator<Item = &'a Header>,
    {
        let mut out = Vec::new();
        self.encode_block_into(headers, &mut out);
        out
    }

    fn encode_field(&mut self, header: &Header, out: &mut Vec<u8>) {
        // Exact match in static or dynamic table -> indexed representation.
        let static_hit = static_lookup(&header.name, &header.value);
        if let Some((index, true)) = static_hit {
            integer::encode(index as u64, 7, 0b1000_0000, out);
            return;
        }
        let dynamic_hit = self.table.lookup(&header.name, &header.value);
        if let Some((index, true)) = dynamic_hit {
            integer::encode(index as u64, 7, 0b1000_0000, out);
            return;
        }
        // Name index if available (prefer the static table for stability).
        let name_index = match (static_hit, dynamic_hit) {
            (Some((i, _)), _) => Some(i),
            (None, Some((i, _))) => Some(i),
            (None, None) => None,
        };
        let (prefix, flags, add_to_table) = match self.options.indexing {
            IndexingPolicy::Always => (6, 0b0100_0000, true),
            IndexingPolicy::Never => (4, 0b0000_0000, false),
            IndexingPolicy::NeverIndexed => (4, 0b0001_0000, false),
        };
        match name_index {
            Some(index) => integer::encode(index as u64, prefix, flags, out),
            None => {
                integer::encode(0, prefix, flags, out);
                self.encode_string(header.name.as_bytes(), out);
            }
        }
        self.encode_string(header.value.as_bytes(), out);
        if add_to_table {
            self.table.insert(header.clone());
        }
    }

    fn encode_string(&self, data: &[u8], out: &mut Vec<u8>) {
        if self.options.use_huffman && huffman::encoded_len(data) < data.len() {
            integer::encode(huffman::encoded_len(data) as u64, 7, 0b1000_0000, out);
            huffman::encode(data, out);
        } else {
            integer::encode(data.len() as u64, 7, 0, out);
            out.extend_from_slice(data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;

    fn h(name: &str, value: &str) -> Header {
        Header::new(name, value)
    }

    #[test]
    fn static_exact_match_is_one_byte() {
        let mut enc = Encoder::new();
        let block = enc.encode_block(&[h(":method", "GET")]);
        assert_eq!(block, vec![0x82]); // indexed, static index 2
    }

    #[test]
    fn repeated_custom_header_shrinks_with_indexing() {
        let mut enc = Encoder::new();
        let headers = [h("x-request-id", "abcdef0123456789")];
        let first = enc.encode_block(&headers);
        let second = enc.encode_block(&headers);
        assert!(second.len() < first.len());
        assert_eq!(second.len(), 1, "fully indexed on repeat");
    }

    #[test]
    fn never_policy_keeps_block_size_constant() {
        let mut enc = Encoder::with_options(EncoderOptions {
            indexing: IndexingPolicy::Never,
            ..EncoderOptions::default()
        });
        let headers = [
            h("server", "nginx/1.9.15"),
            h("x-frame-options", "SAMEORIGIN"),
        ];
        let first = enc.encode_block(&headers);
        let second = enc.encode_block(&headers);
        let third = enc.encode_block(&headers);
        assert_eq!(first.len(), second.len());
        assert_eq!(second.len(), third.len());
        assert!(
            enc.table().is_empty(),
            "never policy must not grow the table"
        );
    }

    #[test]
    fn never_indexed_blocks_decode_with_flag_preserved_semantics() {
        let mut enc = Encoder::with_options(EncoderOptions {
            indexing: IndexingPolicy::NeverIndexed,
            ..EncoderOptions::default()
        });
        let mut dec = Decoder::new();
        let block = enc.encode_block(&[h("authorization", "secret")]);
        assert_eq!(block[0] & 0xf0, 0x10, "never-indexed discriminator");
        let decoded = dec.decode_block(&block).unwrap();
        assert_eq!(decoded, vec![h("authorization", "secret")]);
    }

    #[test]
    fn resize_emits_size_update_at_block_start() {
        let mut enc = Encoder::new();
        enc.resize_table(256);
        let block = enc.encode_block(&[h(":method", "GET")]);
        assert_eq!(block[0] & 0b1110_0000, 0b0010_0000, "size update first");
        let mut dec = Decoder::new();
        assert!(dec.decode_block(&block).is_ok());
    }

    #[test]
    fn huffman_disabled_emits_raw_strings() {
        let mut enc = Encoder::with_options(EncoderOptions {
            use_huffman: false,
            ..EncoderOptions::default()
        });
        let block = enc.encode_block(&[h("x", "hello")]);
        let text: Vec<u8> = block
            .windows(5)
            .filter(|w| w == b"hello")
            .flatten()
            .copied()
            .collect();
        assert_eq!(text, b"hello");
    }
}
