//! Huffman coding for HPACK string literals (RFC 7541 §5.2, Appendix B).

// h2check: allow-file(index) — table-driven decode; indices bounded by the Appendix B table arity

use std::sync::OnceLock;

use crate::error::HpackDecodeError;

/// `(code, bit-length)` for each of the 256 octets plus EOS, exactly as
/// listed in RFC 7541 Appendix B.
pub const CODES: [(u32, u8); 257] = [
    (0x1ff8, 13),
    (0x7fffd8, 23),
    (0xfffffe2, 28),
    (0xfffffe3, 28),
    (0xfffffe4, 28),
    (0xfffffe5, 28),
    (0xfffffe6, 28),
    (0xfffffe7, 28),
    (0xfffffe8, 28),
    (0xffffea, 24),
    (0x3ffffffc, 30),
    (0xfffffe9, 28),
    (0xfffffea, 28),
    (0x3ffffffd, 30),
    (0xfffffeb, 28),
    (0xfffffec, 28),
    (0xfffffed, 28),
    (0xfffffee, 28),
    (0xfffffef, 28),
    (0xffffff0, 28),
    (0xffffff1, 28),
    (0xffffff2, 28),
    (0x3ffffffe, 30),
    (0xffffff3, 28),
    (0xffffff4, 28),
    (0xffffff5, 28),
    (0xffffff6, 28),
    (0xffffff7, 28),
    (0xffffff8, 28),
    (0xffffff9, 28),
    (0xffffffa, 28),
    (0xffffffb, 28),
    (0x14, 6),
    (0x3f8, 10),
    (0x3f9, 10),
    (0xffa, 12),
    (0x1ff9, 13),
    (0x15, 6),
    (0xf8, 8),
    (0x7fa, 11),
    (0x3fa, 10),
    (0x3fb, 10),
    (0xf9, 8),
    (0x7fb, 11),
    (0xfa, 8),
    (0x16, 6),
    (0x17, 6),
    (0x18, 6),
    (0x0, 5),
    (0x1, 5),
    (0x2, 5),
    (0x19, 6),
    (0x1a, 6),
    (0x1b, 6),
    (0x1c, 6),
    (0x1d, 6),
    (0x1e, 6),
    (0x1f, 6),
    (0x5c, 7),
    (0xfb, 8),
    (0x7ffc, 15),
    (0x20, 6),
    (0xffb, 12),
    (0x3fc, 10),
    (0x1ffa, 13),
    (0x21, 6),
    (0x5d, 7),
    (0x5e, 7),
    (0x5f, 7),
    (0x60, 7),
    (0x61, 7),
    (0x62, 7),
    (0x63, 7),
    (0x64, 7),
    (0x65, 7),
    (0x66, 7),
    (0x67, 7),
    (0x68, 7),
    (0x69, 7),
    (0x6a, 7),
    (0x6b, 7),
    (0x6c, 7),
    (0x6d, 7),
    (0x6e, 7),
    (0x6f, 7),
    (0x70, 7),
    (0x71, 7),
    (0x72, 7),
    (0xfc, 8),
    (0x73, 7),
    (0xfd, 8),
    (0x1ffb, 13),
    (0x7fff0, 19),
    (0x1ffc, 13),
    (0x3ffc, 14),
    (0x22, 6),
    (0x7ffd, 15),
    (0x3, 5),
    (0x23, 6),
    (0x4, 5),
    (0x24, 6),
    (0x5, 5),
    (0x25, 6),
    (0x26, 6),
    (0x27, 6),
    (0x6, 5),
    (0x74, 7),
    (0x75, 7),
    (0x28, 6),
    (0x29, 6),
    (0x2a, 6),
    (0x7, 5),
    (0x2b, 6),
    (0x76, 7),
    (0x2c, 6),
    (0x8, 5),
    (0x9, 5),
    (0x2d, 6),
    (0x77, 7),
    (0x78, 7),
    (0x79, 7),
    (0x7a, 7),
    (0x7b, 7),
    (0x7ffe, 15),
    (0x7fc, 11),
    (0x3ffd, 14),
    (0x1ffd, 13),
    (0xffffffc, 28),
    (0xfffe6, 20),
    (0x3fffd2, 22),
    (0xfffe7, 20),
    (0xfffe8, 20),
    (0x3fffd3, 22),
    (0x3fffd4, 22),
    (0x3fffd5, 22),
    (0x7fffd9, 23),
    (0x3fffd6, 22),
    (0x7fffda, 23),
    (0x7fffdb, 23),
    (0x7fffdc, 23),
    (0x7fffdd, 23),
    (0x7fffde, 23),
    (0xffffeb, 24),
    (0x7fffdf, 23),
    (0xffffec, 24),
    (0xffffed, 24),
    (0x3fffd7, 22),
    (0x7fffe0, 23),
    (0xffffee, 24),
    (0x7fffe1, 23),
    (0x7fffe2, 23),
    (0x7fffe3, 23),
    (0x7fffe4, 23),
    (0x1fffdc, 21),
    (0x3fffd8, 22),
    (0x7fffe5, 23),
    (0x3fffd9, 22),
    (0x7fffe6, 23),
    (0x7fffe7, 23),
    (0xffffef, 24),
    (0x3fffda, 22),
    (0x1fffdd, 21),
    (0xfffe9, 20),
    (0x3fffdb, 22),
    (0x3fffdc, 22),
    (0x7fffe8, 23),
    (0x7fffe9, 23),
    (0x1fffde, 21),
    (0x7fffea, 23),
    (0x3fffdd, 22),
    (0x3fffde, 22),
    (0xfffff0, 24),
    (0x1fffdf, 21),
    (0x3fffdf, 22),
    (0x7fffeb, 23),
    (0x7fffec, 23),
    (0x1fffe0, 21),
    (0x1fffe1, 21),
    (0x3fffe0, 22),
    (0x1fffe2, 21),
    (0x7fffed, 23),
    (0x3fffe1, 22),
    (0x7fffee, 23),
    (0x7fffef, 23),
    (0xfffea, 20),
    (0x3fffe2, 22),
    (0x3fffe3, 22),
    (0x3fffe4, 22),
    (0x7ffff0, 23),
    (0x3fffe5, 22),
    (0x3fffe6, 22),
    (0x7ffff1, 23),
    (0x3ffffe0, 26),
    (0x3ffffe1, 26),
    (0xfffeb, 20),
    (0x7fff1, 19),
    (0x3fffe7, 22),
    (0x7ffff2, 23),
    (0x3fffe8, 22),
    (0x1ffffec, 25),
    (0x3ffffe2, 26),
    (0x3ffffe3, 26),
    (0x3ffffe4, 26),
    (0x7ffffde, 27),
    (0x7ffffdf, 27),
    (0x3ffffe5, 26),
    (0xfffff1, 24),
    (0x1ffffed, 25),
    (0x7fff2, 19),
    (0x1fffe3, 21),
    (0x3ffffe6, 26),
    (0x7ffffe0, 27),
    (0x7ffffe1, 27),
    (0x3ffffe7, 26),
    (0x7ffffe2, 27),
    (0xfffff2, 24),
    (0x1fffe4, 21),
    (0x1fffe5, 21),
    (0x3ffffe8, 26),
    (0x3ffffe9, 26),
    (0xffffffd, 28),
    (0x7ffffe3, 27),
    (0x7ffffe4, 27),
    (0x7ffffe5, 27),
    (0xfffec, 20),
    (0xfffff3, 24),
    (0xfffed, 20),
    (0x1fffe6, 21),
    (0x3fffe9, 22),
    (0x1fffe7, 21),
    (0x1fffe8, 21),
    (0x7ffff3, 23),
    (0x3fffea, 22),
    (0x3fffeb, 22),
    (0x1ffffee, 25),
    (0x1ffffef, 25),
    (0xfffff4, 24),
    (0xfffff5, 24),
    (0x3ffffea, 26),
    (0x7ffff4, 23),
    (0x3ffffeb, 26),
    (0x7ffffe6, 27),
    (0x3ffffec, 26),
    (0x3ffffed, 26),
    (0x7ffffe7, 27),
    (0x7ffffe8, 27),
    (0x7ffffe9, 27),
    (0x7ffffea, 27),
    (0x7ffffeb, 27),
    (0xffffffe, 28),
    (0x7ffffec, 27),
    (0x7ffffed, 27),
    (0x7ffffee, 27),
    (0x7ffffef, 27),
    (0x7fffff0, 27),
    (0x3ffffee, 26),
    (0x3fffffff, 30),
];

/// Index of the EOS symbol in [`CODES`].
pub const EOS: usize = 256;

/// Returns the number of octets `input` occupies once Huffman-coded.
pub fn encoded_len(input: &[u8]) -> usize {
    let bits: u64 = input.iter().map(|&b| u64::from(CODES[b as usize].1)).sum();
    (bits as usize).div_ceil(8)
}

/// Huffman-encodes `input`, padding the final octet with the EOS prefix
/// (all ones) per RFC 7541 §5.2.
pub fn encode(input: &[u8], out: &mut Vec<u8>) {
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &byte in input {
        let (code, len) = CODES[byte as usize];
        acc = (acc << len) | u64::from(code);
        acc_bits += u32::from(len);
        while acc_bits >= 8 {
            acc_bits -= 8;
            out.push((acc >> acc_bits) as u8);
        }
    }
    if acc_bits > 0 {
        // Pad with the most significant bits of EOS (all ones).
        let pad = 8 - acc_bits;
        out.push(((acc << pad) as u8) | ((1u16 << pad) - 1) as u8);
    }
}

/// A flattened binary trie for decoding; `nodes[i]` holds the children for
/// bit 0 and bit 1, each either another node index or a decoded symbol.
struct DecodeTrie {
    nodes: Vec<[Transition; 2]>,
}

#[derive(Clone, Copy, PartialEq)]
enum Transition {
    Missing,
    Node(u16),
    Symbol(u16),
}

fn trie() -> &'static DecodeTrie {
    static TRIE: OnceLock<DecodeTrie> = OnceLock::new();
    TRIE.get_or_init(|| {
        let mut nodes = vec![[Transition::Missing; 2]];
        for (symbol, &(code, len)) in CODES.iter().enumerate() {
            let mut node = 0usize;
            for depth in (0..len).rev() {
                let bit = ((code >> depth) & 1) as usize;
                if depth == 0 {
                    nodes[node][bit] = Transition::Symbol(symbol as u16);
                } else {
                    node = match nodes[node][bit] {
                        Transition::Node(next) => next as usize,
                        Transition::Missing => {
                            nodes.push([Transition::Missing; 2]);
                            let next = (nodes.len() - 1) as u16;
                            nodes[node][bit] = Transition::Node(next);
                            next as usize
                        }
                        // h2check: allow(panic) — Appendix B is a prefix code; collisions cannot occur
                        Transition::Symbol(_) => unreachable!("prefix codes never collide"),
                    };
                }
            }
        }
        DecodeTrie { nodes }
    })
}

/// Decodes a Huffman-coded string.
///
/// # Errors
///
/// Returns [`HpackDecodeError::InvalidHuffman`] when the input contains the
/// EOS symbol, when padding is longer than seven bits, or when padding does
/// not match the most significant bits of EOS (RFC 7541 §5.2).
pub fn decode(input: &[u8]) -> Result<Vec<u8>, HpackDecodeError> {
    let trie = trie();
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut node = 0usize;
    let mut bits_since_symbol = 0u32;
    let mut all_ones_since_symbol = true;
    for &byte in input {
        for shift in (0..8).rev() {
            let bit = usize::from((byte >> shift) & 1);
            bits_since_symbol += 1;
            all_ones_since_symbol &= bit == 1;
            match trie.nodes[node][bit] {
                Transition::Symbol(sym) => {
                    if sym as usize == EOS {
                        return Err(HpackDecodeError::InvalidHuffman);
                    }
                    out.push(sym as u8);
                    node = 0;
                    bits_since_symbol = 0;
                    all_ones_since_symbol = true;
                }
                Transition::Node(next) => node = next as usize,
                Transition::Missing => return Err(HpackDecodeError::InvalidHuffman),
            }
        }
    }
    // Whatever remains must be a strict prefix of EOS: at most 7 bits, all
    // ones.
    if bits_since_symbol > 7 || !all_ones_since_symbol {
        return Err(HpackDecodeError::InvalidHuffman);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_is_sound() {
        assert_eq!(CODES.len(), 257);
        for &(code, len) in &CODES {
            assert!((5..=30).contains(&len));
            assert!(u64::from(code) < (1u64 << len), "code fits in its length");
        }
        // Kraft equality: a complete prefix code sums to exactly 1.
        let kraft: f64 = CODES
            .iter()
            .map(|&(_, len)| 2f64.powi(-i32::from(len)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft sum {kraft}");
    }

    #[test]
    fn rfc_appendix_c4_examples() {
        // RFC 7541 §C.4.1: "www.example.com".
        let mut out = Vec::new();
        encode(b"www.example.com", &mut out);
        assert_eq!(
            out,
            [0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab, 0x90, 0xf4, 0xff]
        );
        // §C.4.2: "no-cache".
        let mut out = Vec::new();
        encode(b"no-cache", &mut out);
        assert_eq!(out, [0xa8, 0xeb, 0x10, 0x64, 0x9c, 0xbf]);
        // §C.6.1: "302".
        let mut out = Vec::new();
        encode(b"302", &mut out);
        assert_eq!(out, [0x64, 0x02]);
        // §C.6.1: "private".
        let mut out = Vec::new();
        encode(b"private", &mut out);
        assert_eq!(out, [0xae, 0xc3, 0x77, 0x1a, 0x4b]);
    }

    #[test]
    fn all_bytes_round_trip() {
        let input: Vec<u8> = (0u8..=255).collect();
        let mut coded = Vec::new();
        encode(&input, &mut coded);
        assert_eq!(decode(&coded).unwrap(), input);
    }

    #[test]
    fn empty_string_round_trips() {
        let mut coded = Vec::new();
        encode(b"", &mut coded);
        assert!(coded.is_empty());
        assert_eq!(decode(&coded).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn encoded_len_matches_encode() {
        for input in [&b""[..], b"a", b"www.example.com", b"\x00\x01\xff"] {
            let mut coded = Vec::new();
            encode(input, &mut coded);
            assert_eq!(coded.len(), encoded_len(input));
        }
    }

    #[test]
    fn eos_in_stream_is_rejected() {
        // 30 bits of ones = EOS followed by 2 padding ones: 0xff 0xff 0xff 0xff.
        assert_eq!(
            decode(&[0xff, 0xff, 0xff, 0xff]),
            Err(HpackDecodeError::InvalidHuffman)
        );
    }

    #[test]
    fn bad_padding_is_rejected() {
        // 'a' = 00011 (5 bits); pad with zeros instead of ones.
        assert_eq!(
            decode(&[0b0001_1000]),
            Err(HpackDecodeError::InvalidHuffman)
        );
    }

    #[test]
    fn overlong_padding_is_rejected() {
        // A full octet of ones after a symbol boundary is 8 bits of padding.
        let mut coded = Vec::new();
        encode(b"0", &mut coded); // '0' = 00000, 5 bits -> 1 byte with 3 pad bits
        coded.push(0xff);
        assert_eq!(decode(&coded), Err(HpackDecodeError::InvalidHuffman));
    }

    #[test]
    fn valid_padding_is_accepted() {
        // 'a' = 00011 + 3 bits of ones padding = 0b00011111.
        assert_eq!(decode(&[0b0001_1111]).unwrap(), b"a");
    }
}
