//! The HPACK static table (RFC 7541 Appendix A) and dynamic table (§2.3.2,
//! §4).

use std::collections::VecDeque;

/// A header field: a name/value pair of opaque octets (kept as `String`
/// here because the probe and server layers only use ASCII header text).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Header {
    /// Field name, lowercase per HTTP/2 requirements.
    pub name: String,
    /// Field value.
    pub value: String,
}

impl Header {
    /// Creates a header field.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Header {
        Header {
            name: name.into(),
            value: value.into(),
        }
    }

    /// The HPACK size of this entry: name + value + 32 octets of overhead
    /// (RFC 7541 §4.1).
    pub fn hpack_size(&self) -> u32 {
        (self.name.len() + self.value.len() + 32) as u32
    }
}

impl<N: Into<String>, V: Into<String>> From<(N, V)> for Header {
    fn from((name, value): (N, V)) -> Header {
        Header::new(name, value)
    }
}

/// The 61-entry static table from RFC 7541 Appendix A, in index order
/// (index 1 is the first element).
pub const STATIC_TABLE: [(&str, &str); 61] = [
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// Number of static-table entries; dynamic entries start at index 62.
pub const STATIC_TABLE_LEN: usize = STATIC_TABLE.len();

/// Looks up a static table entry by 1-based index.
pub fn static_entry(index: usize) -> Option<Header> {
    STATIC_TABLE
        .get(index.checked_sub(1)?)
        .map(|&(n, v)| Header::new(n, v))
}

/// Finds the best static match for a field: `(index, value_matched)`.
pub fn static_lookup(name: &str, value: &str) -> Option<(usize, bool)> {
    let mut name_only = None;
    for (i, &(n, v)) in STATIC_TABLE.iter().enumerate() {
        if n == name {
            if v == value {
                return Some((i + 1, true));
            }
            if name_only.is_none() {
                name_only = Some((i + 1, false));
            }
        }
    }
    name_only
}

/// The HPACK dynamic table: a FIFO of recently indexed fields with a size
/// budget. Newest entry is index 62.
#[derive(Debug, Clone)]
pub struct DynamicTable {
    entries: VecDeque<Header>,
    size: u32,
    max_size: u32,
    /// Upper bound the decoder's peer fixed via SETTINGS; size updates may
    /// not exceed it.
    protocol_max_size: u32,
    /// Running count of entries evicted over the table's lifetime (size
    /// pressure, size updates, and §4.4 whole-table clears alike).
    evictions: u64,
}

impl DynamicTable {
    /// Creates a table with the given maximum size (both current and
    /// protocol ceiling).
    pub fn new(max_size: u32) -> DynamicTable {
        DynamicTable {
            entries: VecDeque::new(),
            size: 0,
            max_size,
            protocol_max_size: max_size,
            evictions: 0,
        }
    }

    /// Total entries evicted since the table was created.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Current occupancy in octets.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Current maximum size.
    pub fn max_size(&self) -> u32 {
        self.max_size
    }

    /// The ceiling fixed by SETTINGS_HEADER_TABLE_SIZE.
    pub fn protocol_max_size(&self) -> u32 {
        self.protocol_max_size
    }

    /// Raises or lowers the SETTINGS-level ceiling (e.g. after a SETTINGS
    /// exchange). Lowering it also clamps the current size.
    pub fn set_protocol_max_size(&mut self, max: u32) {
        self.protocol_max_size = max;
        if self.max_size > max {
            self.set_max_size(max);
        }
    }

    /// Applies a dynamic-table-size update (RFC 7541 §4.2), evicting as
    /// needed.
    pub fn set_max_size(&mut self, max: u32) {
        self.max_size = max;
        self.evict_to(max);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a field at the head of the table (index 62), evicting from
    /// the tail. An entry larger than the whole table empties it
    /// (RFC 7541 §4.4).
    pub fn insert(&mut self, header: Header) {
        let entry_size = header.hpack_size();
        if entry_size > self.max_size {
            self.evictions += self.entries.len() as u64;
            self.entries.clear();
            self.size = 0;
            return;
        }
        self.evict_to(self.max_size - entry_size);
        self.size += entry_size;
        self.entries.push_front(header);
    }

    /// Looks up an entry by absolute HPACK index (62-based).
    pub fn get(&self, index: usize) -> Option<&Header> {
        self.entries.get(index.checked_sub(STATIC_TABLE_LEN + 1)?)
    }

    /// Finds the best dynamic match: `(absolute_index, value_matched)`.
    pub fn lookup(&self, name: &str, value: &str) -> Option<(usize, bool)> {
        let mut name_only = None;
        for (i, h) in self.entries.iter().enumerate() {
            if h.name == name {
                if h.value == value {
                    return Some((STATIC_TABLE_LEN + 1 + i, true));
                }
                if name_only.is_none() {
                    name_only = Some((STATIC_TABLE_LEN + 1 + i, false));
                }
            }
        }
        name_only
    }

    fn evict_to(&mut self, budget: u32) {
        while self.size > budget {
            // h2check: allow(panic) — size > budget >= 0 implies a resident entry
            let evicted = self.entries.pop_back().expect("size > 0 implies entries");
            self.size -= evicted.hpack_size();
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_spot_checks() {
        assert_eq!(static_entry(1).unwrap(), Header::new(":authority", ""));
        assert_eq!(static_entry(2).unwrap(), Header::new(":method", "GET"));
        assert_eq!(static_entry(8).unwrap(), Header::new(":status", "200"));
        assert_eq!(static_entry(54).unwrap(), Header::new("server", ""));
        assert_eq!(
            static_entry(61).unwrap(),
            Header::new("www-authenticate", "")
        );
        assert_eq!(static_entry(0), None);
        assert_eq!(static_entry(62), None);
    }

    #[test]
    fn eviction_counter_tracks_all_eviction_paths() {
        let mut table = DynamicTable::new(100);
        assert_eq!(table.evictions(), 0);
        // Header::hpack_size = name + value + 32; "aa"+"bbbb" = 38 octets.
        table.insert(Header::new("aa", "bbbb"));
        table.insert(Header::new("aa", "bbbb"));
        assert_eq!(table.evictions(), 0);
        // Third insert (38*3 = 114 > 100) evicts one from the tail.
        table.insert(Header::new("aa", "bbbb"));
        assert_eq!(table.evictions(), 1);
        // A size update shrinking to one entry evicts one more.
        table.set_max_size(40);
        assert_eq!(table.evictions(), 2);
        // An entry larger than the table clears it (§4.4): +1 eviction.
        table.insert(Header::new("xxxxxxxxxxxxxxxx", "yyyyyyyyyyyyyyyy"));
        assert_eq!(table.len(), 0);
        assert_eq!(table.evictions(), 3);
    }

    #[test]
    fn static_lookup_prefers_exact_match() {
        assert_eq!(static_lookup(":method", "GET"), Some((2, true)));
        assert_eq!(static_lookup(":method", "PUT"), Some((2, false)));
        assert_eq!(static_lookup("x-custom", "y"), None);
    }

    #[test]
    fn entry_size_includes_32_byte_overhead() {
        // RFC 7541 §4.1 example sizes.
        assert_eq!(
            Header::new("custom-key", "custom-value").hpack_size(),
            10 + 12 + 32
        );
    }

    #[test]
    fn insert_evicts_oldest_first() {
        let mut table = DynamicTable::new(100);
        table.insert(Header::new("a", "1")); // 34
        table.insert(Header::new("b", "2")); // 34
        table.insert(Header::new("c", "3")); // 34 -> would be 102, evict "a"
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(62).unwrap().name, "c");
        assert_eq!(table.get(63).unwrap().name, "b");
        assert_eq!(table.get(64), None);
    }

    #[test]
    fn oversized_entry_clears_table() {
        let mut table = DynamicTable::new(40);
        table.insert(Header::new("a", "1"));
        assert_eq!(table.len(), 1);
        table.insert(Header::new("long-name", "long-value-that-overflows"));
        assert!(table.is_empty());
        assert_eq!(table.size(), 0);
    }

    #[test]
    fn size_update_evicts() {
        let mut table = DynamicTable::new(200);
        table.insert(Header::new("a", "1"));
        table.insert(Header::new("b", "2"));
        table.set_max_size(40);
        assert_eq!(table.len(), 1);
        assert_eq!(table.get(62).unwrap().name, "b");
    }

    #[test]
    fn lookup_returns_newest_exact_match() {
        let mut table = DynamicTable::new(1000);
        table.insert(Header::new("k", "old"));
        table.insert(Header::new("k", "new"));
        assert_eq!(table.lookup("k", "new"), Some((62, true)));
        assert_eq!(table.lookup("k", "old"), Some((63, true)));
        assert_eq!(table.lookup("k", "other"), Some((62, false)));
    }

    #[test]
    fn protocol_ceiling_clamps_current_max() {
        let mut table = DynamicTable::new(4096);
        table.insert(Header::new("a", "1"));
        table.set_protocol_max_size(0);
        assert_eq!(table.max_size(), 0);
        assert!(table.is_empty());
    }
}
