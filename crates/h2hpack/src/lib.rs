//! # h2hpack — HPACK header compression (RFC 7541)
//!
//! A from-scratch HPACK implementation: prefix integers, the full
//! 257-symbol Huffman code, the 61-entry static table, dynamic tables with
//! size accounting and eviction, a configurable [`Encoder`] and a strict
//! [`Decoder`].
//!
//! The encoder's [`IndexingPolicy`] models the implementation difference
//! the paper measures in Figures 4 and 5: servers that index response
//! headers compress repeated responses down to a few octets, while servers
//! that never index them (Nginx, Tengine) keep every response header block
//! the same size, which the paper observes as an HPACK compression ratio
//! of 1.
//!
//! ```
//! use h2hpack::{Decoder, Encoder, Header};
//!
//! # fn main() -> Result<(), h2hpack::HpackDecodeError> {
//! let mut encoder = Encoder::new();
//! let mut decoder = Decoder::new();
//! let headers = vec![Header::new(":status", "200"), Header::new("server", "GSE")];
//! let first = encoder.encode_block(&headers);
//! let second = encoder.encode_block(&headers);
//! assert!(second.len() < first.len()); // dynamic table at work
//! assert_eq!(decoder.decode_block(&first)?, headers);
//! assert_eq!(decoder.decode_block(&second)?, headers);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decoder;
pub mod encoder;
pub mod error;
pub mod huffman;
pub mod integer;
pub mod table;

pub use decoder::Decoder;
pub use encoder::{Encoder, EncoderOptions, IndexingPolicy};
pub use error::HpackDecodeError;
pub use table::{
    static_entry, static_lookup, DynamicTable, Header, STATIC_TABLE, STATIC_TABLE_LEN,
};

/// Protocol-default dynamic table size (RFC 7540 §6.5.2).
pub const DEFAULT_TABLE_SIZE: u32 = 4_096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_size_matches_rfc() {
        assert_eq!(DEFAULT_TABLE_SIZE, 4_096);
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Encoder>();
        assert_send_sync::<Decoder>();
        assert_send_sync::<Header>();
        assert_send_sync::<HpackDecodeError>();
    }
}
