//! RFC 7541 Appendix C.5 / C.6 conformance: the three-response flow with
//! a 256-octet dynamic table, which exercises eviction mid-connection.
//! The RFC documents the exact table contents and sizes after each
//! response; this test drives our encoder/decoder pair through the same
//! flow and checks every documented intermediate state.

use h2hpack::encoder::{Encoder, EncoderOptions};
use h2hpack::{Decoder, Header};

fn response1() -> Vec<Header> {
    vec![
        Header::new(":status", "302"),
        Header::new("cache-control", "private"),
        Header::new("date", "Mon, 21 Oct 2013 20:13:21 GMT"),
        Header::new("location", "https://www.example.com"),
    ]
}

fn response2() -> Vec<Header> {
    vec![
        Header::new(":status", "307"),
        Header::new("cache-control", "private"),
        Header::new("date", "Mon, 21 Oct 2013 20:13:21 GMT"),
        Header::new("location", "https://www.example.com"),
    ]
}

fn response3() -> Vec<Header> {
    vec![
        Header::new(":status", "200"),
        Header::new("cache-control", "private"),
        Header::new("date", "Mon, 21 Oct 2013 20:13:22 GMT"),
        Header::new("location", "https://www.example.com"),
        Header::new("content-encoding", "gzip"),
        Header::new(
            "set-cookie",
            "foo=ASDJKHQKBZXOQWEOPIUAXQWEOIU; max-age=3600; version=1",
        ),
    ]
}

fn run_flow(use_huffman: bool) {
    let mut encoder = Encoder::with_options(EncoderOptions {
        max_table_size: 256,
        use_huffman,
        ..EncoderOptions::default()
    });
    let mut decoder = Decoder::with_table_size(256);

    // --- First response (C.5.1 / C.6.1) --------------------------------
    let block1 = encoder.encode_block(&response1());
    if use_huffman {
        // C.6.1: the first bytes are fixed by the representation choices
        // the RFC itself makes: literal-with-incremental-indexing, name
        // index 8 (:status), Huffman value "302" = 0x6402.
        assert_eq!(&block1[..4], &[0x48, 0x82, 0x64, 0x02]);
        assert_eq!(block1.len(), 54, "C.6.1 block is 54 octets");
    } else {
        assert_eq!(
            &block1[..2],
            &[0x48, 0x03],
            ":status literal, 3-octet raw value"
        );
    }
    assert_eq!(decoder.decode_block(&block1).unwrap(), response1());
    // RFC: table now holds 4 entries, 222 octets, newest first:
    // location, date, cache-control, :status 302.
    assert_eq!(decoder.table().len(), 4);
    assert_eq!(decoder.table().size(), 222);
    assert_eq!(encoder.table().size(), 222);
    assert_eq!(decoder.table().get(62).unwrap().name, "location");
    assert_eq!(
        decoder.table().get(65).unwrap(),
        &Header::new(":status", "302")
    );

    // --- Second response (C.5.2 / C.6.2) --------------------------------
    let block2 = encoder.encode_block(&response2());
    assert_eq!(decoder.decode_block(&block2).unwrap(), response2());
    // Inserting ":status 307" (42 octets) evicts ":status 302"; the table
    // stays at 222 octets with 4 entries.
    assert_eq!(decoder.table().len(), 4);
    assert_eq!(decoder.table().size(), 222);
    assert_eq!(
        decoder.table().get(62).unwrap(),
        &Header::new(":status", "307")
    );
    assert!(
        !matches!(decoder.table().lookup(":status", "302"), Some((_, true))),
        "302 evicted (no exact match remains)"
    );
    if use_huffman {
        // Everything except the new status is served from the table.
        assert!(block2.len() <= 8, "C.6.2 block is tiny: {}", block2.len());
    }

    // --- Third response (C.5.3 / C.6.3) ---------------------------------
    let block3 = encoder.encode_block(&response3());
    assert_eq!(decoder.decode_block(&block3).unwrap(), response3());
    // RFC: the new date, content-encoding and set-cookie entries evict
    // everything older; 3 entries, 215 octets, newest first: set-cookie,
    // content-encoding, date.
    assert_eq!(decoder.table().len(), 3);
    assert_eq!(decoder.table().size(), 215);
    assert_eq!(decoder.table().get(62).unwrap().name, "set-cookie");
    assert_eq!(
        decoder.table().get(63).unwrap(),
        &Header::new("content-encoding", "gzip")
    );
    assert_eq!(decoder.table().get(64).unwrap().name, "date");
    assert_eq!(encoder.table().size(), 215, "encoder mirrors the decoder");
}

#[test]
fn appendix_c5_response_flow_without_huffman() {
    run_flow(false);
}

#[test]
fn appendix_c6_response_flow_with_huffman() {
    run_flow(true);
}

#[test]
fn flow_survives_interleaved_table_size_updates() {
    // Shrink the table mid-flow and grow it back; both sides must stay in
    // lock-step (RFC 7541 §4.2).
    let mut encoder = Encoder::with_options(EncoderOptions {
        max_table_size: 256,
        ..EncoderOptions::default()
    });
    let mut decoder = Decoder::with_table_size(256);
    decoder
        .decode_block(&encoder.encode_block(&response1()))
        .unwrap();
    encoder.resize_table(64);
    let block = encoder.encode_block(&response2());
    decoder.decode_block(&block).unwrap();
    assert!(decoder.table().size() <= 64);
    encoder.resize_table(256);
    decoder
        .decode_block(&encoder.encode_block(&response3()))
        .unwrap();
    assert_eq!(decoder.table().size(), encoder.table().size());
    // End-to-end correctness after all the churn.
    let final_block = encoder.encode_block(&response3());
    assert_eq!(decoder.decode_block(&final_block).unwrap(), response3());
}
