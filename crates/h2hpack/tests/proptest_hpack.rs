//! Property-based tests for HPACK: the decoder must invert the encoder
//! under every policy, and the Huffman coder must round-trip arbitrary
//! octet strings.

use h2hpack::encoder::{Encoder, EncoderOptions, IndexingPolicy};
use h2hpack::{huffman, integer, Decoder, Header};
use proptest::prelude::*;

fn arb_header() -> impl Strategy<Value = Header> {
    let name = prop_oneof![
        Just(":method".to_string()),
        Just(":path".to_string()),
        Just("content-type".to_string()),
        Just("server".to_string()),
        "[a-z][a-z0-9-]{0,20}",
    ];
    let value = prop_oneof![
        Just("GET".to_string()),
        Just("200".to_string()),
        "[ -~]{0,40}", // printable ASCII
    ];
    (name, value).prop_map(|(n, v)| Header::new(n, v))
}

fn arb_policy() -> impl Strategy<Value = IndexingPolicy> {
    prop_oneof![
        Just(IndexingPolicy::Always),
        Just(IndexingPolicy::Never),
        Just(IndexingPolicy::NeverIndexed),
    ]
}

proptest! {
    /// Encoder → decoder is the identity on header lists, across multiple
    /// blocks sharing one connection context.
    #[test]
    fn hpack_round_trips(
        blocks in prop::collection::vec(prop::collection::vec(arb_header(), 0..12), 1..5),
        policy in arb_policy(),
        use_huffman in any::<bool>(),
        table_size in prop_oneof![Just(0u32), Just(64), Just(4096), Just(65536)],
    ) {
        let mut enc = Encoder::with_options(EncoderOptions {
            indexing: policy,
            use_huffman,
            max_table_size: table_size,
        });
        let mut dec = Decoder::with_table_size(table_size);
        for headers in &blocks {
            let block = enc.encode_block(headers);
            let decoded = dec.decode_block(&block).expect("well-formed block");
            prop_assert_eq!(&decoded, headers);
        }
    }

    /// Huffman coding round-trips arbitrary bytes.
    #[test]
    fn huffman_round_trips(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut coded = Vec::new();
        huffman::encode(&data, &mut coded);
        prop_assert_eq!(coded.len(), huffman::encoded_len(&data));
        prop_assert_eq!(huffman::decode(&coded).expect("valid"), data);
    }

    /// Huffman decoding of arbitrary noise never panics.
    #[test]
    fn huffman_decode_never_panics(noise in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = huffman::decode(&noise);
    }

    /// Prefix integers round-trip over the full u32 range and all prefixes.
    #[test]
    fn integers_round_trip(value in any::<u32>(), prefix in 1u8..=8) {
        let mut out = Vec::new();
        integer::encode(u64::from(value), prefix, 0, &mut out);
        let (decoded, used) = integer::decode(&out, prefix).expect("decodes");
        prop_assert_eq!(decoded, u64::from(value));
        prop_assert_eq!(used, out.len());
    }

    /// Decoding arbitrary noise never panics (errors are fine).
    #[test]
    fn decoder_never_panics(noise in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut dec = Decoder::new();
        let _ = dec.decode_block(&noise);
    }

    /// The dynamic table never exceeds its budget.
    #[test]
    fn table_size_respects_budget(
        headers in prop::collection::vec(arb_header(), 0..64),
        budget in 0u32..512,
    ) {
        let mut enc = Encoder::with_options(EncoderOptions {
            max_table_size: budget,
            ..EncoderOptions::default()
        });
        for h in &headers {
            let _ = enc.encode_block(std::slice::from_ref(h));
            prop_assert!(enc.table().size() <= budget);
        }
    }
}
