//! Atomic counters and log2-bucketed histograms over simulated time.
//!
//! Everything here is additive and order-independent: concurrent workers
//! bump relaxed atomics, and a snapshot taken after the campaign joins is
//! a pure sum — so the rendered metrics are bit-identical at any thread
//! count, matching the determinism contract of `h2fault`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket `i` holds samples whose value has
/// `i` significant bits (i.e. `floor(log2(v)) == i - 1`; bucket 0 is the
/// zero bucket). 64 buckets cover the full `u64` range of virtual nanos.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (virtual nanoseconds).
///
/// Lock-free: every field is a relaxed atomic. Percentiles reported from
/// a snapshot are bucket upper bounds, which is plenty for the order-of-
/// magnitude latency questions the campaign table answers.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy (exact only once writers have quiesced).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`], with percentile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another snapshot into this one. Addition over buckets,
    /// count and sum plus min/max lattice joins — commutative and
    /// associative, so per-worker histogram shards merge to the same
    /// result in any order (the snapshot-time guarantee behind
    /// thread-count-independent metrics output). An empty snapshot is
    /// the identity: its `min` is `u64::MAX` and everything else 0.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimates the `q`-th percentile (`q` in 0..=100) as the upper bound
    /// of the bucket containing that rank, clamped to the observed max.
    pub fn percentile(&self, q: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, rounding up.
        let rank = (u128::from(self.count) * u128::from(q))
            .div_ceil(100)
            .max(1) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// Wire frame kinds 0x0..=0x9 plus one overflow bucket for unknown kinds.
pub const FRAME_KINDS: usize = 11;

/// Human-readable names for the [`FRAME_KINDS`] slots, indexed by wire kind.
pub const FRAME_KIND_NAMES: [&str; FRAME_KINDS] = [
    "DATA",
    "HEADERS",
    "PRIORITY",
    "RST_STREAM",
    "SETTINGS",
    "PUSH_PROMISE",
    "PING",
    "GOAWAY",
    "WINDOW_UPDATE",
    "CONTINUATION",
    "UNKNOWN",
];

/// Maps a raw wire frame kind to its counter slot.
pub fn frame_slot(kind: u8) -> usize {
    let k = kind as usize;
    if k < FRAME_KINDS - 1 {
        k
    } else {
        FRAME_KINDS - 1
    }
}

/// A fixed array of per-frame-kind counters.
#[derive(Debug)]
pub struct FrameCounters {
    slots: [AtomicU64; FRAME_KINDS],
}

impl Default for FrameCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameCounters {
    /// Creates all-zero counters.
    pub fn new() -> Self {
        FrameCounters {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bumps the counter for wire frame kind `kind`.
    pub fn bump(&self, kind: u8) {
        self.slots[frame_slot(kind)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current slot values.
    pub fn snapshot(&self) -> [u64; FRAME_KINDS] {
        std::array::from_fn(|i| self.slots[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_absorb_is_a_commutative_sum() {
        let a = Histogram::new();
        for v in [1u64, 8, 1000] {
            a.record(v);
        }
        let b = Histogram::new();
        for v in [2u64, 4, 1_000_000] {
            b.record(v);
        }
        let combined = Histogram::new();
        for v in [1u64, 8, 1000, 2, 4, 1_000_000] {
            combined.record(v);
        }
        let mut ab = a.snapshot();
        ab.absorb(&b.snapshot());
        let mut ba = b.snapshot();
        ba.absorb(&a.snapshot());
        assert_eq!(ab, ba, "absorb must be commutative");
        assert_eq!(ab, combined.snapshot(), "fold equals single registry");
        // Empty is the identity.
        let mut with_empty = a.snapshot();
        with_empty.absorb(&Histogram::new().snapshot());
        assert_eq!(with_empty, a.snapshot());
    }

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1_000_000);
        assert!(s.percentile(50) >= 4);
        assert_eq!(s.percentile(100), 1_000_000);
        assert!(s.percentile(1) >= 1);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let h = Histogram::new();
        let empty = h.snapshot();
        assert!(empty.is_empty());
        assert_eq!(empty.percentile(99), 0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.percentile(50), 0);
    }

    #[test]
    fn frame_counters_clamp_unknown_kinds() {
        let c = FrameCounters::new();
        c.bump(0x4);
        c.bump(0x4);
        c.bump(0xff);
        let snap = c.snapshot();
        assert_eq!(snap[4], 2);
        assert_eq!(snap[FRAME_KINDS - 1], 1);
    }
}
