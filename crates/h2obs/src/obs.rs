//! The `Obs` handle: a cheap, cloneable recorder threaded through the
//! simulation, connection, probing and bench layers.
//!
//! When observability is disabled (`Obs::off()`, the default everywhere)
//! every method is a no-op on a `None` inner — no allocation, no atomics,
//! no locks — so the instrumented hot paths cost one branch and campaign
//! output stays bit-identical to the uninstrumented baseline.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{FrameCounters, Histogram, HistogramSnapshot, FRAME_KINDS};
use crate::trace::{EventKind, Ring, SiteTrace, TraceEvent};

/// Maximum trace events retained per traced site (oldest evicted first).
pub const TRACE_RING_CAP: usize = 512;

/// Which probe of the paper's funnel a connection belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ProbeKind {
    /// Outside any named probe (setup traffic, ad-hoc connections).
    Other = 0,
    /// §III-A protocol negotiation (ALPN / h2c upgrade).
    Negotiation = 1,
    /// §III-B SETTINGS handling.
    Settings = 2,
    /// Baseline HEADERS request/response exchange.
    Headers = 3,
    /// §III-B flow-control conformance.
    FlowControl = 4,
    /// §III-C priority handling.
    Priority = 5,
    /// Server push behavior.
    Push = 6,
    /// HPACK dynamic-table behavior.
    Hpack = 7,
    /// Concurrent-stream multiplexing.
    Multiplexing = 8,
    /// PING liveness/RTT.
    Ping = 9,
}

/// Number of [`ProbeKind`] variants.
pub const PROBE_KINDS: usize = 10;

impl ProbeKind {
    /// All variants, in funnel order.
    pub const ALL: [ProbeKind; PROBE_KINDS] = [
        ProbeKind::Other,
        ProbeKind::Negotiation,
        ProbeKind::Settings,
        ProbeKind::Headers,
        ProbeKind::FlowControl,
        ProbeKind::Priority,
        ProbeKind::Push,
        ProbeKind::Hpack,
        ProbeKind::Multiplexing,
        ProbeKind::Ping,
    ];

    /// Stable lower-case name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ProbeKind::Other => "other",
            ProbeKind::Negotiation => "negotiation",
            ProbeKind::Settings => "settings",
            ProbeKind::Headers => "headers",
            ProbeKind::FlowControl => "flow_control",
            ProbeKind::Priority => "priority",
            ProbeKind::Push => "push",
            ProbeKind::Hpack => "hpack",
            ProbeKind::Multiplexing => "multiplexing",
            ProbeKind::Ping => "ping",
        }
    }

    fn from_u8(v: u8) -> ProbeKind {
        ProbeKind::ALL
            .get(v as usize)
            .copied()
            .unwrap_or(ProbeKind::Other)
    }
}

/// Campaign-wide atomic metric store.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Frames written by probe clients, by wire kind.
    pub client_sent: FrameCounters,
    /// Frames observed arriving at probe clients, by wire kind.
    pub client_received: FrameCounters,
    /// Frames handled by simulated server connection cores, by wire kind.
    pub server_handled: FrameCounters,
    /// Bytes delivered client → server across all pipes.
    pub bytes_to_server: AtomicU64,
    /// Bytes delivered server → client across all pipes.
    pub bytes_to_client: AtomicU64,
    /// HPACK dynamic-table entries evicted (encoder + decoder sides).
    pub hpack_evictions: AtomicU64,
    /// Simulated connections opened.
    pub conns_opened: AtomicU64,
    /// Probe attempts retried after a failure.
    pub retries: AtomicU64,
    /// Backoff pauses between retries, in virtual nanoseconds.
    pub backoff_nanos: Histogram,
    /// Probe attempts that hit the patience deadline.
    pub timeouts: AtomicU64,
    /// Probe attempts killed by a connection reset.
    pub resets: AtomicU64,
    /// Probe attempts aborted on malformed peer bytes.
    pub malformed: AtomicU64,
    /// Connection lifetimes per probe kind, in virtual nanoseconds.
    pub probe_latency: [Histogram; PROBE_KINDS],
    /// Total per-site virtual time across all of a site's connections.
    pub site_latency: Histogram,
    /// Sites fully surveyed.
    pub sites_finished: AtomicU64,
    /// Sites whose reports were preloaded from a persisted campaign
    /// record instead of being scanned (`repro --resume`).
    pub sites_resumed: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an all-zero registry.
    pub fn new() -> Self {
        MetricsRegistry {
            client_sent: FrameCounters::new(),
            client_received: FrameCounters::new(),
            server_handled: FrameCounters::new(),
            bytes_to_server: AtomicU64::new(0),
            bytes_to_client: AtomicU64::new(0),
            hpack_evictions: AtomicU64::new(0),
            conns_opened: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            backoff_nanos: Histogram::new(),
            timeouts: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            probe_latency: std::array::from_fn(|_| Histogram::new()),
            site_latency: Histogram::new(),
            sites_finished: AtomicU64::new(0),
            sites_resumed: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct ObsShared {
    metrics: MetricsRegistry,
    /// Per-worker counter shards (see [`Obs::worker_shard`]), folded
    /// into the campaign totals at snapshot time.
    shards: Mutex<Vec<Arc<MetricsRegistry>>>,
    traces: Mutex<Vec<SiteTrace>>,
    /// Sites with population index below this limit get an event ring.
    trace_limit: u64,
}

/// Per-site mutable context shared by every `Obs` clone for that site.
#[derive(Debug)]
struct SiteCtx {
    index: u64,
    probe: AtomicU8,
    /// Virtual nanoseconds accumulated across the site's connections.
    nanos: AtomicU64,
    ring: Option<Mutex<Ring>>,
}

impl SiteCtx {
    fn detached() -> Arc<SiteCtx> {
        Arc::new(SiteCtx {
            index: u64::MAX,
            probe: AtomicU8::new(ProbeKind::Other as u8),
            nanos: AtomicU64::new(0),
            ring: None,
        })
    }
}

/// Cheap observability handle. Cloning shares the underlying campaign
/// registry and per-site context; `Obs::off()` handles record nothing.
///
/// A handle derived with [`Obs::worker_shard`] routes its counter
/// traffic to a private [`MetricsRegistry`] instead of the shared
/// campaign one — scan workers each take a shard so the hot path never
/// contends on shared counter cache lines — and [`Obs::snapshot`] folds
/// every shard back into the campaign totals.
#[derive(Debug, Clone)]
pub struct Obs {
    inner: Option<Arc<ObsShared>>,
    shard: Option<Arc<MetricsRegistry>>,
    site: Arc<SiteCtx>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::off()
    }
}

impl Obs {
    /// The disabled handle: every recording method is a no-op.
    pub fn off() -> Obs {
        Obs {
            inner: None,
            shard: None,
            site: SiteCtx::detached(),
        }
    }

    /// Creates an enabled campaign-wide handle. Sites with index below
    /// `trace_sites` additionally collect a frame-level event trace.
    pub fn campaign(trace_sites: u64) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsShared {
                metrics: MetricsRegistry::new(),
                shards: Mutex::new(Vec::new()),
                traces: Mutex::new(Vec::new()),
                trace_limit: trace_sites,
            })),
            shard: None,
            site: SiteCtx::detached(),
        }
    }

    /// True when this handle actually records.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Derives a handle whose counters land in a fresh private registry
    /// (registered with the campaign and folded back in at
    /// [`Obs::snapshot`] time). One shard per scan worker keeps the
    /// counter cache lines thread-local; because every fold operation is
    /// a commutative sum (or a min/max lattice join), the folded
    /// snapshot is identical at any thread count and any shard-to-site
    /// assignment. On an off handle this stays off.
    pub fn worker_shard(&self) -> Obs {
        let Some(shared) = &self.inner else {
            return Obs::off();
        };
        let shard = Arc::new(MetricsRegistry::new());
        shared
            .shards
            .lock()
            .expect("shard list poisoned")
            .push(Arc::clone(&shard));
        Obs {
            inner: Some(Arc::clone(shared)),
            shard: Some(shard),
            site: SiteCtx::detached(),
        }
    }

    /// Derives the handle for site `index`, attaching a trace ring when
    /// the site falls under the campaign's `--trace-sites` limit. A
    /// worker-shard handle passes its shard on to the site handle.
    pub fn for_site(&self, index: u64) -> Obs {
        let Some(shared) = &self.inner else {
            return Obs::off();
        };
        let ring = if index < shared.trace_limit {
            Some(Mutex::new(Ring::new(TRACE_RING_CAP)))
        } else {
            None
        };
        Obs {
            inner: Some(Arc::clone(shared)),
            shard: self.shard.clone(),
            site: Arc::new(SiteCtx {
                index,
                probe: AtomicU8::new(ProbeKind::Other as u8),
                nanos: AtomicU64::new(0),
                ring,
            }),
        }
    }

    /// The registry this handle's counters land in: its worker shard
    /// when it has one, the shared campaign registry otherwise.
    fn registry<'a>(&'a self, shared: &'a ObsShared) -> &'a MetricsRegistry {
        self.shard.as_deref().unwrap_or(&shared.metrics)
    }

    /// Marks subsequent connections as belonging to `probe`.
    pub fn enter_probe(&self, probe: ProbeKind) {
        if self.inner.is_some() {
            self.site.probe.store(probe as u8, Ordering::Relaxed);
        }
    }

    /// The probe most recently entered on this site (Other by default).
    pub fn current_probe(&self) -> ProbeKind {
        ProbeKind::from_u8(self.site.probe.load(Ordering::Relaxed))
    }

    fn trace(&self, at_nanos: u64, kind: EventKind) {
        if self.inner.is_none() {
            return;
        }
        if let Some(ring) = &self.site.ring {
            ring.lock()
                .expect("trace ring poisoned")
                .push(TraceEvent { at_nanos, kind });
        }
    }

    /// Records a frame written by the probe client.
    pub fn frame_sent(&self, kind: u8, at_nanos: u64) {
        if let Some(shared) = &self.inner {
            self.registry(shared).client_sent.bump(kind);
            self.trace(at_nanos, EventKind::Send(kind));
        }
    }

    /// Records a frame observed arriving at the probe client.
    pub fn frame_received(&self, kind: u8, at_nanos: u64) {
        if let Some(shared) = &self.inner {
            self.registry(shared).client_received.bump(kind);
            self.trace(at_nanos, EventKind::Recv(kind));
        }
    }

    /// Records a frame handled by a simulated server core.
    pub fn server_frame(&self, kind: u8) {
        if let Some(shared) = &self.inner {
            self.registry(shared).server_handled.bump(kind);
        }
    }

    /// Records bytes delivered across a pipe in the given direction.
    pub fn wire_bytes(&self, to_server: bool, n: u64) {
        if let Some(shared) = &self.inner {
            let m = self.registry(shared);
            let counter = if to_server {
                &m.bytes_to_server
            } else {
                &m.bytes_to_client
            };
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `delta` HPACK dynamic-table evictions.
    pub fn hpack_evictions(&self, delta: u64) {
        if let Some(shared) = &self.inner {
            if delta > 0 {
                self.registry(shared)
                    .hpack_evictions
                    .fetch_add(delta, Ordering::Relaxed);
            }
        }
    }

    /// Records a simulated connection being opened.
    pub fn conn_opened(&self) {
        if let Some(shared) = &self.inner {
            self.registry(shared)
                .conns_opened
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a finished connection's virtual lifetime against the
    /// current probe's latency histogram and the site accumulator.
    pub fn conn_finished(&self, nanos: u64) {
        if let Some(shared) = &self.inner {
            let probe = self.current_probe();
            self.registry(shared).probe_latency[probe as usize].record(nanos);
            self.site.nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Records a retry of probe attempt `attempt` after a backoff pause.
    pub fn retry(&self, attempt: u32, pause_nanos: u64, at_nanos: u64) {
        if let Some(shared) = &self.inner {
            let m = self.registry(shared);
            m.retries.fetch_add(1, Ordering::Relaxed);
            m.backoff_nanos.record(pause_nanos);
            self.trace(at_nanos, EventKind::Retry(attempt));
        }
    }

    /// Records a probe attempt expiring at its patience deadline.
    pub fn timeout(&self, at_nanos: u64) {
        if let Some(shared) = &self.inner {
            self.registry(shared)
                .timeouts
                .fetch_add(1, Ordering::Relaxed);
            self.trace(at_nanos, EventKind::Timeout);
        }
    }

    /// Records a probe attempt dying to a connection reset.
    pub fn reset(&self, at_nanos: u64) {
        if let Some(shared) = &self.inner {
            self.registry(shared).resets.fetch_add(1, Ordering::Relaxed);
            self.trace(at_nanos, EventKind::Reset);
        }
    }

    /// Records a probe attempt aborting on malformed peer bytes.
    pub fn malformed(&self, at_nanos: u64) {
        if let Some(shared) = &self.inner {
            self.registry(shared)
                .malformed
                .fetch_add(1, Ordering::Relaxed);
            self.trace(at_nanos, EventKind::Malformed);
        }
    }

    /// Finalizes this site: records its accumulated latency and flushes
    /// its trace ring (if any) into the campaign trace store.
    pub fn finish_site(&self) {
        let Some(shared) = &self.inner else {
            return;
        };
        let m = self.registry(shared);
        m.site_latency
            .record(self.site.nanos.load(Ordering::Relaxed));
        m.sites_finished.fetch_add(1, Ordering::Relaxed);
        if let Some(ring) = &self.site.ring {
            let (events, dropped) = ring.lock().expect("trace ring poisoned").drain();
            shared
                .traces
                .lock()
                .expect("trace store poisoned")
                .push(SiteTrace {
                    site: self.site.index,
                    events,
                    dropped,
                });
        }
    }

    /// Records `n` sites restored from a persisted campaign record
    /// rather than scanned. Resumed sites deliberately do **not** count
    /// as surveyed (`finish_site`): their latency was spent by the
    /// process that died, not this one, so folding them into the
    /// histograms would make resumed and uninterrupted runs disagree.
    pub fn sites_resumed(&self, n: u64) {
        if let Some(shared) = &self.inner {
            self.registry(shared)
                .sites_resumed
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Takes a campaign snapshot, or `None` when the handle is off.
    /// Worker shards are folded into the campaign totals (a pure
    /// commutative sum, so the result is the same at any thread count)
    /// and traces are sorted by site index, so nothing in the snapshot
    /// depends on worker scheduling.
    pub fn snapshot(&self) -> Option<CampaignSnapshot> {
        let shared = self.inner.as_ref()?;
        let shards: Vec<Arc<MetricsRegistry>> =
            shared.shards.lock().expect("shard list poisoned").clone();
        let mut snap = registry_snapshot(&shared.metrics, Vec::new());
        for shard in &shards {
            snap.absorb_registry(shard);
        }
        let mut traces = shared.traces.lock().expect("trace store poisoned").clone();
        traces.sort_by_key(|t| t.site);
        snap.traces = traces;
        Some(snap)
    }
}

/// Snapshots one registry into a [`CampaignSnapshot`] shell.
fn registry_snapshot(m: &MetricsRegistry, traces: Vec<SiteTrace>) -> CampaignSnapshot {
    CampaignSnapshot {
        client_sent: m.client_sent.snapshot(),
        client_received: m.client_received.snapshot(),
        server_handled: m.server_handled.snapshot(),
        bytes_to_server: m.bytes_to_server.load(Ordering::Relaxed),
        bytes_to_client: m.bytes_to_client.load(Ordering::Relaxed),
        hpack_evictions: m.hpack_evictions.load(Ordering::Relaxed),
        conns_opened: m.conns_opened.load(Ordering::Relaxed),
        retries: m.retries.load(Ordering::Relaxed),
        backoff_nanos: m.backoff_nanos.snapshot(),
        timeouts: m.timeouts.load(Ordering::Relaxed),
        resets: m.resets.load(Ordering::Relaxed),
        malformed: m.malformed.load(Ordering::Relaxed),
        probe_latency: ProbeKind::ALL
            .iter()
            .map(|&p| (p, m.probe_latency[p as usize].snapshot()))
            .collect(),
        site_latency: m.site_latency.snapshot(),
        sites_finished: m.sites_finished.load(Ordering::Relaxed),
        sites_resumed: m.sites_resumed.load(Ordering::Relaxed),
        traces,
    }
}

/// Immutable point-in-time view of a campaign's metrics and traces.
#[derive(Debug, Clone)]
pub struct CampaignSnapshot {
    /// Frames written by probe clients, by wire-kind slot.
    pub client_sent: [u64; FRAME_KINDS],
    /// Frames observed by probe clients, by wire-kind slot.
    pub client_received: [u64; FRAME_KINDS],
    /// Frames handled by simulated server cores, by wire-kind slot.
    pub server_handled: [u64; FRAME_KINDS],
    /// Bytes delivered client → server.
    pub bytes_to_server: u64,
    /// Bytes delivered server → client.
    pub bytes_to_client: u64,
    /// HPACK dynamic-table evictions.
    pub hpack_evictions: u64,
    /// Simulated connections opened.
    pub conns_opened: u64,
    /// Probe attempts retried.
    pub retries: u64,
    /// Backoff pause distribution, virtual nanoseconds.
    pub backoff_nanos: HistogramSnapshot,
    /// Deadline expiries.
    pub timeouts: u64,
    /// Connection resets.
    pub resets: u64,
    /// Malformed-bytes aborts.
    pub malformed: u64,
    /// Connection-lifetime distribution per probe kind.
    pub probe_latency: Vec<(ProbeKind, HistogramSnapshot)>,
    /// Per-site total-latency distribution.
    pub site_latency: HistogramSnapshot,
    /// Sites fully surveyed.
    pub sites_finished: u64,
    /// Sites preloaded from a persisted record (`repro --resume`).
    pub sites_resumed: u64,
    /// Frame-level traces for sites under the `--trace-sites` limit,
    /// sorted by site index.
    pub traces: Vec<SiteTrace>,
}

impl CampaignSnapshot {
    /// Folds one worker-shard registry into these totals. Every field is
    /// an addition or a min/max join, so folding is commutative and the
    /// result is independent of shard order (i.e. of worker scheduling).
    fn absorb_registry(&mut self, m: &MetricsRegistry) {
        fn add_frames(mine: &mut [u64; FRAME_KINDS], theirs: [u64; FRAME_KINDS]) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
        add_frames(&mut self.client_sent, m.client_sent.snapshot());
        add_frames(&mut self.client_received, m.client_received.snapshot());
        add_frames(&mut self.server_handled, m.server_handled.snapshot());
        self.bytes_to_server += m.bytes_to_server.load(Ordering::Relaxed);
        self.bytes_to_client += m.bytes_to_client.load(Ordering::Relaxed);
        self.hpack_evictions += m.hpack_evictions.load(Ordering::Relaxed);
        self.conns_opened += m.conns_opened.load(Ordering::Relaxed);
        self.retries += m.retries.load(Ordering::Relaxed);
        self.backoff_nanos.absorb(&m.backoff_nanos.snapshot());
        self.timeouts += m.timeouts.load(Ordering::Relaxed);
        self.resets += m.resets.load(Ordering::Relaxed);
        self.malformed += m.malformed.load(Ordering::Relaxed);
        for (probe, hist) in &mut self.probe_latency {
            hist.absorb(&m.probe_latency[*probe as usize].snapshot());
        }
        self.site_latency.absorb(&m.site_latency.snapshot());
        self.sites_finished += m.sites_finished.load(Ordering::Relaxed);
        self.sites_resumed += m.sites_resumed.load(Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing() {
        let obs = Obs::off();
        obs.frame_sent(0x4, 10);
        obs.retry(1, 100, 10);
        obs.finish_site();
        assert!(!obs.is_on());
        assert!(obs.snapshot().is_none());
        // for_site on an off handle stays off.
        assert!(!obs.for_site(0).is_on());
    }

    #[test]
    fn campaign_handle_accumulates() {
        let obs = Obs::campaign(1);
        let site0 = obs.for_site(0);
        let site7 = obs.for_site(7);
        site0.enter_probe(ProbeKind::Headers);
        site0.frame_sent(0x4, 5);
        site0.frame_received(0x4, 9);
        site0.conn_finished(1000);
        site0.finish_site();
        site7.frame_sent(0x1, 3);
        site7.timeout(44);
        site7.finish_site();
        let snap = obs.snapshot().expect("on");
        assert_eq!(snap.client_sent[4], 1);
        assert_eq!(snap.client_sent[1], 1);
        assert_eq!(snap.client_received[4], 1);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.sites_finished, 2);
        let headers = snap
            .probe_latency
            .iter()
            .find(|(p, _)| *p == ProbeKind::Headers)
            .map(|(_, h)| h.clone())
            .expect("headers slot");
        assert_eq!(headers.count, 1);
        assert_eq!(headers.sum, 1000);
        // Only site 0 is under the trace limit.
        assert_eq!(snap.traces.len(), 1);
        assert_eq!(snap.traces[0].site, 0);
        assert_eq!(snap.traces[0].events.len(), 2);
    }

    #[test]
    fn worker_shards_fold_into_campaign_totals() {
        // The same event stream recorded (a) straight into the campaign
        // registry and (b) split across two worker shards must snapshot
        // identically — the guarantee that lets scan workers go
        // shared-nothing without changing any rendered output.
        let record = |handles: &[&Obs]| {
            let a = handles[0].for_site(0);
            a.enter_probe(ProbeKind::Headers);
            a.frame_sent(0x1, 5);
            a.conn_opened();
            a.conn_finished(1_000);
            a.finish_site();
            let b = handles[handles.len() - 1].for_site(3);
            b.frame_received(0x4, 7);
            b.timeout(9);
            b.conn_finished(4_000);
            b.retry(1, 250, 11);
            b.finish_site();
        };
        let direct = Obs::campaign(1);
        record(&[&direct, &direct]);
        let sharded = Obs::campaign(1);
        let w0 = sharded.worker_shard();
        let w1 = sharded.worker_shard();
        record(&[&w0, &w1]);
        let a = direct.snapshot().expect("on");
        let b = sharded.snapshot().expect("on");
        assert_eq!(a.client_sent, b.client_sent);
        assert_eq!(a.client_received, b.client_received);
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.conns_opened, b.conns_opened);
        assert_eq!(a.sites_finished, b.sites_finished);
        assert_eq!(a.backoff_nanos, b.backoff_nanos);
        assert_eq!(a.site_latency, b.site_latency);
        assert_eq!(a.probe_latency, b.probe_latency);
        assert_eq!(a.traces.len(), b.traces.len());
    }

    #[test]
    fn worker_shard_of_off_handle_stays_off() {
        let off = Obs::off();
        let shard = off.worker_shard();
        assert!(!shard.is_on());
        shard.conn_opened();
        assert!(shard.snapshot().is_none());
    }

    #[test]
    fn traces_sort_by_site_index() {
        let obs = Obs::campaign(10);
        for idx in [5u64, 2, 9] {
            let s = obs.for_site(idx);
            s.frame_sent(0x0, idx);
            s.finish_site();
        }
        let snap = obs.snapshot().expect("on");
        let sites: Vec<u64> = snap.traces.iter().map(|t| t.site).collect();
        assert_eq!(sites, vec![2, 5, 9]);
    }
}
