//! # h2obs — campaign observability for the HTTP/2 readiness testbed
//!
//! The paper classifies servers purely from which frames come back and
//! when; this crate makes that frame exchange *visible*. It provides:
//!
//! * [`MetricsRegistry`] — lock-free-ish campaign-wide counters and
//!   log2-bucketed histograms over **simulated** time: frames sent and
//!   received by kind, bytes on the wire, HPACK table evictions, retries
//!   and backoff waits, per-probe and per-site latency percentiles.
//! * [`trace::Ring`]-buffered frame-level event traces — timestamped
//!   send/recv/timeout/reset/retry events per traced site.
//! * [`Obs`] — the cheap cloneable handle threaded through
//!   `netsim::pipe`, `h2conn::core`, `h2scope` and `bench::scan`.
//!   `Obs::off()` (the default) is a strict no-op: one branch per call
//!   site, no allocation, and campaign output stays bit-identical to the
//!   uninstrumented baseline.
//!
//! Determinism contract (same as `h2fault`): every recorded quantity is
//! either an order-independent sum or flushed in per-site batches and
//! sorted by site index, so `render_json` output is byte-identical at
//! any worker thread count. Nothing in this crate reads wall-clock time
//! or randomness; all timestamps are virtual nanoseconds supplied by the
//! caller (`netsim::SimTime::as_nanos`).
//!
//! Zero dependencies by design — the crates it instruments must be able
//! to depend on it without cycles or registry access.

pub mod metrics;
pub mod obs;
pub mod render;
pub mod trace;

pub use metrics::{
    frame_slot, FrameCounters, Histogram, HistogramSnapshot, FRAME_KINDS, FRAME_KIND_NAMES,
};
pub use obs::{CampaignSnapshot, MetricsRegistry, Obs, ProbeKind, PROBE_KINDS, TRACE_RING_CAP};
pub use render::{render_json, render_table, TABLE_MARKER};
pub use trace::{EventKind, SiteTrace, TraceEvent};
