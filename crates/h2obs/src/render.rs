//! Human-readable table and hand-rolled JSON rendering of a
//! [`CampaignSnapshot`]. No serde: the schema is small, stable and fully
//! under our control (same precedent as `h2scope::storage`).

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, FRAME_KINDS, FRAME_KIND_NAMES};
use crate::obs::CampaignSnapshot;

/// Marker line printed immediately before the metrics table so scripts
/// (and the CI no-op diff job) can strip everything from here down.
pub const TABLE_MARKER: &str = "=== h2obs campaign metrics ===";

/// Formats virtual nanoseconds with a human unit suffix.
fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!(
            "{}.{:03}s",
            n / 1_000_000_000,
            (n % 1_000_000_000) / 1_000_000
        )
    } else if n >= 1_000_000 {
        format!("{}.{:03}ms", n / 1_000_000, (n % 1_000_000) / 1_000)
    } else if n >= 1_000 {
        format!("{}.{:03}us", n / 1_000, n % 1_000)
    } else {
        format!("{n}ns")
    }
}

fn hist_row(label: &str, h: &HistogramSnapshot) -> String {
    if h.is_empty() {
        return format!("  {label:<14} (no samples)\n");
    }
    format!(
        "  {label:<14} n={:<7} mean={:<10} p50={:<10} p90={:<10} p99={:<10} max={}\n",
        h.count,
        fmt_nanos(h.mean()),
        fmt_nanos(h.percentile(50)),
        fmt_nanos(h.percentile(90)),
        fmt_nanos(h.percentile(99)),
        fmt_nanos(h.max),
    )
}

/// Renders the per-campaign metrics table shown by `repro --metrics`.
pub fn render_table(snap: &CampaignSnapshot) -> String {
    let mut out = String::new();
    out.push_str(TABLE_MARKER);
    out.push('\n');
    let _ = writeln!(out, "sites surveyed        {}", snap.sites_finished);
    if snap.sites_resumed > 0 {
        let _ = writeln!(
            out,
            "sites resumed         {} (preloaded from the campaign record)",
            snap.sites_resumed
        );
    }
    let _ = writeln!(out, "connections opened    {}", snap.conns_opened);
    let _ = writeln!(
        out,
        "wire bytes            {} to-server / {} to-client",
        snap.bytes_to_server, snap.bytes_to_client
    );
    let _ = writeln!(out, "hpack evictions       {}", snap.hpack_evictions);
    let _ = writeln!(
        out,
        "retries               {} (timeouts {}, resets {}, malformed {})",
        snap.retries, snap.timeouts, snap.resets, snap.malformed
    );
    if !snap.backoff_nanos.is_empty() {
        let _ = writeln!(
            out,
            "backoff waited        {} total across {} pauses",
            fmt_nanos(snap.backoff_nanos.sum),
            snap.backoff_nanos.count
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>14}",
        "frames by kind", "client-sent", "client-recv", "server-handled"
    );
    for (i, name) in FRAME_KIND_NAMES.iter().enumerate() {
        let (s, r, h) = (
            snap.client_sent[i],
            snap.client_received[i],
            snap.server_handled[i],
        );
        if s == 0 && r == 0 && h == 0 {
            continue;
        }
        let _ = writeln!(out, "  {name:<14} {s:>12} {r:>12} {h:>14}");
    }
    out.push('\n');
    out.push_str("probe latency (virtual time per connection)\n");
    for (probe, h) in &snap.probe_latency {
        if h.is_empty() {
            continue;
        }
        out.push_str(&hist_row(probe.name(), h));
    }
    out.push_str("site latency (virtual time per site)\n");
    out.push_str(&hist_row("all sites", &snap.site_latency));
    if !snap.traces.is_empty() {
        let events: usize = snap.traces.iter().map(|t| t.events.len()).sum();
        let _ = writeln!(
            out,
            "traced sites          {} ({} events; see OBS_campaign.json)",
            snap.traces.len(),
            events
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_frames(counts: &[u64; FRAME_KINDS]) -> String {
    let fields: Vec<String> = (0..FRAME_KINDS)
        .filter(|&i| counts[i] > 0)
        .map(|i| format!("\"{}\":{}", FRAME_KIND_NAMES[i], counts[i]))
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn json_hist(h: &HistogramSnapshot) -> String {
    if h.is_empty() {
        return "{\"count\":0}".to_string();
    }
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.percentile(50),
        h.percentile(90),
        h.percentile(99),
    )
}

/// Renders the `OBS_campaign.json` document. Key order is fixed and all
/// inputs are order-independent aggregates (traces pre-sorted by site),
/// so the output is byte-identical at any worker thread count.
pub fn render_json(snap: &CampaignSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"h2obs-campaign-v2\",\n");
    let _ = writeln!(out, "  \"sites_finished\": {},", snap.sites_finished);
    let _ = writeln!(out, "  \"sites_resumed\": {},", snap.sites_resumed);
    let _ = writeln!(out, "  \"conns_opened\": {},", snap.conns_opened);
    let _ = writeln!(
        out,
        "  \"wire_bytes\": {{\"to_server\":{},\"to_client\":{}}},",
        snap.bytes_to_server, snap.bytes_to_client
    );
    let _ = writeln!(out, "  \"hpack_evictions\": {},", snap.hpack_evictions);
    let _ = writeln!(
        out,
        "  \"failures\": {{\"timeouts\":{},\"resets\":{},\"malformed\":{}}},",
        snap.timeouts, snap.resets, snap.malformed
    );
    let _ = writeln!(
        out,
        "  \"retries\": {{\"total\":{},\"backoff_nanos\":{}}},",
        snap.retries,
        json_hist(&snap.backoff_nanos)
    );
    let _ = writeln!(
        out,
        "  \"frames\": {{\"client_sent\":{},\"client_received\":{},\"server_handled\":{}}},",
        json_frames(&snap.client_sent),
        json_frames(&snap.client_received),
        json_frames(&snap.server_handled)
    );
    out.push_str("  \"probe_latency_nanos\": {");
    let probe_fields: Vec<String> = snap
        .probe_latency
        .iter()
        .filter(|(_, h)| !h.is_empty())
        .map(|(p, h)| format!("\"{}\":{}", p.name(), json_hist(h)))
        .collect();
    out.push_str(&probe_fields.join(","));
    out.push_str("},\n");
    let _ = writeln!(
        out,
        "  \"site_latency_nanos\": {},",
        json_hist(&snap.site_latency)
    );
    out.push_str("  \"traces\": [\n");
    for (i, t) in snap.traces.iter().enumerate() {
        let events: Vec<String> = t
            .events
            .iter()
            .map(|e| {
                let detail = e.kind.detail();
                if detail.is_empty() {
                    format!("{{\"at\":{},\"ev\":\"{}\"}}", e.at_nanos, e.kind.tag())
                } else {
                    format!(
                        "{{\"at\":{},\"ev\":\"{}\",\"detail\":\"{}\"}}",
                        e.at_nanos,
                        e.kind.tag(),
                        json_escape(&detail)
                    )
                }
            })
            .collect();
        let _ = write!(
            out,
            "    {{\"site\":{},\"dropped\":{},\"events\":[{}]}}",
            t.site,
            t.dropped,
            events.join(",")
        );
        out.push_str(if i + 1 < snap.traces.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{Obs, ProbeKind};

    fn sample_snapshot() -> CampaignSnapshot {
        let obs = Obs::campaign(2);
        let site = obs.for_site(0);
        site.enter_probe(ProbeKind::Headers);
        site.frame_sent(0x4, 10);
        site.frame_received(0x1, 20);
        site.server_frame(0x4);
        site.wire_bytes(true, 100);
        site.wire_bytes(false, 250);
        site.conn_opened();
        site.conn_finished(5_000);
        site.retry(1, 2_000_000, 30);
        site.timeout(40);
        site.finish_site();
        obs.snapshot().expect("on")
    }

    #[test]
    fn table_contains_marker_and_counts() {
        let table = render_table(&sample_snapshot());
        assert!(table.starts_with(TABLE_MARKER));
        assert!(table.contains("SETTINGS"));
        assert!(table.contains("headers"));
        assert!(table.contains("retries               1"));
    }

    #[test]
    fn json_is_well_formed_and_stable() {
        let snap = sample_snapshot();
        let a = render_json(&snap);
        let b = render_json(&snap);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"h2obs-campaign-v2\""));
        assert!(a.contains("\"sites_resumed\": 0"));
        assert!(a.contains("\"client_sent\":{\"SETTINGS\":1}"));
        assert!(a.contains("\"ev\":\"retry\""));
        // Balanced braces as a cheap well-formedness proxy.
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
        let sq_open = a.matches('[').count();
        let sq_close = a.matches(']').count();
        assert_eq!(sq_open, sq_close);
    }

    #[test]
    fn resumed_sites_render_in_table_and_json() {
        let obs = Obs::campaign(0);
        let site = obs.for_site(0);
        site.conn_opened();
        site.finish_site();
        obs.sites_resumed(41);
        let snap = obs.snapshot().expect("on");
        assert_eq!(snap.sites_resumed, 41);
        let table = render_table(&snap);
        assert!(table.contains("sites resumed         41"));
        assert!(render_json(&snap).contains("\"sites_resumed\": 41,"));
        // The resumed line is elided entirely on non-resumed campaigns,
        // keeping pre-resume table output byte-stable.
        let fresh = Obs::campaign(0);
        fresh.for_site(0).finish_site();
        let fresh_table = render_table(&fresh.snapshot().expect("on"));
        assert!(!fresh_table.contains("sites resumed"));
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(17), "17ns");
        assert_eq!(fmt_nanos(1_500), "1.500us");
        assert_eq!(fmt_nanos(2_000_000), "2.000ms");
        assert_eq!(fmt_nanos(3_250_000_000), "3.250s");
    }
}
