//! Ring-buffered frame-level event traces.
//!
//! Each traced site owns a bounded ring of [`TraceEvent`]s; the ring is
//! flushed wholesale into the campaign-wide trace store when the site
//! finishes, and the store is sorted by site index at snapshot time, so
//! the rendered trace is independent of worker scheduling.

use crate::metrics::frame_slot;
use crate::metrics::FRAME_KIND_NAMES;

/// What happened at a traced instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The client wrote a frame of the given wire kind.
    Send(u8),
    /// The client observed a frame of the given wire kind arrive.
    Recv(u8),
    /// A probe attempt hit its patience deadline.
    Timeout,
    /// The simulated connection was reset mid-probe.
    Reset,
    /// The peer produced bytes the codec rejected.
    Malformed,
    /// A retry was scheduled; the payload is the attempt number.
    Retry(u32),
}

impl EventKind {
    /// Short machine-friendly tag used in JSON output.
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::Send(_) => "send",
            EventKind::Recv(_) => "recv",
            EventKind::Timeout => "timeout",
            EventKind::Reset => "reset",
            EventKind::Malformed => "malformed",
            EventKind::Retry(_) => "retry",
        }
    }

    /// Wire frame kind for client-sent frames, `None` otherwise. Online
    /// detectors key their per-vector features off what the *client*
    /// wrote: a benign page fetch never sends CONTINUATION, rarely sends
    /// RST_STREAM, and paces DATA by available window.
    pub fn sent_kind(self) -> Option<u8> {
        match self {
            EventKind::Send(k) => Some(k),
            _ => None,
        }
    }

    /// Wire frame kind for received frames, `None` otherwise.
    pub fn recv_kind(self) -> Option<u8> {
        match self {
            EventKind::Recv(k) => Some(k),
            _ => None,
        }
    }

    /// Frame-kind name for send/recv events, attempt number for retries.
    pub fn detail(self) -> String {
        match self {
            EventKind::Send(k) | EventKind::Recv(k) => FRAME_KIND_NAMES[frame_slot(k)].to_string(),
            EventKind::Retry(attempt) => format!("attempt {attempt}"),
            _ => String::new(),
        }
    }
}

/// One timestamped entry in a site's frame-level trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event, in nanoseconds since connection start.
    pub at_nanos: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Bounded ring buffer of trace events. When full, the oldest events are
/// overwritten — the tail of an exchange is what classification (and the
/// slow-HTTP/2 anomaly work in PAPERS.md) cares about.
#[derive(Debug)]
pub struct Ring {
    events: Vec<TraceEvent>,
    cap: usize,
    /// Index of the logical first element once the ring has wrapped.
    head: usize,
    /// Count of events dropped due to wrapping.
    dropped: u64,
}

impl Ring {
    /// Creates a ring holding at most `cap` events (`cap` >= 1).
    pub fn new(cap: usize) -> Self {
        Ring {
            events: Vec::new(),
            cap: cap.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when at capacity.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Drains the ring into chronological order, returning the events and
    /// how many older events were dropped.
    pub fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        let mut out = Vec::with_capacity(self.events.len());
        let n = self.events.len();
        for i in 0..n {
            out.push(self.events[(self.head + i) % n.max(1)]);
        }
        self.events.clear();
        self.head = 0;
        let dropped = self.dropped;
        self.dropped = 0;
        (out, dropped)
    }
}

/// A finished site's trace: which site, its events, and drop accounting.
#[derive(Debug, Clone)]
pub struct SiteTrace {
    /// Population index of the site.
    pub site: u64,
    /// Chronological trace events.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap-around.
    pub dropped: u64,
}

impl SiteTrace {
    /// How many frames of wire kind `kind` the client sent. Wrap-adjusted
    /// counts are not recoverable per kind, so a trace that dropped
    /// events undercounts — detectors treat `dropped > 0` itself as a
    /// hyperactivity signal.
    pub fn sent_count(&self, kind: u8) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind.sent_kind() == Some(kind))
            .count() as u64
    }

    /// How many frames of wire kind `kind` arrived from the server.
    pub fn recv_count(&self, kind: u8) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind.recv_kind() == Some(kind))
            .count() as u64
    }

    /// Span from the first to the last traced event, in nanoseconds
    /// (0 for traces with fewer than two events).
    pub fn duration_nanos(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => last.at_nanos.saturating_sub(first.at_nanos),
            _ => 0,
        }
    }

    /// The largest quiet gap preceding a client send of wire kind
    /// `kind`, measured from the previous traced event. A slow-POST
    /// attacker trickles DATA with enormous gaps; a benign upload's gaps
    /// track the link latency.
    pub fn max_gap_before_send_nanos(&self, kind: u8) -> u64 {
        let mut max_gap = 0u64;
        let mut prev: Option<u64> = None;
        for e in &self.events {
            if e.kind.sent_kind() == Some(kind) {
                if let Some(p) = prev {
                    max_gap = max_gap.max(e.at_nanos.saturating_sub(p));
                }
            }
            prev = Some(e.at_nanos);
        }
        max_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at_nanos: at,
            kind: EventKind::Send(0x4),
        }
    }

    #[test]
    fn ring_keeps_newest_events_in_order() {
        let mut r = Ring::new(3);
        for at in 0..5 {
            r.push(ev(at));
        }
        let (events, dropped) = r.drain();
        assert_eq!(dropped, 2);
        let ats: Vec<u64> = events.iter().map(|e| e.at_nanos).collect();
        assert_eq!(ats, vec![2, 3, 4]);
    }

    #[test]
    fn ring_drain_resets_state() {
        let mut r = Ring::new(2);
        r.push(ev(1));
        let (events, dropped) = r.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);
        let (events, _) = r.drain();
        assert!(events.is_empty());
    }

    #[test]
    fn event_kind_details() {
        assert_eq!(EventKind::Send(0x8).detail(), "WINDOW_UPDATE");
        assert_eq!(EventKind::Retry(2).detail(), "attempt 2");
        assert_eq!(EventKind::Timeout.tag(), "timeout");
    }

    #[test]
    fn site_trace_feature_accessors() {
        let trace = SiteTrace {
            site: 0,
            events: vec![
                TraceEvent {
                    at_nanos: 0,
                    kind: EventKind::Send(0x1),
                },
                TraceEvent {
                    at_nanos: 10,
                    kind: EventKind::Recv(0x1),
                },
                TraceEvent {
                    at_nanos: 1_000,
                    kind: EventKind::Send(0x0),
                },
                TraceEvent {
                    at_nanos: 9_000,
                    kind: EventKind::Send(0x0),
                },
            ],
            dropped: 0,
        };
        assert_eq!(trace.sent_count(0x0), 2);
        assert_eq!(trace.sent_count(0x1), 1);
        assert_eq!(trace.recv_count(0x1), 1);
        assert_eq!(trace.duration_nanos(), 9_000);
        assert_eq!(trace.max_gap_before_send_nanos(0x0), 8_000);
        assert_eq!(trace.max_gap_before_send_nanos(0x3), 0);
    }
}
