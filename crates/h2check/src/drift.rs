//! Cross-validation of the [`crate::spec`] tables against the
//! implementations.
//!
//! Each check produces one summary line (`x/y match ...`) plus a
//! `drift` finding per mismatch. The checks run real code: the §5.1
//! table drives an actual `h2conn::Stream`, the §6 table decodes real
//! frames through `h2wire`, and the quirk/classifier check runs the
//! actual simulated probes against every `ServerProfile` and compares
//! the observed reaction with what the quirk matrix predicts.

use std::path::Path;
use std::sync::Arc;

use h2conn::{Stream, StreamState};
use h2scope::probes::{self, Reaction};
use h2scope::target::Target;
use h2server::{QuirkAction, ServerProfile, SiteSpec};
use h2wire::{
    DecodeFrameError, ErrorCode, Frame, FrameHeader, FrameKind, SettingId, Settings, StreamId,
};

use crate::lexer::{lex, SourceFile};
use crate::report::{Finding, Report, Severity};
use crate::spec::{
    RecvOutcome, SpecEvent, SpecState, StreamIdRule, CAPABILITIES, FRAME_RULES, PROBE_RULES,
    QUIRK_RULES, RECV_LEGALITY, SETTING_BOUNDS, TRANSITIONS,
};

fn drift(file: &str, line: usize, message: String) -> Finding {
    Finding {
        kind: "drift",
        severity: Severity::Error,
        file: file.to_string(),
        line,
        message,
    }
}

/// Runs every cross-validation check, appending summary lines and any
/// mismatch findings to `report`. `root` is the repository root (for
/// the registry checks, which scan source files).
pub fn run_all(root: &Path, report: &mut Report) {
    check_transitions(report);
    check_capabilities(report);
    check_recv_legality(report);
    check_frame_rules(report);
    check_error_taxonomy(report);
    check_setting_bounds(report);
    check_quirk_registry(root, report);
    check_probe_registry(root, report);
    check_dynamic_quirks(report);
}

// ---------------------------------------------------------------------------
// §5.1 vs h2conn
// ---------------------------------------------------------------------------

fn to_impl(state: SpecState) -> StreamState {
    match state {
        SpecState::Idle => StreamState::Idle,
        SpecState::ReservedLocal => StreamState::ReservedLocal,
        SpecState::ReservedRemote => StreamState::ReservedRemote,
        SpecState::Open => StreamState::Open,
        SpecState::HalfClosedLocal => StreamState::HalfClosedLocal,
        SpecState::HalfClosedRemote => StreamState::HalfClosedRemote,
        SpecState::Closed => StreamState::Closed,
    }
}

fn apply_event(stream: &mut Stream, event: SpecEvent) {
    match event {
        SpecEvent::SendHeaders { end_stream } => stream.send_headers(end_stream),
        SpecEvent::RecvHeaders { end_stream } => stream.recv_headers(end_stream),
        SpecEvent::SendEndStream => stream.send_end_stream(),
        SpecEvent::RecvEndStream => stream.recv_end_stream(),
        SpecEvent::SendReset => stream.send_reset(ErrorCode::Cancel),
        SpecEvent::RecvReset => stream.recv_reset(ErrorCode::Cancel),
    }
}

fn check_transitions(report: &mut Report) {
    const FILE: &str = "crates/h2conn/src/stream.rs";
    let mut ok = 0;
    for tr in &TRANSITIONS {
        let mut stream = Stream::new(StreamId::new(1), 65_535, 65_535);
        stream.state = to_impl(tr.from);
        apply_event(&mut stream, tr.event);
        if stream.state == to_impl(tr.to) {
            ok += 1;
        } else {
            report.findings.push(drift(
                FILE,
                1,
                format!(
                    "§5.1 table says {:?} --{:?}--> {:?}, h2conn::Stream went to {:?}",
                    tr.from, tr.event, tr.to, stream.state
                ),
            ));
        }
    }
    report.drift.push(format!(
        "§5.1 transitions: {ok}/{} match h2conn::Stream",
        TRANSITIONS.len()
    ));
}

fn check_capabilities(report: &mut Report) {
    const FILE: &str = "crates/h2conn/src/stream.rs";
    let mut ok = 0;
    for caps in &CAPABILITIES {
        let state = to_impl(caps.state);
        // `can_send`/`can_recv` also admit the reserved state about to
        // transition into the sending/receiving role.
        let want_send = caps.may_send_data || caps.state == SpecState::ReservedLocal;
        let want_recv = caps.may_recv_data || caps.state == SpecState::ReservedRemote;
        if state.can_send() == want_send && state.can_recv() == want_recv {
            ok += 1;
        } else {
            report.findings.push(drift(
                FILE,
                1,
                format!(
                    "{:?}: capability table wants send={want_send}/recv={want_recv}, \
                     h2conn reports send={}/recv={}",
                    caps.state,
                    state.can_send(),
                    state.can_recv()
                ),
            ));
        }
    }
    report.drift.push(format!(
        "§5.1 capabilities: {ok}/{} states match can_send/can_recv",
        CAPABILITIES.len()
    ));
}

fn check_recv_legality(report: &mut Report) {
    const FILE: &str = "crates/h2check/src/spec.rs";
    let mut ok = 0;
    for caps in &CAPABILITIES {
        let cell = RECV_LEGALITY
            .iter()
            .find(|r| r.state == caps.state && r.frame == FrameKind::Data);
        match cell {
            Some(cell) if (cell.outcome == RecvOutcome::Legal) == caps.may_recv_data => ok += 1,
            Some(cell) => report.findings.push(drift(
                FILE,
                1,
                format!(
                    "{:?}: DATA legality {:?} contradicts may_recv_data={}",
                    caps.state, cell.outcome, caps.may_recv_data
                ),
            )),
            None => report.findings.push(drift(
                FILE,
                1,
                format!("{:?}: no DATA cell in RECV_LEGALITY", caps.state),
            )),
        }
    }
    report.drift.push(format!(
        "§5.1 receive legality: {ok}/{} states consistent with DATA capabilities",
        CAPABILITIES.len()
    ));
}

// ---------------------------------------------------------------------------
// §6 vs the h2wire decoder
// ---------------------------------------------------------------------------

fn min_valid_payload(kind: FrameKind) -> Vec<u8> {
    match kind {
        FrameKind::Priority => vec![0, 0, 0, 0, 15],
        FrameKind::RstStream => vec![0, 0, 0, 8],
        FrameKind::PushPromise => vec![0, 0, 0, 2],
        FrameKind::Ping | FrameKind::Goaway => vec![0; 8],
        FrameKind::WindowUpdate => vec![0, 0, 0, 1],
        _ => Vec::new(),
    }
}

fn decode(
    kind: FrameKind,
    flags: u8,
    stream_id: StreamId,
    payload: &[u8],
) -> Result<Frame, DecodeFrameError> {
    let header = FrameHeader {
        length: payload.len() as u32,
        kind,
        flags,
        stream_id,
    };
    Frame::decode(header, payload)
}

fn check_frame_rules(report: &mut Report) {
    const FILE: &str = "crates/h2wire/src/frame.rs";
    let mut ok = 0;
    for rule in &FRAME_RULES {
        let mut rule_ok = true;
        let fail = |report: &mut Report, msg: String| {
            report.findings.push(drift(
                FILE,
                1,
                format!("§{} {:?}: {msg}", rule.section, rule.kind),
            ));
        };
        let payload = min_valid_payload(rule.kind);
        let good_id = match rule.stream_id {
            StreamIdRule::Zero => StreamId::CONNECTION,
            StreamIdRule::NonZero | StreamIdRule::Any => StreamId::new(1),
        };
        // 1. The minimal conforming frame must decode.
        if let Err(e) = decode(rule.kind, 0, good_id, &payload) {
            rule_ok = false;
            fail(report, format!("minimal valid frame rejected: {e:?}"));
        }
        // 2. Undefined flag bits must be ignored, not rejected (§4.1).
        if let Err(e) = decode(rule.kind, !rule.allowed_flags, good_id, &payload) {
            rule_ok = false;
            fail(
                report,
                format!("undefined flags rejected instead of ignored: {e:?}"),
            );
        }
        // 3. The stream-id constraint must be enforced with PROTOCOL_ERROR.
        let bad_id = match rule.stream_id {
            StreamIdRule::Zero => Some(StreamId::new(1)),
            StreamIdRule::NonZero => Some(StreamId::CONNECTION),
            StreamIdRule::Any => None,
        };
        if let Some(bad_id) = bad_id {
            match decode(rule.kind, 0, bad_id, &payload) {
                Err(e) if e.h2_error_code() == ErrorCode::ProtocolError => {}
                Err(e) => {
                    rule_ok = false;
                    fail(
                        report,
                        format!(
                            "stream-id violation maps to {:?}, not PROTOCOL_ERROR",
                            e.h2_error_code()
                        ),
                    );
                }
                Ok(_) => {
                    rule_ok = false;
                    fail(report, "stream-id violation accepted".to_string());
                }
            }
        } else {
            // WINDOW_UPDATE: both scopes must decode.
            if decode(rule.kind, 0, StreamId::CONNECTION, &payload).is_err() {
                rule_ok = false;
                fail(report, "connection-scope frame rejected".to_string());
            }
        }
        // 4. Size violations must be FRAME_SIZE_ERROR (§4.2).
        let bad_payloads: Vec<Vec<u8>> = match (rule.fixed_len, rule.min_len, rule.len_multiple_of)
        {
            (Some(n), _, _) => vec![vec![0; n + 1], vec![0; n.saturating_sub(1)]],
            (_, Some(n), _) => vec![vec![0; n - 1]],
            (_, _, Some(n)) => vec![vec![0; n - 1]],
            _ => Vec::new(),
        };
        for bad in bad_payloads {
            match decode(rule.kind, 0, good_id, &bad) {
                Err(e) if e.h2_error_code() == ErrorCode::FrameSizeError => {}
                Err(e) => {
                    rule_ok = false;
                    fail(
                        report,
                        format!(
                            "{}-octet payload maps to {:?}, not FRAME_SIZE_ERROR",
                            bad.len(),
                            e.h2_error_code()
                        ),
                    );
                }
                Ok(_) => {
                    rule_ok = false;
                    fail(report, format!("{}-octet payload accepted", bad.len()));
                }
            }
        }
        if rule_ok {
            ok += 1;
        }
    }
    // HEADERS with the PRIORITY flag promises 5 extra octets; shorter is
    // a size error too (§6.2), handled off-table because it is flag-dependent.
    let short = decode(FrameKind::Headers, 0x20, StreamId::new(1), &[0, 0, 0]);
    let headers_priority_ok =
        matches!(&short, Err(e) if e.h2_error_code() == ErrorCode::FrameSizeError);
    if !headers_priority_ok {
        report.findings.push(drift(
            FILE,
            1,
            format!("§6.2 HEADERS+PRIORITY short payload maps to {short:?}, not FRAME_SIZE_ERROR"),
        ));
    }
    report.drift.push(format!(
        "§6 frame rules: {ok}/{} decoder-verified (stream id, size, flag tolerance)",
        FRAME_RULES.len()
    ));
}

fn check_error_taxonomy(report: &mut Report) {
    const FILE: &str = "crates/h2wire/src/error.rs";
    let cases: Vec<(DecodeFrameError, ErrorCode)> = vec![
        (
            DecodeFrameError::FrameTooLarge {
                length: 99_999,
                max: 16_384,
            },
            ErrorCode::FrameSizeError,
        ),
        (
            DecodeFrameError::InvalidLength {
                kind: 0x6,
                length: 7,
            },
            ErrorCode::FrameSizeError,
        ),
        (
            DecodeFrameError::InvalidStreamId {
                kind: 0x4,
                stream_id: 1,
            },
            ErrorCode::ProtocolError,
        ),
        (DecodeFrameError::InvalidPadding, ErrorCode::ProtocolError),
        (
            DecodeFrameError::InvalidWindowIncrement,
            ErrorCode::ProtocolError,
        ),
        (
            DecodeFrameError::SettingsAckWithPayload,
            ErrorCode::FrameSizeError,
        ),
        (
            DecodeFrameError::InvalidSettingValue {
                id: 0x4,
                value: u32::MAX,
            },
            ErrorCode::FlowControlError,
        ),
        (
            DecodeFrameError::InvalidSettingValue { id: 0x2, value: 2 },
            ErrorCode::ProtocolError,
        ),
        (DecodeFrameError::Truncated, ErrorCode::ProtocolError),
    ];
    let total = cases.len();
    let mut ok = 0;
    for (err, want) in cases {
        let got = err.h2_error_code();
        if got == want {
            ok += 1;
        } else {
            report.findings.push(drift(
                FILE,
                1,
                format!("{err:?} maps to {got:?}, spec table wants {want:?}"),
            ));
        }
    }
    report.drift.push(format!(
        "§7 error taxonomy: {ok}/{total} decode errors map to the table's codes"
    ));
}

fn check_setting_bounds(report: &mut Report) {
    const FILE: &str = "crates/h2wire/src/settings.rs";
    fn try_value(
        report: &mut Report,
        counts: &mut (usize, usize),
        id: SettingId,
        value: u64,
        legal: bool,
    ) {
        counts.0 += 1;
        let Ok(v) = u32::try_from(value) else {
            // Out of u32 range, unrepresentable on the wire: nothing to check.
            counts.1 += 1;
            return;
        };
        let accepted = Settings::new().with(id, v).validate().is_ok();
        if accepted == legal {
            counts.1 += 1;
        } else {
            report.findings.push(drift(
                FILE,
                1,
                format!(
                    "§6.5.2 {id:?}={value}: table says {}, validate() says {}",
                    if legal { "legal" } else { "illegal" },
                    if accepted { "legal" } else { "illegal" }
                ),
            ));
        }
    }
    let mut counts = (0usize, 0usize);
    for bound in &SETTING_BOUNDS {
        try_value(report, &mut counts, bound.id, bound.min, true);
        try_value(report, &mut counts, bound.id, bound.max, true);
        try_value(report, &mut counts, bound.id, bound.max + 1, false);
        if bound.min > 0 {
            try_value(report, &mut counts, bound.id, bound.min - 1, false);
        }
    }
    let (probes, ok) = counts;
    let mut profiles_ok = 0;
    let profiles = all_profiles();
    for profile in &profiles {
        if profile.behavior.announced.validate().is_ok() {
            profiles_ok += 1;
        } else {
            report.findings.push(drift(
                "crates/h2server/src/profiles.rs",
                1,
                format!(
                    "{} announces SETTINGS outside the §6.5.2 bounds",
                    profile.name
                ),
            ));
        }
    }
    report.drift.push(format!(
        "§6.5.2 settings bounds: {ok}/{probes} boundary probes, {profiles_ok}/{} profile announcements OK",
        profiles.len()
    ));
}

// ---------------------------------------------------------------------------
// Registries: quirks and probes must cite spec rules
// ---------------------------------------------------------------------------

/// Public field names of a struct named `struct_name` in `sf`, with
/// the line each was declared on.
pub fn struct_pub_fields(sf: &SourceFile, struct_name: &str) -> Vec<(String, usize)> {
    let mut fields = Vec::new();
    for i in 0..sf.tokens.len() {
        if sf.ident_at(i) != Some("struct") || sf.ident_at(i + 1) != Some(struct_name) {
            continue;
        }
        // Find the opening brace (skipping nothing for these structs).
        let mut j = i + 2;
        while j < sf.tokens.len() && !sf.punct_at(j, '{') {
            j += 1;
        }
        let mut depth = 0i32;
        while j < sf.tokens.len() {
            if sf.punct_at(j, '{') {
                depth += 1;
            } else if sf.punct_at(j, '}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 && sf.ident_at(j) == Some("pub") && sf.punct_at(j + 2, ':') {
                if let Some(name) = sf.ident_at(j + 1) {
                    fields.push((name.to_string(), sf.tokens[j + 1].line));
                }
            }
            j += 1;
        }
        break;
    }
    fields
}

/// Cross-checks one file's `ServerBehavior`-shaped struct against
/// [`QUIRK_RULES`], forward direction only (every field must cite a
/// rule). Used both by the workspace run and by `--check-file`.
pub fn check_quirk_fields(
    file: &str,
    sf: &SourceFile,
    findings: &mut Vec<Finding>,
) -> Vec<(String, usize)> {
    let fields = struct_pub_fields(sf, "ServerBehavior");
    for (name, line) in &fields {
        if !QUIRK_RULES.iter().any(|(f, _)| f == name) {
            findings.push(Finding {
                kind: "quirk-registry",
                severity: Severity::Error,
                file: file.to_string(),
                line: *line,
                message: format!(
                    "quirk field `{name}` cites no spec rule; add it to h2check::spec::QUIRK_RULES"
                ),
            });
        }
    }
    fields
}

fn check_quirk_registry(root: &Path, report: &mut Report) {
    const FILE: &str = "crates/h2server/src/behavior.rs";
    let path = root.join(FILE);
    let Ok(src) = std::fs::read_to_string(&path) else {
        report.findings.push(drift(
            FILE,
            1,
            "cannot read behavior.rs for the quirk registry check".to_string(),
        ));
        return;
    };
    let sf = lex(&src);
    let before = report.findings.len();
    let fields = check_quirk_fields(FILE, &sf, &mut report.findings);
    let unmapped = report.findings.len() - before;
    // Reverse direction: a mapping whose field no longer exists is stale.
    let mut stale = 0;
    for (field, _) in QUIRK_RULES {
        if !fields.iter().any(|(name, _)| name == field) {
            stale += 1;
            report.findings.push(drift(
                "crates/h2check/src/spec.rs",
                1,
                format!("QUIRK_RULES maps `{field}`, which is not a ServerBehavior field"),
            ));
        }
    }
    report.drift.push(format!(
        "quirk registry: {}/{} ServerBehavior fields cite a rule ({stale} stale mappings)",
        fields.len() - unmapped,
        fields.len()
    ));
}

/// `module::name` for every `pub fn` in `sf` whose parameter list
/// mentions `Target`.
pub fn probe_fns(module: &str, sf: &SourceFile) -> Vec<(String, usize)> {
    let mut fns = Vec::new();
    for i in 0..sf.tokens.len() {
        if sf.in_test[i] || sf.ident_at(i) != Some("pub") || sf.ident_at(i + 1) != Some("fn") {
            continue;
        }
        let Some(name) = sf.ident_at(i + 2) else {
            continue;
        };
        if !sf.punct_at(i + 3, '(') {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 3;
        let mut takes_target = false;
        while j < sf.tokens.len() {
            if sf.punct_at(j, '(') {
                depth += 1;
            } else if sf.punct_at(j, ')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if sf.ident_at(j) == Some("Target") {
                takes_target = true;
            }
            j += 1;
        }
        if takes_target {
            fns.push((format!("{module}::{name}"), sf.tokens[i + 2].line));
        }
    }
    fns
}

fn check_probe_registry(root: &Path, report: &mut Report) {
    let probes_dir = root.join("crates/h2scope/src/probes");
    let mut found: Vec<(String, String, usize)> = Vec::new();
    let mut entries: Vec<_> = match std::fs::read_dir(&probes_dir) {
        Ok(rd) => rd.filter_map(Result::ok).map(|e| e.path()).collect(),
        Err(_) => {
            report.findings.push(drift(
                "crates/h2scope/src/probes/mod.rs",
                1,
                "cannot read the probes directory for the probe registry check".to_string(),
            ));
            return;
        }
    };
    entries.sort();
    for path in entries {
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if stem == "mod" || path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let file = format!("crates/h2scope/src/probes/{stem}.rs");
        for (name, line) in probe_fns(stem, &lex(&src)) {
            found.push((name, file.clone(), line));
        }
    }
    let mut unmapped = 0;
    for (name, file, line) in &found {
        if !PROBE_RULES.iter().any(|(p, _)| p == name) {
            unmapped += 1;
            report.findings.push(Finding {
                kind: "probe-registry",
                severity: Severity::Error,
                file: file.clone(),
                line: *line,
                message: format!(
                    "probe `{name}` cites no spec rule; add it to h2check::spec::PROBE_RULES"
                ),
            });
        }
    }
    let mut stale = 0;
    for (probe, _) in PROBE_RULES {
        if !found.iter().any(|(name, _, _)| name == probe) {
            stale += 1;
            report.findings.push(drift(
                "crates/h2check/src/spec.rs",
                1,
                format!("PROBE_RULES maps `{probe}`, which is not a public probe"),
            ));
        }
    }
    report.drift.push(format!(
        "probe registry: {}/{} h2scope probes map to spec rules ({stale} stale mappings)",
        found.len() - unmapped,
        found.len()
    ));
}

// ---------------------------------------------------------------------------
// Dynamic: do the probes classify each profile as its matrix predicts?
// ---------------------------------------------------------------------------

fn all_profiles() -> Vec<ServerProfile> {
    let mut profiles = ServerProfile::testbed();
    profiles.push(ServerProfile::rfc7540());
    profiles
}

/// The reaction the quirk matrix predicts for a stream-scoped or
/// connection-scoped violation handled by `action`.
fn predict(action: QuirkAction, on_stream: bool, debug: bool) -> Reaction {
    match (action, on_stream) {
        (QuirkAction::Ignore, _) => Reaction::Ignored,
        (QuirkAction::RstStream, true) => Reaction::RstStream,
        // A "reset" reaction at connection scope degrades to GOAWAY.
        (QuirkAction::RstStream, false) | (QuirkAction::Goaway, _) => {
            if debug {
                Reaction::GoawayWithDebug
            } else {
                Reaction::Goaway
            }
        }
    }
}

/// The reaction the abuse-hardening matrix predicts for a volumetric
/// probe: a configured budget/cap/timeout tears the connection down
/// with an explanatory GOAWAY; no limit means the abuse is absorbed.
fn predict_abuse(limit_configured: bool) -> Reaction {
    if limit_configured {
        Reaction::GoawayWithDebug
    } else {
        Reaction::Ignored
    }
}

fn check_dynamic_quirks(report: &mut Report) {
    const FILE: &str = "crates/h2server/src/profiles.rs";
    let mut total = 0;
    let mut ok = 0;
    let site = Arc::new(SiteSpec::benchmark());
    let push_site = Arc::new(SiteSpec::page_with_assets(3, 2_000));
    for profile in all_profiles() {
        let name = profile.name.clone();
        let b = profile.behavior.clone();
        let profile = Arc::new(profile);
        let target = Target::testbed(profile.clone(), site.clone());
        let push_target = Target::testbed(profile, push_site.clone());
        let debug = b.zero_window_debug.is_some();
        let checks: Vec<(&str, String, String)> = vec![
            (
                "zero_window_update(stream)",
                format!(
                    "{:?}",
                    probes::flow_control::zero_window_update(&target, true)
                ),
                format!("{:?}", predict(b.zero_window_update_stream, true, debug)),
            ),
            (
                "zero_window_update(conn)",
                format!(
                    "{:?}",
                    probes::flow_control::zero_window_update(&target, false)
                ),
                format!("{:?}", predict(b.zero_window_update_conn, false, debug)),
            ),
            (
                "large_window_update(stream)",
                format!(
                    "{:?}",
                    probes::flow_control::large_window_update(&target, true)
                ),
                format!("{:?}", predict(b.large_window_update_stream, true, false)),
            ),
            (
                "large_window_update(conn)",
                format!(
                    "{:?}",
                    probes::flow_control::large_window_update(&target, false)
                ),
                format!("{:?}", predict(b.large_window_update_conn, false, false)),
            ),
            (
                "self_dependency",
                format!("{:?}", probes::priority::self_dependency(&target)),
                format!("{:?}", predict(b.self_dependency, true, false)),
            ),
            (
                "headers_at_zero_window",
                format!("{}", probes::flow_control::headers_at_zero_window(&target)),
                format!("{}", !(b.fc_on_headers || b.headers_gated_at_zero_window)),
            ),
            (
                "push.supported",
                format!("{}", probes::push::probe(&push_target, &["/"]).supported),
                format!("{}", b.push),
            ),
            (
                "priority.passes",
                format!("{}", probes::priority::algorithm1(&target).passes()),
                format!("{}", b.priority_mode.passes_table_iii()),
            ),
            (
                "ping.supported",
                format!("{}", probes::ping::probe(&target, 1).supported),
                format!("{}", b.ping),
            ),
            (
                "abuse.rst_rate",
                format!("{:?}", probes::abuse::rst_rate(&target)),
                format!("{:?}", predict_abuse(b.rst_rate_limit.is_some())),
            ),
            (
                "abuse.settings_rate",
                format!("{:?}", probes::abuse::settings_rate(&target)),
                format!("{:?}", predict_abuse(b.settings_rate_limit.is_some())),
            ),
            (
                "abuse.continuation_bound",
                format!("{:?}", probes::abuse::continuation_bound(&target)),
                format!("{:?}", predict_abuse(b.continuation_cap.is_some())),
            ),
            (
                "abuse.stalled_stream",
                format!("{:?}", probes::abuse::stalled_stream(&target)),
                format!("{:?}", predict_abuse(b.stall_timeout.is_some())),
            ),
            (
                "abuse.header_list_bound",
                format!("{:?}", probes::abuse::header_list_bound(&target)),
                format!(
                    "{:?}",
                    if b.header_list_limit.is_some() {
                        predict(b.oversized_header_list, true, false)
                    } else {
                        Reaction::Ignored
                    }
                ),
            ),
        ];
        for (what, observed, predicted) in checks {
            total += 1;
            if observed == predicted {
                ok += 1;
            } else {
                report.findings.push(drift(
                    FILE,
                    1,
                    format!(
                        "{name}: probe {what} observed {observed}, quirk matrix predicts {predicted}"
                    ),
                ));
            }
        }
    }
    report.drift.push(format!(
        "dynamic quirks: {ok}/{total} probe classifications match the quirk matrices"
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn struct_fields_are_extracted_with_lines() {
        let sf = lex("pub struct ServerBehavior {\n    pub tls: bool,\n    pub push: bool,\n    hidden: u8,\n}");
        let fields = struct_pub_fields(&sf, "ServerBehavior");
        assert_eq!(
            fields,
            vec![("tls".to_string(), 2), ("push".to_string(), 3)]
        );
    }

    #[test]
    fn probe_fns_require_a_target_parameter() {
        let sf = lex("pub fn probe(target: &Target) -> bool { true }\n\
             pub fn median(samples: &[f64]) -> f64 { 0.0 }\n\
             fn private(target: &Target) {}\n");
        let fns = probe_fns("ping", &sf);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].0, "ping::probe");
    }

    #[test]
    fn predictions_cover_the_action_matrix() {
        assert_eq!(predict(QuirkAction::Ignore, true, true), Reaction::Ignored);
        assert_eq!(
            predict(QuirkAction::RstStream, true, true),
            Reaction::RstStream
        );
        assert_eq!(
            predict(QuirkAction::RstStream, false, false),
            Reaction::Goaway
        );
        assert_eq!(
            predict(QuirkAction::Goaway, true, true),
            Reaction::GoawayWithDebug
        );
    }
}
