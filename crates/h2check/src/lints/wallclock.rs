//! Virtual-time discipline lint (Layer 2b).
//!
//! The entire reproduction runs on `netsim`'s simulated clock; campaign
//! determinism (and the byte-identical replay artifacts checked in CI)
//! depends on no wall-clock source leaking into the pipeline. Only the
//! `bench` crate (which measures real throughput) may touch real time.
//!
//! Flagged in non-test code: the identifiers `Instant` and `SystemTime`
//! anywhere (importing them is already a smell), and `thread::sleep`.

use crate::lexer::{SourceFile, Tok};
use crate::report::{Severity, Sink};

/// Runs the wall-clock lint over one file.
pub fn check(sf: &SourceFile, sink: &mut Sink<'_>) {
    for i in 0..sf.tokens.len() {
        if sf.in_test[i] {
            continue;
        }
        let line = sf.tokens[i].line;
        match &sf.tokens[i].tok {
            Tok::Ident(name) if name == "Instant" || name == "SystemTime" => {
                sink.emit(
                    "wallclock",
                    Severity::Error,
                    line,
                    format!("`{name}` is wall-clock time; use netsim::time::SimTime"),
                );
            }
            Tok::Ident(name) if name == "sleep" => {
                let qualified = i >= 3
                    && sf.punct_at(i - 1, ':')
                    && sf.punct_at(i - 2, ':')
                    && sf.ident_at(i - 3) == Some("thread");
                if qualified {
                    sink.emit(
                        "wallclock",
                        Severity::Error,
                        line,
                        "`thread::sleep` blocks on wall-clock time; model delay in netsim"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::report::{Finding, Waivers};
    use std::collections::BTreeMap;

    fn run(src: &str) -> Vec<Finding> {
        let sf = lex(src);
        let mut findings = Vec::new();
        let waivers = Waivers::parse("crates/netsim/src/x.rs", &sf, &mut findings);
        let mut waived = BTreeMap::new();
        let mut sink = Sink::new(
            "crates/netsim/src/x.rs",
            &waivers,
            &mut findings,
            &mut waived,
        );
        check(&sf, &mut sink);
        findings
    }

    #[test]
    fn instant_and_system_time_are_flagged() {
        let findings = run("use std::time::Instant;\nfn f() { let t = SystemTime::now(); }");
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.kind == "wallclock"));
    }

    #[test]
    fn thread_sleep_is_flagged() {
        let findings = run("fn f() { std::thread::sleep(d); }");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn unrelated_sleep_identifiers_pass() {
        let findings = run("fn sleep_budget() -> u64 { sleep_ns() }");
        assert!(findings.is_empty());
    }

    #[test]
    fn sim_time_passes() {
        let findings = run("fn f(t: SimTime) -> SimTime { t }");
        assert!(findings.is_empty());
    }
}
