//! Panic-freedom lint for protocol crates (Layer 2a).
//!
//! Protocol code parses attacker-controlled wire bytes; a reachable
//! panic is a denial-of-service primitive (cf. the permissive-state
//! attack surface catalogued in arXiv:2203.16796). Flagged in non-test
//! code:
//!
//! - `.unwrap()` / `.expect(...)` — kind `panic` (error)
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!` — kind
//!   `panic` (error)
//! - slice indexing `x[i]` — kind `index` (warning; indexing after an
//!   explicit bounds check is idiomatic wire-codec style, so these are
//!   expected to be waived per file with a justification)

use crate::lexer::{SourceFile, Tok};
use crate::report::{Severity, Sink};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the panic lint over one file.
pub fn check(sf: &SourceFile, sink: &mut Sink<'_>) {
    for i in 0..sf.tokens.len() {
        if sf.in_test[i] {
            continue;
        }
        let line = sf.tokens[i].line;
        match &sf.tokens[i].tok {
            Tok::Ident(name) if name == "unwrap" || name == "expect" => {
                let method_call = i > 0 && sf.punct_at(i - 1, '.') && sf.punct_at(i + 1, '(');
                if method_call {
                    sink.emit(
                        "panic",
                        Severity::Error,
                        line,
                        format!("`.{name}()` may panic on protocol input"),
                    );
                }
            }
            Tok::Ident(name)
                if PANIC_MACROS.contains(&name.as_str()) && sf.punct_at(i + 1, '!') =>
            {
                sink.emit(
                    "panic",
                    Severity::Error,
                    line,
                    format!("`{name}!` in protocol code"),
                );
            }
            Tok::Punct('[') if i > 0 => {
                let indexable = matches!(
                    &sf.tokens[i - 1].tok,
                    Tok::Ident(_) | Tok::Punct(']') | Tok::Punct(')')
                );
                if indexable {
                    sink.emit(
                        "index",
                        Severity::Warning,
                        line,
                        "slice index may panic; prefer `get()` or waive with the bounds argument"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::report::{Finding, Waivers};
    use std::collections::BTreeMap;

    fn run(src: &str) -> (Vec<Finding>, usize) {
        let sf = lex(src);
        let mut findings = Vec::new();
        let waivers = Waivers::parse("crates/h2wire/src/x.rs", &sf, &mut findings);
        let mut waived = BTreeMap::new();
        let mut sink = Sink::new(
            "crates/h2wire/src/x.rs",
            &waivers,
            &mut findings,
            &mut waived,
        );
        check(&sf, &mut sink);
        (findings, waived.values().sum())
    }

    #[test]
    fn unwrap_and_expect_calls_are_flagged() {
        let (findings, _) = run("fn f() { a.unwrap(); b.expect(\"msg\"); }");
        assert_eq!(findings.iter().filter(|f| f.kind == "panic").count(), 2);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let (findings, _) = run("fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 0); }");
        assert!(findings.is_empty());
    }

    #[test]
    fn panic_family_macros_are_flagged() {
        let (findings, _) = run("fn f() { panic!(\"x\"); unreachable!(); }");
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn indexing_is_a_warning() {
        let (findings, _) = run("fn f(b: &[u8]) -> u8 { b[0] }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "index");
        assert_eq!(findings[0].severity, Severity::Warning);
    }

    #[test]
    fn attributes_arrays_and_macros_are_not_indexing() {
        let (findings, _) =
            run("#[derive(Debug)] struct S; fn f() { let v = vec![1]; let a = [0u8; 4]; }");
        assert!(findings.is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let (findings, _) = run("#[cfg(test)] mod t { fn f() { a.unwrap(); } }");
        assert!(findings.is_empty());
    }

    #[test]
    fn waivers_suppress_and_count() {
        let (findings, waived) =
            run("fn f() { a.unwrap(); // h2check: allow(panic) — invariant: a is Some\n }");
        assert!(findings.is_empty());
        assert_eq!(waived, 1);
    }
}
