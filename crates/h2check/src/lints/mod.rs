//! Layer-2 source lints: token-level checks over workspace `.rs` files.

pub mod forbid_unsafe;
pub mod lockorder;
pub mod panics;
pub mod wallclock;
