//! Lock acquisition-order lint (Layer 2c).
//!
//! The scan scheduler, the observability layer and the simulated pipe
//! are the only places in the workspace where threads share mutexes. A
//! deadlock needs two locks acquired in opposite orders on two threads;
//! this lint extracts a conservative acquisition graph from the token
//! stream and fails on any cycle.
//!
//! Model (heuristic, token-level — documented limits):
//!
//! - An acquisition is `<chain>.lock(...)` or `<chain>.try_lock(...)`;
//!   the lock's identity is the last *field or variable* name in the
//!   chain (methods in between are skipped), so `self.traces.lock()`
//!   and `shared.traces.lock()` are the same lock `traces`.
//! - A guard bound with `let g = <chain>.lock()...;` is held until
//!   `drop(g)` or the end of its enclosing block; a chained use
//!   (`x.lock().unwrap().push(...)`) is transient and holds nothing.
//! - While any lock is held, each further acquisition adds a
//!   `held -> acquired` edge. Edges merge across functions and files by
//!   lock name; a cycle in the merged graph is an error.

use crate::lexer::{SourceFile, Tok};
use crate::report::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// One `held -> acquired` observation with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub held: String,
    /// Lock acquired while `held` was held.
    pub acquired: String,
    /// File of the acquisition.
    pub file: String,
    /// Line of the acquisition.
    pub line: usize,
}

struct Held {
    name: String,
    depth: i32,
    guard: Option<String>,
}

/// Extracts acquisition-order edges from one file (non-test code).
pub fn collect(file: &str, sf: &SourceFile) -> Vec<LockEdge> {
    let mut edges = Vec::new();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    for i in 0..sf.tokens.len() {
        if sf.in_test[i] {
            continue;
        }
        match &sf.tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            Tok::Ident(name) if name == "fn" => held.clear(),
            Tok::Ident(name)
                if (name == "lock" || name == "try_lock")
                    && i > 0
                    && sf.punct_at(i - 1, '.')
                    && sf.punct_at(i + 1, '(') =>
            {
                let Some(target) = chain_target(sf, i - 2) else {
                    continue;
                };
                for h in &held {
                    if h.name != target {
                        edges.push(LockEdge {
                            held: h.name.clone(),
                            acquired: target.clone(),
                            file: file.to_string(),
                            line: sf.tokens[i].line,
                        });
                    }
                }
                if let Some(guard) = binding_guard(sf, i) {
                    held.push(Held {
                        name: target,
                        depth,
                        guard: Some(guard),
                    });
                }
            }
            Tok::Ident(name) if name == "drop" && sf.punct_at(i + 1, '(') => {
                if let Some(g) = sf.ident_at(i + 2) {
                    if sf.punct_at(i + 3, ')') {
                        held.retain(|h| h.guard.as_deref() != Some(g));
                    }
                }
            }
            _ => {}
        }
    }
    edges
}

/// The last field/variable name of the method chain ending at token
/// index `j` (the token just before the `.` of `.lock`).
fn chain_target(sf: &SourceFile, mut j: usize) -> Option<String> {
    loop {
        match sf.tokens.get(j).map(|t| &t.tok) {
            Some(Tok::Punct(')')) => {
                // Skip back over a call's argument list to its `(`.
                let mut depth = 0i32;
                loop {
                    match sf.tokens.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct(')')) => depth += 1,
                        Some(Tok::Punct('(')) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        None => return None,
                        _ => {}
                    }
                    j = j.checked_sub(1)?;
                }
                j = j.checked_sub(1)?;
            }
            Some(Tok::Ident(name)) => {
                if sf.punct_at(j + 1, '(') {
                    // A method name: skip it and the `.` before it.
                    if j < 2 || !sf.punct_at(j - 1, '.') {
                        return Some(name.clone());
                    }
                    j -= 2;
                } else {
                    return Some(name.clone());
                }
            }
            _ => return None,
        }
    }
}

/// The `let` binding receiving the expression containing token
/// `lock_idx`, if the statement has the shape `let [mut] g = ...`.
fn binding_guard(sf: &SourceFile, lock_idx: usize) -> Option<String> {
    let mut j = lock_idx;
    while j > 0 {
        match &sf.tokens[j - 1].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            _ => j -= 1,
        }
    }
    if sf.ident_at(j) != Some("let") {
        return None;
    }
    let mut k = j + 1;
    if sf.ident_at(k) == Some("mut") {
        k += 1;
    }
    let name = sf.ident_at(k)?;
    if sf.punct_at(k + 1, '=') {
        Some(name.to_string())
    } else {
        None
    }
}

/// Detects cycles in the merged acquisition graph; one finding per
/// distinct back edge.
pub fn cycles(edges: &[LockEdge]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut provenance: BTreeMap<(&str, &str), (&str, usize)> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
        adj.entry(&e.acquired).or_default();
        provenance
            .entry((&e.held, &e.acquired))
            .or_insert((&e.file, e.line));
    }
    let mut findings = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for root in nodes {
        if done.contains(root) {
            continue;
        }
        // Iterative DFS with an explicit path for cycle reconstruction.
        let mut path: Vec<&str> = vec![root];
        let mut iters = vec![adj[root].iter()];
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        on_path.insert(root);
        while let Some(it) = iters.last_mut() {
            match it.next() {
                Some(&next) => {
                    if on_path.contains(next) {
                        let start = path.iter().position(|n| *n == next).unwrap_or(0);
                        let mut cycle: Vec<&str> = path[start..].to_vec();
                        cycle.push(next);
                        let closing = (*path.last().unwrap_or(&root), next);
                        let (file, line) = provenance
                            .get(&closing)
                            .copied()
                            .unwrap_or(("<unknown>", 0));
                        findings.push(Finding {
                            kind: "lockorder",
                            severity: Severity::Error,
                            file: file.to_string(),
                            line,
                            message: format!("lock acquisition cycle: {}", cycle.join(" -> ")),
                        });
                    } else if !done.contains(next) {
                        path.push(next);
                        on_path.insert(next);
                        iters.push(adj[next].iter());
                    }
                }
                None => {
                    let finished = path.pop().unwrap_or(root);
                    on_path.remove(finished);
                    done.insert(finished);
                    iters.pop();
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn edges_of(src: &str) -> Vec<(String, String)> {
        collect("x.rs", &lex(src))
            .into_iter()
            .map(|e| (e.held, e.acquired))
            .collect()
    }

    #[test]
    fn nested_bound_guards_produce_an_edge() {
        let src = "fn f(&self) { let a = self.traces.lock().unwrap(); let b = self.ring.lock().unwrap(); }";
        assert_eq!(
            edges_of(src),
            vec![("traces".to_string(), "ring".to_string())]
        );
    }

    #[test]
    fn chained_transient_lock_holds_nothing() {
        let src =
            "fn f(&self) { self.traces.lock().unwrap().push(1); self.ring.lock().unwrap().pop(); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "fn f(&self) { let a = self.x.lock().unwrap(); drop(a); let b = self.y.lock().unwrap(); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn block_end_releases_the_guard() {
        let src =
            "fn f(&self) { { let a = self.x.lock().unwrap(); } let b = self.y.lock().unwrap(); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn chain_through_as_ref_finds_the_field() {
        let src = "fn f(&self) { let a = self.x.lock().unwrap(); let b = self.ring.as_ref().expect(\"set\").lock().unwrap(); }";
        assert_eq!(edges_of(src), vec![("x".to_string(), "ring".to_string())]);
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let src =
            "fn a(&self) { let g = self.x.lock().unwrap(); let h = self.y.lock().unwrap(); }\n\
                   fn b(&self) { let h = self.y.lock().unwrap(); let g = self.x.lock().unwrap(); }";
        let edges = collect("x.rs", &lex(src));
        let findings = cycles(&edges);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("x -> y -> x")
                || findings[0].message.contains("y -> x -> y")
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src =
            "fn a(&self) { let g = self.x.lock().unwrap(); let h = self.y.lock().unwrap(); }\n\
                   fn b(&self) { let g = self.x.lock().unwrap(); let h = self.y.lock().unwrap(); }";
        let edges = collect("x.rs", &lex(src));
        assert!(cycles(&edges).is_empty());
    }
}
