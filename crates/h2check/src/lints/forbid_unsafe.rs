//! `#![forbid(unsafe_code)]` attestation (satellite of Layer 2).
//!
//! The protocol crates never need `unsafe`; forbidding it at the crate
//! root makes that a compiler guarantee. This lint verifies the
//! attribute is actually present in each crate's `lib.rs` so the
//! guarantee cannot silently regress.

use crate::lexer::{SourceFile, Tok};

/// Does the file carry a top-level `#![forbid(unsafe_code)]`?
pub fn has_forbid_unsafe(sf: &SourceFile) -> bool {
    for i in 0..sf.tokens.len() {
        if !sf.punct_at(i, '#') || !sf.punct_at(i + 1, '!') || !sf.punct_at(i + 2, '[') {
            continue;
        }
        if sf.ident_at(i + 3) != Some("forbid") || !sf.punct_at(i + 4, '(') {
            continue;
        }
        // Accept any argument list containing `unsafe_code`.
        let mut j = i + 5;
        while let Some(tok) = sf.tokens.get(j) {
            match &tok.tok {
                Tok::Punct(')') => break,
                Tok::Ident(name) if name == "unsafe_code" => return true,
                _ => j += 1,
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn present_attribute_is_found() {
        assert!(has_forbid_unsafe(&lex(
            "//! Doc.\n#![forbid(unsafe_code)]\npub fn f() {}"
        )));
    }

    #[test]
    fn multi_argument_forbid_is_found() {
        assert!(has_forbid_unsafe(&lex(
            "#![forbid(missing_docs, unsafe_code)]"
        )));
    }

    #[test]
    fn absent_attribute_is_missed() {
        assert!(!has_forbid_unsafe(&lex(
            "#![deny(missing_docs)]\npub fn f() {}"
        )));
        assert!(!has_forbid_unsafe(&lex(
            "#[forbid(unsafe_code)]\nfn f() {}"
        )));
    }
}
