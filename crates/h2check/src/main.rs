//! CLI for the h2check static-analysis suite.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut check_file: Option<PathBuf> = None;
    let mut workspace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny-warnings" => deny_warnings = true,
            "--check-file" => match args.next() {
                Some(path) => check_file = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--check-file requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: h2check [--workspace] [--check-file <path>] [--deny-warnings]");
                return ExitCode::from(2);
            }
        }
    }
    let report = match check_file {
        Some(path) => h2check::workspace::check_file(&path),
        None => {
            if !workspace {
                eprintln!("usage: h2check [--workspace] [--check-file <path>] [--deny-warnings]");
                return ExitCode::from(2);
            }
            h2check::workspace::run_workspace(&h2check::workspace::repo_root())
        }
    };
    print!("{}", report.render());
    if report.failed(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
