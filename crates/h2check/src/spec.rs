//! Layer 1: RFC 7540 conformance rules as declarative tables.
//!
//! Everything the workspace claims about HTTP/2 legality lives here in
//! data form — the §5.1 stream-state machine, the §6 per-frame-type
//! constraints, the §6.5.2 SETTINGS bounds, and a registry of spec
//! rules that every `ServerProfile` quirk and every h2scope probe must
//! reference. [`crate::drift`] cross-validates these tables against the
//! *implementations* in `h2conn`, `h2wire`, `h2server` and `h2scope`,
//! so a change to either side that is not mirrored on the other fails
//! the `static-analysis` CI job.

use h2wire::{ErrorCode, FrameKind, SettingId};

// ---------------------------------------------------------------------------
// §5.1 stream states
// ---------------------------------------------------------------------------

/// The seven stream states of RFC 7540 §5.1 (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecState {
    /// No frames exchanged yet.
    Idle,
    /// Promised by a PUSH_PROMISE this endpoint sent.
    ReservedLocal,
    /// Promised by a PUSH_PROMISE this endpoint received.
    ReservedRemote,
    /// Both endpoints may send.
    Open,
    /// This endpoint sent END_STREAM.
    HalfClosedLocal,
    /// The peer sent END_STREAM.
    HalfClosedRemote,
    /// Terminal.
    Closed,
}

/// All states, in the order used by every table in this module.
pub const ALL_STATES: [SpecState; 7] = [
    SpecState::Idle,
    SpecState::ReservedLocal,
    SpecState::ReservedRemote,
    SpecState::Open,
    SpecState::HalfClosedLocal,
    SpecState::HalfClosedRemote,
    SpecState::Closed,
];

/// The transition-triggering inputs of Figure 2, from this endpoint's
/// perspective. `SendHeaders`/`RecvHeaders` cover both the H/ES arcs
/// (HEADERS with and without END_STREAM); the PUSH_PROMISE arcs are the
/// reserved entry states themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecEvent {
    /// This endpoint sends HEADERS (`end_stream` = END_STREAM flag).
    SendHeaders {
        /// END_STREAM set on the HEADERS frame.
        end_stream: bool,
    },
    /// The peer's HEADERS arrives.
    RecvHeaders {
        /// END_STREAM set on the HEADERS frame.
        end_stream: bool,
    },
    /// This endpoint sends a frame bearing END_STREAM.
    SendEndStream,
    /// A frame bearing END_STREAM arrives.
    RecvEndStream,
    /// This endpoint sends RST_STREAM.
    SendReset,
    /// RST_STREAM arrives.
    RecvReset,
}

/// All eight event values.
pub const ALL_EVENTS: [SpecEvent; 8] = [
    SpecEvent::SendHeaders { end_stream: false },
    SpecEvent::SendHeaders { end_stream: true },
    SpecEvent::RecvHeaders { end_stream: false },
    SpecEvent::RecvHeaders { end_stream: true },
    SpecEvent::SendEndStream,
    SpecEvent::RecvEndStream,
    SpecEvent::SendReset,
    SpecEvent::RecvReset,
];

/// One arc of the Figure 2 state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State before the event.
    pub from: SpecState,
    /// The input.
    pub event: SpecEvent,
    /// State after the event.
    pub to: SpecState,
}

const fn t(from: SpecState, event: SpecEvent, to: SpecState) -> Transition {
    Transition { from, event, to }
}

use SpecEvent::{RecvEndStream, RecvHeaders, RecvReset, SendEndStream, SendHeaders, SendReset};
use SpecState::{
    Closed, HalfClosedLocal, HalfClosedRemote, Idle, Open, ReservedLocal, ReservedRemote,
};

const SH: SpecEvent = SendHeaders { end_stream: false };
const SHE: SpecEvent = SendHeaders { end_stream: true };
const RH: SpecEvent = RecvHeaders { end_stream: false };
const RHE: SpecEvent = RecvHeaders { end_stream: true };

/// The complete §5.1 transition table: 7 states x 8 events. Arcs Figure
/// 2 does not draw keep the stream in place (frame legality for those
/// is [`RECV_LEGALITY`]'s concern, not the state function's).
pub const TRANSITIONS: [Transition; 56] = [
    // send HEADERS, END_STREAM clear
    t(Idle, SH, Open),
    t(ReservedLocal, SH, HalfClosedRemote),
    t(ReservedRemote, SH, ReservedRemote),
    t(Open, SH, Open),
    t(HalfClosedLocal, SH, HalfClosedLocal),
    t(HalfClosedRemote, SH, HalfClosedRemote),
    t(Closed, SH, Closed),
    // send HEADERS, END_STREAM set
    t(Idle, SHE, HalfClosedLocal),
    t(ReservedLocal, SHE, Closed),
    t(ReservedRemote, SHE, ReservedRemote),
    t(Open, SHE, HalfClosedLocal),
    t(HalfClosedLocal, SHE, HalfClosedLocal),
    t(HalfClosedRemote, SHE, Closed),
    t(Closed, SHE, Closed),
    // recv HEADERS, END_STREAM clear
    t(Idle, RH, Open),
    t(ReservedLocal, RH, ReservedLocal),
    t(ReservedRemote, RH, HalfClosedLocal),
    t(Open, RH, Open),
    t(HalfClosedLocal, RH, HalfClosedLocal),
    t(HalfClosedRemote, RH, HalfClosedRemote),
    t(Closed, RH, Closed),
    // recv HEADERS, END_STREAM set
    t(Idle, RHE, HalfClosedRemote),
    t(ReservedLocal, RHE, ReservedLocal),
    t(ReservedRemote, RHE, Closed),
    t(Open, RHE, HalfClosedRemote),
    t(HalfClosedLocal, RHE, Closed),
    t(HalfClosedRemote, RHE, HalfClosedRemote),
    t(Closed, RHE, Closed),
    // send END_STREAM on a later frame (DATA)
    t(Idle, SendEndStream, Idle),
    t(ReservedLocal, SendEndStream, ReservedLocal),
    t(ReservedRemote, SendEndStream, ReservedRemote),
    t(Open, SendEndStream, HalfClosedLocal),
    t(HalfClosedLocal, SendEndStream, HalfClosedLocal),
    t(HalfClosedRemote, SendEndStream, Closed),
    t(Closed, SendEndStream, Closed),
    // recv END_STREAM on a later frame (DATA)
    t(Idle, RecvEndStream, Idle),
    t(ReservedLocal, RecvEndStream, ReservedLocal),
    t(ReservedRemote, RecvEndStream, ReservedRemote),
    t(Open, RecvEndStream, HalfClosedRemote),
    t(HalfClosedLocal, RecvEndStream, Closed),
    t(HalfClosedRemote, RecvEndStream, HalfClosedRemote),
    t(Closed, RecvEndStream, Closed),
    // send RST_STREAM
    t(Idle, SendReset, Closed),
    t(ReservedLocal, SendReset, Closed),
    t(ReservedRemote, SendReset, Closed),
    t(Open, SendReset, Closed),
    t(HalfClosedLocal, SendReset, Closed),
    t(HalfClosedRemote, SendReset, Closed),
    t(Closed, SendReset, Closed),
    // recv RST_STREAM
    t(Idle, RecvReset, Closed),
    t(ReservedLocal, RecvReset, Closed),
    t(ReservedRemote, RecvReset, Closed),
    t(Open, RecvReset, Closed),
    t(HalfClosedLocal, RecvReset, Closed),
    t(HalfClosedRemote, RecvReset, Closed),
    t(Closed, RecvReset, Closed),
];

/// Per-state DATA capabilities (§5.1 prose: which states permit an
/// endpoint to send or receive flow-controlled frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCapabilities {
    /// The state.
    pub state: SpecState,
    /// This endpoint may send DATA.
    pub may_send_data: bool,
    /// This endpoint may receive DATA.
    pub may_recv_data: bool,
}

const fn cap(state: SpecState, may_send_data: bool, may_recv_data: bool) -> StateCapabilities {
    StateCapabilities {
        state,
        may_send_data,
        may_recv_data,
    }
}

/// DATA capability per state.
pub const CAPABILITIES: [StateCapabilities; 7] = [
    cap(Idle, false, false),
    cap(ReservedLocal, false, false),
    cap(ReservedRemote, false, false),
    cap(Open, true, true),
    cap(HalfClosedLocal, false, true),
    cap(HalfClosedRemote, true, false),
    cap(Closed, false, false),
];

/// What §5.1 tells a receiver to do with a stream-addressed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvOutcome {
    /// Process the frame.
    Legal,
    /// Treat as a connection error with this code.
    ConnectionError(ErrorCode),
    /// Treat as a stream error with this code.
    StreamError(ErrorCode),
}

/// One cell of the receive-legality matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvRule {
    /// Receiver-side stream state.
    pub state: SpecState,
    /// Arriving frame type.
    pub frame: FrameKind,
    /// Mandated reaction.
    pub outcome: RecvOutcome,
}

const fn rl(state: SpecState, frame: FrameKind, outcome: RecvOutcome) -> RecvRule {
    RecvRule {
        state,
        frame,
        outcome,
    }
}

const LEGAL: RecvOutcome = RecvOutcome::Legal;
const CONN_PROTO: RecvOutcome = RecvOutcome::ConnectionError(ErrorCode::ProtocolError);
const STREAM_CLOSED: RecvOutcome = RecvOutcome::StreamError(ErrorCode::StreamClosed);

/// §5.1 receive legality: 7 states x the 6 stream-addressed frame
/// types (CONTINUATION is excluded — its legality follows the HEADERS
/// in flight, not the stream state).
pub const RECV_LEGALITY: [RecvRule; 42] = [
    // idle: only HEADERS and PRIORITY may arrive
    rl(Idle, FrameKind::Data, CONN_PROTO),
    rl(Idle, FrameKind::Headers, LEGAL),
    rl(Idle, FrameKind::Priority, LEGAL),
    rl(Idle, FrameKind::RstStream, CONN_PROTO),
    rl(Idle, FrameKind::PushPromise, CONN_PROTO),
    rl(Idle, FrameKind::WindowUpdate, CONN_PROTO),
    // reserved (local): RST_STREAM, PRIORITY, WINDOW_UPDATE
    rl(ReservedLocal, FrameKind::Data, CONN_PROTO),
    rl(ReservedLocal, FrameKind::Headers, CONN_PROTO),
    rl(ReservedLocal, FrameKind::Priority, LEGAL),
    rl(ReservedLocal, FrameKind::RstStream, LEGAL),
    rl(ReservedLocal, FrameKind::PushPromise, CONN_PROTO),
    rl(ReservedLocal, FrameKind::WindowUpdate, LEGAL),
    // reserved (remote): HEADERS, RST_STREAM, PRIORITY
    rl(ReservedRemote, FrameKind::Data, CONN_PROTO),
    rl(ReservedRemote, FrameKind::Headers, LEGAL),
    rl(ReservedRemote, FrameKind::Priority, LEGAL),
    rl(ReservedRemote, FrameKind::RstStream, LEGAL),
    rl(ReservedRemote, FrameKind::PushPromise, CONN_PROTO),
    rl(ReservedRemote, FrameKind::WindowUpdate, CONN_PROTO),
    // open: any frame
    rl(Open, FrameKind::Data, LEGAL),
    rl(Open, FrameKind::Headers, LEGAL),
    rl(Open, FrameKind::Priority, LEGAL),
    rl(Open, FrameKind::RstStream, LEGAL),
    rl(Open, FrameKind::PushPromise, LEGAL),
    rl(Open, FrameKind::WindowUpdate, LEGAL),
    // half-closed (local): any frame
    rl(HalfClosedLocal, FrameKind::Data, LEGAL),
    rl(HalfClosedLocal, FrameKind::Headers, LEGAL),
    rl(HalfClosedLocal, FrameKind::Priority, LEGAL),
    rl(HalfClosedLocal, FrameKind::RstStream, LEGAL),
    rl(HalfClosedLocal, FrameKind::PushPromise, LEGAL),
    rl(HalfClosedLocal, FrameKind::WindowUpdate, LEGAL),
    // half-closed (remote): WINDOW_UPDATE, PRIORITY, RST_STREAM
    rl(HalfClosedRemote, FrameKind::Data, STREAM_CLOSED),
    rl(HalfClosedRemote, FrameKind::Headers, STREAM_CLOSED),
    rl(HalfClosedRemote, FrameKind::Priority, LEGAL),
    rl(HalfClosedRemote, FrameKind::RstStream, LEGAL),
    rl(HalfClosedRemote, FrameKind::PushPromise, STREAM_CLOSED),
    rl(HalfClosedRemote, FrameKind::WindowUpdate, LEGAL),
    // closed: PRIORITY only
    rl(Closed, FrameKind::Data, STREAM_CLOSED),
    rl(Closed, FrameKind::Headers, STREAM_CLOSED),
    rl(Closed, FrameKind::Priority, LEGAL),
    rl(Closed, FrameKind::RstStream, LEGAL),
    rl(Closed, FrameKind::PushPromise, STREAM_CLOSED),
    rl(Closed, FrameKind::WindowUpdate, LEGAL),
];

// ---------------------------------------------------------------------------
// §6 frame constraints
// ---------------------------------------------------------------------------

/// What stream id a frame type requires (the 0x0 connection stream,
/// a non-zero stream, or either).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamIdRule {
    /// Must be 0x0.
    Zero,
    /// Must be non-zero.
    NonZero,
    /// Either (WINDOW_UPDATE).
    Any,
}

/// §6 size/flag/stream-id constraints for one frame type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRule {
    /// Frame type.
    pub kind: FrameKind,
    /// Stream-id constraint.
    pub stream_id: StreamIdRule,
    /// Exact payload length, if fixed.
    pub fixed_len: Option<usize>,
    /// Minimum payload length, if any (before padding/flag fields).
    pub min_len: Option<usize>,
    /// Payload length divisor, if any.
    pub len_multiple_of: Option<usize>,
    /// Bit mask of defined flags; undefined bits must be ignored.
    pub allowed_flags: u8,
    /// RFC 7540 section defining the type.
    pub section: &'static str,
}

const fn fr(
    kind: FrameKind,
    stream_id: StreamIdRule,
    fixed_len: Option<usize>,
    min_len: Option<usize>,
    len_multiple_of: Option<usize>,
    allowed_flags: u8,
    section: &'static str,
) -> FrameRule {
    FrameRule {
        kind,
        stream_id,
        fixed_len,
        min_len,
        len_multiple_of,
        allowed_flags,
        section,
    }
}

/// All ten frame types of RFC 7540 §6. Length violations of the fixed
/// and minimum sizes are FRAME_SIZE_ERROR (§4.2); stream-id violations
/// are PROTOCOL_ERROR.
pub const FRAME_RULES: [FrameRule; 10] = [
    // END_STREAM | PADDED
    fr(
        FrameKind::Data,
        StreamIdRule::NonZero,
        None,
        None,
        None,
        0x09,
        "6.1",
    ),
    // END_STREAM | END_HEADERS | PADDED | PRIORITY
    fr(
        FrameKind::Headers,
        StreamIdRule::NonZero,
        None,
        None,
        None,
        0x2d,
        "6.2",
    ),
    fr(
        FrameKind::Priority,
        StreamIdRule::NonZero,
        Some(5),
        None,
        None,
        0x00,
        "6.3",
    ),
    fr(
        FrameKind::RstStream,
        StreamIdRule::NonZero,
        Some(4),
        None,
        None,
        0x00,
        "6.4",
    ),
    // ACK
    fr(
        FrameKind::Settings,
        StreamIdRule::Zero,
        None,
        None,
        Some(6),
        0x01,
        "6.5",
    ),
    // END_HEADERS | PADDED; 4-octet promised stream id minimum
    fr(
        FrameKind::PushPromise,
        StreamIdRule::NonZero,
        None,
        Some(4),
        None,
        0x0c,
        "6.6",
    ),
    // ACK
    fr(
        FrameKind::Ping,
        StreamIdRule::Zero,
        Some(8),
        None,
        None,
        0x01,
        "6.7",
    ),
    // last-stream-id + error code minimum
    fr(
        FrameKind::Goaway,
        StreamIdRule::Zero,
        None,
        Some(8),
        None,
        0x00,
        "6.8",
    ),
    fr(
        FrameKind::WindowUpdate,
        StreamIdRule::Any,
        Some(4),
        None,
        None,
        0x00,
        "6.9",
    ),
    // END_HEADERS
    fr(
        FrameKind::Continuation,
        StreamIdRule::NonZero,
        None,
        None,
        None,
        0x04,
        "6.10",
    ),
];

/// §6.5.2 bounds on SETTINGS values. Values outside the bound are a
/// connection error: FLOW_CONTROL_ERROR for INITIAL_WINDOW_SIZE,
/// PROTOCOL_ERROR otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettingBound {
    /// The parameter.
    pub id: SettingId,
    /// Smallest legal value.
    pub min: u64,
    /// Largest legal value.
    pub max: u64,
}

/// The three bounded parameters (the others accept any u32).
pub const SETTING_BOUNDS: [SettingBound; 3] = [
    SettingBound {
        id: SettingId::EnablePush,
        min: 0,
        max: 1,
    },
    SettingBound {
        id: SettingId::InitialWindowSize,
        min: 0,
        max: (1 << 31) - 1,
    },
    SettingBound {
        id: SettingId::MaxFrameSize,
        min: 1 << 14,
        max: (1 << 24) - 1,
    },
];

// ---------------------------------------------------------------------------
// Rule registry: the vocabulary quirks and probes must speak
// ---------------------------------------------------------------------------

/// Where a rule's authority comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleBasis {
    /// An RFC 7540 requirement (the section cited).
    Spec(&'static str),
    /// Testbed shaping with no RFC requirement behind it (latency,
    /// naming, response decoration); legal for quirks, illegal for
    /// probe classifiers.
    Modeling,
}

/// One entry in the rule registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable identifier referenced by [`QUIRK_RULES`] / [`PROBE_RULES`].
    pub id: &'static str,
    /// Authority.
    pub basis: RuleBasis,
    /// One-line statement of the rule.
    pub summary: &'static str,
}

const fn rule(id: &'static str, basis: RuleBasis, summary: &'static str) -> Rule {
    Rule { id, basis, summary }
}

use RuleBasis::{Modeling, Spec};

/// Every spec rule the workspace's quirk matrices and probe
/// classifiers are allowed to cite.
pub const RULES: [Rule; 23] = [
    rule(
        "stream-states",
        Spec("5.1"),
        "streams follow the Figure 2 lifecycle",
    ),
    rule(
        "multiplexing",
        Spec("5.1.2"),
        "concurrent streams up to MAX_CONCURRENT_STREAMS",
    ),
    rule(
        "self-dependency",
        Spec("5.3.1"),
        "a stream cannot depend on itself",
    ),
    rule(
        "priority-scheduling",
        Spec("5.3"),
        "allocate bandwidth parent-before-children by weight",
    ),
    rule(
        "frame-size",
        Spec("4.2"),
        "wrong-size frames are FRAME_SIZE_ERROR",
    ),
    rule(
        "settings-bounds",
        Spec("6.5.2"),
        "SETTINGS values must respect the defined bounds",
    ),
    rule(
        "header-table-size",
        Spec("6.5.2"),
        "honor the peer's SETTINGS_HEADER_TABLE_SIZE",
    ),
    rule(
        "hpack-context",
        Spec("4.3"),
        "maintain the HPACK dynamic table across responses",
    ),
    rule(
        "push",
        Spec("8.2"),
        "server push via PUSH_PROMISE on an existing stream",
    ),
    rule(
        "ping",
        Spec("6.7"),
        "PING must be acknowledged with an identical payload",
    ),
    rule(
        "goaway-debug",
        Spec("6.8"),
        "GOAWAY may carry opaque debug data",
    ),
    rule(
        "zero-increment",
        Spec("6.9"),
        "a WINDOW_UPDATE increment of 0 is PROTOCOL_ERROR",
    ),
    rule(
        "window-overflow",
        Spec("6.9.1"),
        "a window above 2^31-1 is FLOW_CONTROL_ERROR",
    ),
    rule(
        "fc-data-only",
        Spec("6.9"),
        "only DATA is flow-controlled; HEADERS must not block",
    ),
    rule(
        "window-honored",
        Spec("6.9.1"),
        "senders must not exceed the advertised window",
    ),
    rule(
        "initial-window",
        Spec("6.9.2"),
        "SETTINGS_INITIAL_WINDOW_SIZE retunes stream windows",
    ),
    rule(
        "tls-negotiation",
        Spec("3.3"),
        "h2 is negotiated via ALPN over TLS",
    ),
    rule(
        "h2c-upgrade",
        Spec("3.2"),
        "cleartext h2 starts with an HTTP/1.1 Upgrade",
    ),
    rule(
        "rst-rate",
        Spec("10.5"),
        "an endpoint may police abusive RST_STREAM churn",
    ),
    rule(
        "settings-rate",
        Spec("10.5"),
        "an endpoint may police SETTINGS frames extorting acks",
    ),
    rule(
        "continuation-cap",
        Spec("10.5"),
        "an endpoint may cap an unbounded header block",
    ),
    rule(
        "abuse-timeout",
        Spec("10.5"),
        "an endpoint may reap connections stalled past patience",
    ),
    rule(
        "max-header-list-size",
        Spec("10.5.1"),
        "a header list above the limit should be a stream error",
    ),
];

/// The `modeling` pseudo-rule id used by quirks that shape the testbed
/// rather than deviate from the RFC.
pub const MODELING: Rule = rule(
    "modeling",
    Modeling,
    "testbed shaping, no RFC rule involved",
);

/// Looks up a rule by id ([`MODELING`] included).
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    if id == MODELING.id {
        return Some(&MODELING);
    }
    RULES.iter().find(|r| r.id == id)
}

/// Every public field of `h2server::ServerBehavior`, mapped to the
/// rule it deviates from (or `modeling`). Drift check: this list and
/// the struct's actual fields must match exactly, both ways.
pub const QUIRK_RULES: &[(&str, &str)] = &[
    ("server_name", "modeling"),
    ("tls", "tls-negotiation"),
    ("multiplexing", "multiplexing"),
    ("fc_on_headers", "fc-data-only"),
    ("headers_gated_at_zero_window", "fc-data-only"),
    ("mute", "modeling"),
    ("extra_response_headers", "modeling"),
    ("zero_window_update_stream", "zero-increment"),
    ("zero_window_update_conn", "zero-increment"),
    ("zero_window_debug", "goaway-debug"),
    ("large_window_update_stream", "window-overflow"),
    ("large_window_update_conn", "window-overflow"),
    ("push", "push"),
    ("priority_mode", "priority-scheduling"),
    ("self_dependency", "self-dependency"),
    ("hpack_index_responses", "hpack-context"),
    ("ping", "ping"),
    ("announced", "settings-bounds"),
    ("zero_window_then_update", "initial-window"),
    ("zero_len_data_when_blocked", "window-honored"),
    ("cookie_injection", "modeling"),
    ("processing_delay", "modeling"),
    ("h2c_upgrade", "h2c-upgrade"),
    ("honor_peer_header_table_size", "header-table-size"),
    ("byzantine", "modeling"),
    ("rst_rate_limit", "rst-rate"),
    ("settings_rate_limit", "settings-rate"),
    ("continuation_cap", "continuation-cap"),
    ("stall_timeout", "abuse-timeout"),
    ("header_list_limit", "max-header-list-size"),
    ("oversized_header_list", "max-header-list-size"),
];

/// Every public probe entry point in `h2scope::probes` (functions
/// taking a `&Target`), mapped to the spec rules it classifies.
/// Modeling-only mappings are not allowed here: a probe that measures
/// nothing from the RFC has no place in the suite.
pub const PROBE_RULES: &[(&str, &[&str])] = &[
    ("flow_control::small_window", &["window-honored"]),
    ("flow_control::headers_at_zero_window", &["fc-data-only"]),
    (
        "flow_control::zero_window_update",
        &["zero-increment", "goaway-debug"],
    ),
    ("flow_control::large_window_update", &["window-overflow"]),
    (
        "flow_control::probe",
        &[
            "zero-increment",
            "window-overflow",
            "fc-data-only",
            "window-honored",
        ],
    ),
    ("hpack::probe", &["hpack-context", "header-table-size"]),
    ("multiplexing::probe", &["multiplexing"]),
    ("negotiation::probe", &["tls-negotiation"]),
    ("negotiation::h2c_upgrade", &["h2c-upgrade"]),
    ("ping::probe", &["ping"]),
    ("ping::compare_rtt", &["ping"]),
    ("priority::algorithm1", &["priority-scheduling"]),
    ("priority::naive_order_check", &["priority-scheduling"]),
    ("priority::weight_shares", &["priority-scheduling"]),
    ("priority::self_dependency", &["self-dependency"]),
    ("push::probe", &["push"]),
    ("settings::probe", &["settings-bounds"]),
    ("abuse::rst_rate", &["rst-rate"]),
    ("abuse::settings_rate", &["settings-rate"]),
    ("abuse::continuation_bound", &["continuation-cap"]),
    ("abuse::stalled_stream", &["abuse-timeout"]),
    ("abuse::header_list_bound", &["max-header-list-size"]),
    (
        "abuse::probe",
        &[
            "rst-rate",
            "settings-rate",
            "continuation-cap",
            "abuse-timeout",
            "max-header-list-size",
        ],
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn transition_table_is_total_and_unique() {
        assert_eq!(TRANSITIONS.len(), ALL_STATES.len() * ALL_EVENTS.len());
        let mut seen = BTreeSet::new();
        for tr in &TRANSITIONS {
            assert!(
                seen.insert(format!("{:?}/{:?}", tr.from, tr.event)),
                "duplicate arc {tr:?}"
            );
        }
    }

    #[test]
    fn closed_is_terminal() {
        for tr in TRANSITIONS.iter().filter(|tr| tr.from == Closed) {
            assert_eq!(tr.to, Closed);
        }
    }

    #[test]
    fn reset_always_closes() {
        for tr in &TRANSITIONS {
            if matches!(tr.event, SendReset | RecvReset) {
                assert_eq!(tr.to, Closed);
            }
        }
    }

    #[test]
    fn recv_legality_matches_data_capability() {
        for caps in &CAPABILITIES {
            let data_cell = RECV_LEGALITY
                .iter()
                .find(|r| r.state == caps.state && r.frame == FrameKind::Data)
                .expect("cell exists");
            assert_eq!(
                data_cell.outcome == RecvOutcome::Legal,
                caps.may_recv_data,
                "DATA legality vs capability in {:?}",
                caps.state
            );
        }
    }

    #[test]
    fn every_quirk_rule_resolves() {
        for (field, rule_id) in QUIRK_RULES {
            assert!(
                rule_by_id(rule_id).is_some(),
                "{field} cites unknown rule {rule_id}"
            );
        }
    }

    #[test]
    fn probe_rules_resolve_and_are_spec_backed() {
        for (probe, rule_ids) in PROBE_RULES {
            assert!(!rule_ids.is_empty(), "{probe} maps to no rule");
            for rule_id in *rule_ids {
                let rule = rule_by_id(rule_id)
                    .unwrap_or_else(|| panic!("{probe} cites unknown rule {rule_id}"));
                assert!(
                    matches!(rule.basis, RuleBasis::Spec(_)),
                    "{probe} cites non-spec rule {rule_id}"
                );
            }
        }
    }

    #[test]
    fn priority_has_no_defined_flags() {
        let pr = FRAME_RULES
            .iter()
            .find(|r| r.kind == FrameKind::Priority)
            .expect("rule");
        assert_eq!(pr.allowed_flags, 0);
        assert_eq!(pr.fixed_len, Some(5));
    }
}
