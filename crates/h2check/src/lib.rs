//! # h2check — in-repo static analysis for the HTTP/2 workspace
//!
//! A registry-free conformance and lint suite, run in CI as
//! `cargo run -p h2check -- --workspace --deny-warnings`. Two layers:
//!
//! 1. **Spec-conformance tables** ([`spec`]): RFC 7540's §5.1
//!    stream-state machine, §6 frame constraints and §6.5.2 SETTINGS
//!    bounds as declarative data, cross-validated ([`drift`]) against
//!    the live implementations — `h2conn`'s transitions, `h2wire`'s
//!    decoder and error taxonomy, every `ServerProfile` quirk matrix
//!    and every `h2scope` probe classifier (including running the
//!    actual simulated probes and comparing the observed reactions
//!    with the matrix's predictions).
//! 2. **Source lints** ([`lints`]): a hand-rolled token scanner
//!    ([`lexer`]) enforcing panic-freedom in the protocol crates,
//!    virtual-time discipline outside `bench`, a cycle-free lock
//!    acquisition order in the thread-sharing modules, and the
//!    `#![forbid(unsafe_code)]` attestation.
//!
//! Findings can be waived inline with a justification
//! (`// h2check: allow(panic) — reason`); a waiver without a reason is
//! itself an error. See [`report::Waivers`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod spec;
pub mod workspace;

pub use report::{Finding, Report, Severity};
