//! A minimal hand-rolled Rust tokenizer for the source lints.
//!
//! Deliberately not a parser (and deliberately not `syn`: the workspace
//! is registry-free). It produces identifiers, punctuation, literals and
//! lifetimes with line numbers, records line comments so waivers can be
//! parsed, and marks the token span of every `#[cfg(test)]` / `#[test]`
//! item so lints skip test code. String, raw-string, byte-string and
//! char literals are consumed atomically, so a `lock()` inside a string
//! never confuses a lint.

/// One lexed token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character.
    Punct(char),
    /// A string, char or numeric literal (value discarded).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// 1-based source line the token starts on.
    pub line: usize,
}

/// A lexed source file.
#[derive(Debug, Default)]
pub struct SourceFile {
    /// All tokens outside comments, in source order.
    pub tokens: Vec<Token>,
    /// `in_test[i]` marks `tokens[i]` as part of a test-gated item.
    pub in_test: Vec<bool>,
    /// Line comments as `(line, text after the slashes)`.
    pub comments: Vec<(usize, String)>,
}

impl SourceFile {
    /// The identifier at token index `i`, if it is one.
    pub fn ident_at(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    /// `true` when token `i` is the punctuation character `c`.
    pub fn punct_at(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens, comments and test-span markers.
pub fn lex(source: &str) -> SourceFile {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            comments.push((line, chars[start..j].iter().collect()));
            i = j;
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < chars.len() && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' {
            let start_line = line;
            i = lex_string(&chars, i, &mut line);
            tokens.push(Token {
                tok: Tok::Literal,
                line: start_line,
            });
        } else if c == '\'' {
            let start_line = line;
            let (tok, next) = lex_quote(&chars, i);
            i = next;
            tokens.push(Token {
                tok,
                line: start_line,
            });
        } else if is_ident_start(c) {
            // A raw/byte-string prefix (`r"`, `r#"`, `b"`, `br#"`) lexes
            // as one literal, not an ident followed by garbage.
            if let Some(next) = try_string_prefix(&chars, i, &mut line) {
                let start_line = line;
                tokens.push(Token {
                    tok: Tok::Literal,
                    line: start_line,
                });
                i = next;
                continue;
            }
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            tokens.push(Token {
                tok: Tok::Ident(chars[i..j].iter().collect()),
                line,
            });
            i = j;
        } else if c.is_ascii_digit() {
            // Numbers: digits plus alphanumeric suffix/radix chars. Dots
            // are left out on purpose (`1.5` lexes as three tokens, which
            // is fine for every lint here and keeps `..` unambiguous).
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            tokens.push(Token {
                tok: Tok::Literal,
                line,
            });
            i = j;
        } else {
            tokens.push(Token {
                tok: Tok::Punct(c),
                line,
            });
            i += 1;
        }
    }
    let in_test = mark_tests(&tokens);
    SourceFile {
        tokens,
        in_test,
        comments,
    }
}

/// Consumes a normal (escaped) string literal starting at the opening
/// quote; returns the index one past the closing quote.
fn lex_string(chars: &[char], start: usize, line: &mut usize) -> usize {
    let mut j = start + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Consumes a raw string literal `r#*"..."#*` starting at the first `#`
/// or quote (after the `r`); returns the index one past the end.
fn lex_raw_string(chars: &[char], start: usize, line: &mut usize) -> usize {
    let mut hashes = 0usize;
    let mut j = start;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(chars.get(j), Some(&'"'));
    j += 1;
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
        } else if chars[j] == '"'
            && chars[j + 1..]
                .iter()
                .take(hashes)
                .filter(|c| **c == '#')
                .count()
                == hashes
        {
            return j + 1 + hashes;
        } else {
            j += 1;
        }
    }
    j
}

/// If position `i` starts a raw or byte string (`r"`, `r#"`, `b"`,
/// `br"`, `br#"`), consumes it and returns the index past its end.
fn try_string_prefix(chars: &[char], i: usize, line: &mut usize) -> Option<usize> {
    let c = chars[i];
    if c == 'r' || c == 'b' {
        let mut j = i + 1;
        if c == 'b' && chars.get(j) == Some(&'r') {
            j += 1;
        }
        let raw = j > i + 1 || c == 'r';
        if raw {
            let mut k = j;
            while chars.get(k) == Some(&'#') {
                k += 1;
            }
            if chars.get(k) == Some(&'"') {
                return Some(lex_raw_string(chars, j, line));
            }
            return None;
        }
        // plain byte string b"..."
        if chars.get(j) == Some(&'"') {
            return Some(lex_string(chars, j, line));
        }
    }
    None
}

/// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal),
/// starting at the quote. Returns the token and the next index.
fn lex_quote(chars: &[char], i: usize) -> (Tok, usize) {
    match chars.get(i + 1) {
        Some(&'\\') => {
            // Escaped char literal: '\n', '\\', '\u{..}', '\x41'.
            let mut j = i + 2;
            match chars.get(j) {
                Some(&'u') => {
                    j += 1;
                    if chars.get(j) == Some(&'{') {
                        while j < chars.len() && chars[j] != '}' {
                            j += 1;
                        }
                        j += 1;
                    }
                }
                Some(&'x') => j += 3,
                Some(_) => j += 1,
                None => {}
            }
            if chars.get(j) == Some(&'\'') {
                j += 1;
            }
            (Tok::Literal, j)
        }
        Some(&c) if is_ident_start(c) => {
            if chars.get(i + 2) == Some(&'\'') {
                // 'a'
                (Tok::Literal, i + 3)
            } else {
                // lifetime: consume ident chars
                let mut j = i + 2;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                (Tok::Lifetime, j)
            }
        }
        Some(&c) => {
            // Char literal of punctuation, e.g. '(' or ' '.
            let j = if chars.get(i + 2) == Some(&'\'') && c != '\'' {
                i + 3
            } else {
                i + 2
            };
            (Tok::Literal, j)
        }
        None => (Tok::Punct('\''), i + 1),
    }
}

/// Marks every token belonging to a `#[cfg(test)]` / `#[test]` item.
///
/// Heuristic, not a parser: a test attribute marks everything through
/// the end of the following item (matched braces, or a `;` at brace
/// depth zero). `cfg` attributes containing `not` (e.g. `cfg(not(test))`)
/// are never treated as test gates.
fn mark_tests(tokens: &[Token]) -> Vec<bool> {
    let mut marked = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_punct(tokens, i, '#') && is_punct(tokens, i + 1, '[') {
            let close = match_bracket(tokens, i + 1);
            if attr_is_test(&tokens[i + 2..close]) {
                let mut j = close + 1;
                // Skip any further attributes stacked on the item.
                while is_punct(tokens, j, '#') && is_punct(tokens, j + 1, '[') {
                    j = match_bracket(tokens, j + 1) + 1;
                }
                let end = item_end(tokens, j);
                for flag in marked.iter_mut().take(end.min(tokens.len())).skip(i) {
                    *flag = true;
                }
                i = end;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    marked
}

fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Index of the `]` matching the `[` at `open`.
fn match_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Does an attribute token list mark a test item?
fn attr_is_test(attr: &[Token]) -> bool {
    let first = match attr.first().map(|t| &t.tok) {
        Some(Tok::Ident(s)) => s.as_str(),
        _ => return false,
    };
    let has = |name: &str| {
        attr.iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
    };
    match first {
        "test" => true,
        "cfg" => has("test") && !has("not"),
        _ => false,
    }
}

/// One past the last token of the item starting at `start`: the matching
/// `}` of its first brace, or a `;` before any brace opens.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            Tok::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(sf: &SourceFile) -> Vec<String> {
        sf.tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let sf = lex(r#"let s = "a.unwrap()"; let c = 'x'; let l: &'a str = s;"#);
        assert!(!idents(&sf).iter().any(|s| s == "unwrap"));
        assert!(sf.tokens.iter().any(|t| t.tok == Tok::Lifetime));
    }

    #[test]
    fn raw_strings_with_trailing_backslash() {
        let sf = lex(r##"let s = r"ends with \"; foo.unwrap();"##);
        assert!(idents(&sf).iter().any(|s| s == "unwrap"));
    }

    #[test]
    fn comments_are_recorded_with_lines() {
        let sf = lex("let a = 1;\n// h2check: allow(panic) — reason\nlet b = 2;\n");
        assert_eq!(sf.comments.len(), 1);
        assert_eq!(sf.comments[0].0, 2);
        assert!(sf.comments[0].1.contains("h2check"));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let sf = lex(src);
        let unwraps: Vec<(usize, bool)> = sf
            .tokens
            .iter()
            .zip(&sf.in_test)
            .filter(|(t, _)| matches!(&t.tok, Tok::Ident(s) if s == "unwrap"))
            .map(|(t, m)| (t.line, *m))
            .collect();
        assert_eq!(unwraps, vec![(1, false), (3, true)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_gate() {
        let sf = lex("#[cfg(not(test))]\nfn live() { x.unwrap(); }\n");
        assert!(sf.in_test.iter().all(|m| !m));
    }

    #[test]
    fn test_attribute_marks_whole_fn() {
        let sf = lex("#[test]\n#[ignore]\nfn t() { y.unwrap(); }\nfn live() { z.unwrap(); }\n");
        let unwraps: Vec<bool> = sf
            .tokens
            .iter()
            .zip(&sf.in_test)
            .filter(|(t, _)| matches!(&t.tok, Tok::Ident(s) if s == "unwrap"))
            .map(|(_, m)| *m)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let sf = lex("let s = \"line\nline\nline\";\nfoo();\n");
        let foo = sf
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "foo"))
            .unwrap();
        assert_eq!(foo.line, 4);
    }
}
