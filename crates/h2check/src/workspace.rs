//! Workspace walking and lint scoping.
//!
//! Which lint applies where:
//!
//! | lint | scope |
//! |---|---|
//! | `panic` / `index` | non-test code of the five protocol crates (`h2wire`, `h2hpack`, `h2conn`, `h2server`, `h2scope`) |
//! | `wallclock` | every crate except `bench` (the one consumer of real time) |
//! | `lockorder` | the thread-sharing modules: `bench::sched`, `h2obs`, `netsim::pipe` |
//! | `unsafe` | `#![forbid(unsafe_code)]` attestation in the eight protocol-adjacent crates |
//! | registries + drift | the spec tables of [`crate::spec`] vs the implementations |

use std::path::{Path, PathBuf};

use crate::lexer::lex;
use crate::lints::{forbid_unsafe, lockorder, panics, wallclock};
use crate::report::{Finding, Report, Severity, Sink, Waivers};
use crate::{drift, spec};

/// Crates whose non-test code must be panic-free (they parse protocol
/// input).
pub const PANIC_FREE_CRATES: &[&str] = &["h2wire", "h2hpack", "h2conn", "h2server", "h2scope"];

/// Crates that must carry `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE_CRATES: &[&str] = &[
    "h2wire",
    "h2hpack",
    "h2conn",
    "h2server",
    "h2scope",
    "webpop",
    "h2fault",
    "h2campaign",
];

/// Modules whose lock acquisitions feed the lock-order graph.
const LOCK_SCOPE: &[&str] = &[
    "crates/bench/src/sched.rs",
    "crates/h2obs/src/",
    "crates/netsim/src/pipe.rs",
];

/// The repository root, resolved from this crate's manifest directory.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// All lint-scoped source files, as (absolute path, repo-relative path).
fn source_files(root: &Path) -> Vec<(PathBuf, String)> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd.filter_map(Result::ok).map(|e| e.path()).collect(),
        Err(_) => Vec::new(),
    };
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        walk_rs(&crate_dir.join("src"), &mut files);
    }
    walk_rs(&root.join("src"), &mut files);
    files
        .into_iter()
        .filter_map(|abs| {
            let rel = abs
                .strip_prefix(root)
                .ok()?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            Some((abs, rel))
        })
        .collect()
}

fn crate_name(rel: &str) -> &str {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("h2ready")
    } else {
        "h2ready"
    }
}

fn in_lock_scope(rel: &str) -> bool {
    LOCK_SCOPE
        .iter()
        .any(|scope| rel == *scope || rel.starts_with(scope))
}

/// Runs the full suite over the workspace at `root`.
pub fn run_workspace(root: &Path) -> Report {
    let mut report = Report::default();
    let mut lock_edges: Vec<lockorder::LockEdge> = Vec::new();
    for (abs, rel) in source_files(root) {
        let Ok(src) = std::fs::read_to_string(&abs) else {
            report.findings.push(Finding {
                kind: "drift",
                severity: Severity::Error,
                file: rel.clone(),
                line: 1,
                message: "unreadable source file".to_string(),
            });
            continue;
        };
        let krate = crate_name(&rel).to_string();
        let sf = lex(&src);
        let waivers = Waivers::parse(&rel, &sf, &mut report.findings);
        let mut sink = Sink::new(&rel, &waivers, &mut report.findings, &mut report.waived);
        if PANIC_FREE_CRATES.contains(&krate.as_str()) {
            panics::check(&sf, &mut sink);
        }
        if krate != "bench" {
            wallclock::check(&sf, &mut sink);
        }
        if in_lock_scope(&rel) {
            lock_edges.extend(lockorder::collect(&rel, &sf));
        }
        if FORBID_UNSAFE_CRATES.contains(&krate.as_str())
            && rel.ends_with("/src/lib.rs")
            && !forbid_unsafe::has_forbid_unsafe(&sf)
        {
            sink.emit(
                "unsafe",
                Severity::Error,
                1,
                "crate root must carry #![forbid(unsafe_code)]".to_string(),
            );
        }
    }
    report.findings.extend(lockorder::cycles(&lock_edges));
    drift::run_all(root, &mut report);
    report
}

/// Runs the source lints over a single file (the fixture/self-test
/// mode). Drift checks that need the whole workspace are skipped; the
/// quirk-registry check runs forward-only so known-bad fixtures can
/// exercise it.
pub fn check_file(path: &Path) -> Report {
    let mut report = Report::default();
    let rel = path.to_string_lossy().replace('\\', "/");
    let Ok(src) = std::fs::read_to_string(path) else {
        report.findings.push(Finding {
            kind: "drift",
            severity: Severity::Error,
            file: rel,
            line: 1,
            message: "unreadable source file".to_string(),
        });
        return report;
    };
    let sf = lex(&src);
    let waivers = Waivers::parse(&rel, &sf, &mut report.findings);
    let mut sink = Sink::new(&rel, &waivers, &mut report.findings, &mut report.waived);
    panics::check(&sf, &mut sink);
    wallclock::check(&sf, &mut sink);
    let edges = lockorder::collect(&rel, &sf);
    report.findings.extend(lockorder::cycles(&edges));
    drift::check_quirk_fields(&rel, &sf, &mut report.findings);
    // Keep the spec tables honest even in single-file mode: a probe
    // mapping citing a modeling rule is always an error.
    for (probe, rule_ids) in spec::PROBE_RULES {
        for rule_id in *rule_ids {
            if spec::rule_by_id(rule_id).is_none() {
                report.findings.push(Finding {
                    kind: "probe-registry",
                    severity: Severity::Error,
                    file: "crates/h2check/src/spec.rs".to_string(),
                    line: 1,
                    message: format!("{probe} cites unknown rule {rule_id}"),
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_name_maps_paths() {
        assert_eq!(crate_name("crates/h2wire/src/frame.rs"), "h2wire");
        assert_eq!(crate_name("src/main.rs"), "h2ready");
    }

    #[test]
    fn lock_scope_covers_the_thread_sharing_modules() {
        assert!(in_lock_scope("crates/bench/src/sched.rs"));
        assert!(in_lock_scope("crates/h2obs/src/trace.rs"));
        assert!(in_lock_scope("crates/netsim/src/pipe.rs"));
        assert!(!in_lock_scope("crates/h2wire/src/frame.rs"));
        assert!(!in_lock_scope("crates/bench/src/main.rs"));
    }

    #[test]
    fn repo_root_contains_the_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }
}
