//! Findings, waivers and the deterministic report rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::lexer::SourceFile;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Always fatal.
    Error,
    /// Fatal only under `--deny-warnings`.
    Warning,
}

/// One static-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint kind: `panic`, `index`, `wallclock`, `lockorder`, `unsafe`,
    /// `waiver`, `quirk-registry`, `probe-registry` or `drift`.
    pub kind: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// The lint kinds a waiver comment may name.
pub const WAIVABLE_KINDS: &[&str] = &["panic", "index", "wallclock", "lockorder", "unsafe"];

/// Parsed waivers for one file.
///
/// Syntax, always in a line comment:
///
/// ```text
/// // h2check: allow(panic) — reason why this site cannot fire
/// // h2check: allow(panic, index) — reasons may cover several kinds
/// // h2check: allow-file(index) — waives the kind for the whole file
/// ```
///
/// A line-scoped waiver applies to findings on its own line (trailing
/// comment) or the line directly below (comment-above style). A waiver
/// without a reason is itself an error.
#[derive(Debug, Default)]
pub struct Waivers {
    line_kinds: Vec<(usize, String)>,
    file_kinds: Vec<String>,
}

impl Waivers {
    /// Parses all waiver comments of `sf`, reporting malformed ones as
    /// findings.
    pub fn parse(file: &str, sf: &SourceFile, findings: &mut Vec<Finding>) -> Waivers {
        let mut waivers = Waivers::default();
        for (line, text) in &sf.comments {
            let Some(pos) = text.find("h2check:") else {
                continue;
            };
            let rest = text[pos + "h2check:".len()..].trim_start();
            let (file_level, body) = if let Some(r) = rest.strip_prefix("allow-file(") {
                (true, r)
            } else if let Some(r) = rest.strip_prefix("allow(") {
                (false, r)
            } else {
                findings.push(Finding {
                    kind: "waiver",
                    severity: Severity::Error,
                    file: file.to_string(),
                    line: *line,
                    message: "malformed h2check waiver: expected `allow(...)` or `allow-file(...)`"
                        .to_string(),
                });
                continue;
            };
            let Some(close) = body.find(')') else {
                findings.push(Finding {
                    kind: "waiver",
                    severity: Severity::Error,
                    file: file.to_string(),
                    line: *line,
                    message: "malformed h2check waiver: missing `)`".to_string(),
                });
                continue;
            };
            let kinds: Vec<String> = body[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let mut ok = true;
            for kind in &kinds {
                if !WAIVABLE_KINDS.contains(&kind.as_str()) {
                    findings.push(Finding {
                        kind: "waiver",
                        severity: Severity::Error,
                        file: file.to_string(),
                        line: *line,
                        message: format!("unknown waivable lint kind `{kind}`"),
                    });
                    ok = false;
                }
            }
            let reason = body[close + 1..]
                .trim_start_matches(|c: char| c.is_whitespace() || "—–-:".contains(c))
                .trim();
            if reason.is_empty() {
                findings.push(Finding {
                    kind: "waiver",
                    severity: Severity::Error,
                    file: file.to_string(),
                    line: *line,
                    message: "h2check waiver must carry a reason after the kind list".to_string(),
                });
                ok = false;
            }
            if !ok {
                continue;
            }
            for kind in kinds {
                if file_level {
                    waivers.file_kinds.push(kind);
                } else {
                    waivers.line_kinds.push((*line, kind));
                }
            }
        }
        waivers
    }

    /// Is `kind` waived at `line`?
    pub fn allows(&self, kind: &str, line: usize) -> bool {
        self.file_kinds.iter().any(|k| k == kind)
            || self
                .line_kinds
                .iter()
                .any(|(l, k)| k == kind && (*l == line || l + 1 == line))
    }
}

/// Emission helper shared by the lints: routes each hit to either the
/// findings list or the waived tally.
pub struct Sink<'a> {
    file: &'a str,
    crate_name: String,
    waivers: &'a Waivers,
    findings: &'a mut Vec<Finding>,
    waived: &'a mut BTreeMap<(String, &'static str), usize>,
}

impl<'a> Sink<'a> {
    /// Creates a sink for one file.
    pub fn new(
        file: &'a str,
        waivers: &'a Waivers,
        findings: &'a mut Vec<Finding>,
        waived: &'a mut BTreeMap<(String, &'static str), usize>,
    ) -> Sink<'a> {
        Sink {
            file,
            crate_name: crate_of(file),
            waivers,
            findings,
            waived,
        }
    }

    /// Emits a finding unless a waiver covers it.
    pub fn emit(&mut self, kind: &'static str, severity: Severity, line: usize, message: String) {
        if self.waivers.allows(kind, line) {
            *self
                .waived
                .entry((self.crate_name.clone(), kind))
                .or_insert(0) += 1;
        } else {
            self.findings.push(Finding {
                kind,
                severity,
                file: self.file.to_string(),
                line,
                message,
            });
        }
    }
}

/// The crate a repo-relative path belongs to (`crates/h2wire/src/x.rs`
/// → `h2wire`; anything else → the root package).
pub fn crate_of(file: &str) -> String {
    let mut parts = file.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "h2ready".to_string()
}

/// The complete result of a run.
#[derive(Debug, Default)]
pub struct Report {
    /// Cross-validation summary lines, in check order.
    pub drift: Vec<String>,
    /// All non-waived findings.
    pub findings: Vec<Finding>,
    /// Waived-hit tally per (crate, lint kind).
    pub waived: BTreeMap<(String, &'static str), usize>,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Total waived hits.
    pub fn waived_total(&self) -> usize {
        self.waived.values().sum()
    }

    /// Should the process exit non-zero?
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    /// Renders the deterministic report text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("h2check: RFC 7540 conformance tables + source lints\n");
        for line in &self.drift {
            let _ = writeln!(out, "[drift] {line}");
        }
        let mut per_crate: BTreeMap<&str, Vec<String>> = BTreeMap::new();
        for ((krate, kind), count) in &self.waived {
            per_crate
                .entry(krate)
                .or_default()
                .push(format!("{kind} x{count}"));
        }
        for (krate, entries) in per_crate {
            let _ = writeln!(out, "[waived] {krate}: {}", entries.join(", "));
        }
        let mut findings = self.findings.clone();
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.kind, &a.message).cmp(&(&b.file, b.line, b.kind, &b.message))
        });
        for f in &findings {
            let tag = match f.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = writeln!(
                out,
                "{tag}: {}:{}: [{}] {}",
                f.file, f.line, f.kind, f.message
            );
        }
        let verdict = if self.errors() > 0 { "FAIL" } else { "PASS" };
        let _ = writeln!(
            out,
            "result: {verdict} ({} errors, {} warnings, {} waived)",
            self.errors(),
            self.warnings(),
            self.waived_total()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn waiver_with_reason_parses_and_allows() {
        let sf = lex("// h2check: allow(panic) — tree invariant, cannot fire\nfoo.unwrap();\n");
        let mut findings = Vec::new();
        let w = Waivers::parse("x.rs", &sf, &mut findings);
        assert!(findings.is_empty());
        assert!(w.allows("panic", 1));
        assert!(w.allows("panic", 2));
        assert!(!w.allows("panic", 3));
        assert!(!w.allows("index", 2));
    }

    #[test]
    fn waiver_without_reason_is_an_error() {
        let sf = lex("foo.unwrap(); // h2check: allow(panic)\n");
        let mut findings = Vec::new();
        let w = Waivers::parse("x.rs", &sf, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "waiver");
        assert!(!w.allows("panic", 1), "reasonless waiver must not waive");
    }

    #[test]
    fn file_level_waiver_covers_all_lines() {
        let sf = lex("// h2check: allow-file(index) — dense wire codec, bounds shown above\n");
        let mut findings = Vec::new();
        let w = Waivers::parse("x.rs", &sf, &mut findings);
        assert!(findings.is_empty());
        assert!(w.allows("index", 500));
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let sf = lex("// h2check: allow(bogus) — whatever\n");
        let mut findings = Vec::new();
        Waivers::parse("x.rs", &sf, &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/h2wire/src/frame.rs"), "h2wire");
        assert_eq!(crate_of("src/main.rs"), "h2ready");
    }
}
