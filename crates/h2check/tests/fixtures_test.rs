//! Self-tests over the known-bad fixture sources: each fixture must
//! produce exactly its expected finding(s), and the `h2check` binary
//! must exit non-zero on every bad fixture (zero on the clean one).

use std::path::PathBuf;
use std::process::Command;

use h2check::workspace::check_file;
use h2check::Severity;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn panic_fixture_produces_exactly_one_panic_error() {
    let report = check_file(&fixture("panic_in_protocol.rs"));
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].kind, "panic");
    assert_eq!(report.findings[0].severity, Severity::Error);
    assert_eq!(report.findings[0].line, 5);
    assert_eq!(report.waived_total(), 0);
}

#[test]
fn wallclock_fixture_produces_exactly_one_wallclock_error() {
    let report = check_file(&fixture("wallclock_in_netsim.rs"));
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].kind, "wallclock");
    assert_eq!(report.findings[0].line, 5);
}

#[test]
fn lock_cycle_fixture_produces_exactly_one_lockorder_error() {
    let report = check_file(&fixture("lock_cycle.rs"));
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].kind, "lockorder");
    assert!(
        report.findings[0].message.contains("metrics")
            && report.findings[0].message.contains("traces"),
        "cycle message should name both locks: {}",
        report.findings[0].message
    );
}

#[test]
fn quirk_fixture_produces_exactly_one_registry_error() {
    let report = check_file(&fixture("quirk_no_rule.rs"));
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].kind, "quirk-registry");
    assert!(report.findings[0].message.contains("mystery_knob"));
}

#[test]
fn reasonless_waiver_is_an_error_and_suppresses_nothing() {
    let report = check_file(&fixture("waiver_no_reason.rs"));
    let mut kinds: Vec<&str> = report.findings.iter().map(|f| f.kind).collect();
    kinds.sort_unstable();
    assert_eq!(kinds, ["panic", "waiver"], "{:#?}", report.findings);
    assert_eq!(report.waived_total(), 0);
}

#[test]
fn clean_fixture_passes_with_one_waived_panic() {
    let report = check_file(&fixture("clean.rs"));
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.waived_total(), 1);
    assert!(!report.failed(true));
}

#[test]
fn binary_exits_nonzero_on_every_bad_fixture() {
    for name in [
        "panic_in_protocol.rs",
        "wallclock_in_netsim.rs",
        "lock_cycle.rs",
        "quirk_no_rule.rs",
        "waiver_no_reason.rs",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_h2check"))
            .arg("--check-file")
            .arg(fixture(name))
            .output()
            .expect("spawn h2check");
        assert!(
            !out.status.success(),
            "{name}: expected failure exit, got {:?}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn binary_exits_zero_on_the_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_h2check"))
        .arg("--check-file")
        .arg(fixture("clean.rs"))
        .arg("--deny-warnings")
        .output()
        .expect("spawn h2check");
    assert!(
        out.status.success(),
        "clean.rs should pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
