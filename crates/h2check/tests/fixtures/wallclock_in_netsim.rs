//! Known-bad fixture: wall-clock time leaking into simulated code.
//! Expected: exactly one `wallclock` error, on the `thread::sleep` line.

pub fn stall() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
