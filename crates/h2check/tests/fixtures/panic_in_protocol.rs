//! Known-bad fixture: a reachable panic in protocol-facing code.
//! Expected: exactly one `panic` error, on the `unwrap` line.

pub fn parse_frame_kind(byte: Option<u8>) -> u8 {
    byte.unwrap()
}
