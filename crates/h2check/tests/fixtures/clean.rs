//! Known-good fixture: a panic site covered by a justified waiver.
//! Expected: zero findings; exactly one waived `panic`.

pub fn first(v: &[u8]) -> u8 {
    // h2check: allow(panic) — fixture: callers guarantee non-empty input
    v.iter().copied().next().unwrap()
}
