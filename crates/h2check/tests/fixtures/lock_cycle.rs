//! Known-bad fixture: two mutexes acquired in opposite orders on two
//! code paths — the classic AB/BA deadlock shape.
//! Expected: exactly one `lockorder` error naming the
//! `metrics -> traces -> metrics` cycle.

pub struct Shared {
    metrics: std::sync::Mutex<u64>,
    traces: std::sync::Mutex<u64>,
}

impl Shared {
    pub fn record(&self) {
        let g = self.metrics.lock();
        let t = self.traces.lock();
        let _ = (g, t);
    }

    pub fn flush(&self) {
        let t = self.traces.lock();
        let g = self.metrics.lock();
        let _ = (g, t);
    }
}
