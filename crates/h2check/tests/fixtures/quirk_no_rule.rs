//! Known-bad fixture: a `ServerBehavior` quirk field that cites no
//! spec rule in the QUIRK_RULES registry.
//! Expected: exactly one `quirk-registry` error for `mystery_knob`
//! (`push` is a real, registered quirk and passes).

pub struct ServerBehavior {
    /// A registered quirk: maps to the `push` rule.
    pub push: bool,
    /// Not in the registry — every quirk must cite an RFC 7540 rule.
    pub mystery_knob: bool,
}
