//! Known-bad fixture: a waiver with no justification. Reasonless
//! waivers are themselves errors AND do not suppress anything.
//! Expected: exactly two errors — one `waiver`, one `panic`.

pub fn take(v: Option<u8>) -> u8 {
    // h2check: allow(panic)
    v.unwrap()
}
