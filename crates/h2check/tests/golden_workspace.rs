//! Golden snapshot of the full `--workspace` run, plus pinned
//! cross-validation counts so silent registry shrinkage (a drift check
//! covering fewer quirks/probes/transitions than before) fails loudly.
//!
//! When a legitimate change shifts the waiver tallies, regenerate with:
//! `cargo run -p h2check -- --workspace > crates/h2check/tests/golden_workspace.txt`

use h2check::workspace::{repo_root, run_workspace};

const GOLDEN: &str = include_str!("golden_workspace.txt");

#[test]
fn workspace_run_matches_golden_snapshot() {
    let report = run_workspace(&repo_root());
    let rendered = report.render();
    assert_eq!(
        rendered, GOLDEN,
        "workspace report drifted from the golden snapshot; \
         if intentional, regenerate golden_workspace.txt"
    );
}

#[test]
fn workspace_passes_with_deny_warnings() {
    let report = run_workspace(&repo_root());
    assert!(!report.failed(true), "{}", report.render());
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 0);
}

/// Regression pins for the cross-validation coverage itself: the spec
/// tables must keep covering every transition, quirk, probe and
/// dynamic-behavior comparison. A drop in any of these numbers means a
/// registry entry was removed without its drift check noticing.
#[test]
fn cross_validation_counts_are_pinned() {
    let report = run_workspace(&repo_root());
    let drift = report.drift.join("\n");
    for expected in [
        "§5.1 transitions: 56/56",
        "§5.1 capabilities: 7/7",
        "§5.1 receive legality: 7/7",
        "§6 frame rules: 10/10",
        "§7 error taxonomy: 9/9",
        "settings bounds: 10/10 boundary probes, 7/7 profile announcements",
        "quirk registry: 31/31",
        "probe registry: 23/23",
        "dynamic quirks: 98/98",
    ] {
        assert!(
            drift.contains(expected),
            "missing pinned drift line `{expected}` in:\n{drift}"
        );
    }
}
