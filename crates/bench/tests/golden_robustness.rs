//! Pins the rendered robustness matrix to the committed golden snapshot
//! that the CI abuse-smoke job diffs against. The matrix is a pure
//! function of the server profiles, so any engine or quirk change that
//! moves it must regenerate `golden_robustness.txt` deliberately:
//!
//! ```text
//! cargo run --release -p h2ready-bench --bin repro -- abuse --scale 0.01 --seed 0 \
//!   | sed -n '/^Robustness matrix/,/^$/p' | sed '/^$/d' \
//!   > crates/bench/tests/golden_robustness.txt
//! ```

use h2ready_bench::abuse::render_robustness;

#[test]
fn robustness_matrix_matches_the_committed_golden() {
    let golden = include_str!("golden_robustness.txt");
    let rendered = render_robustness(&h2attack::robustness_matrix());
    let rendered = rendered.trim_end_matches('\n');
    assert_eq!(
        rendered,
        golden.trim_end_matches('\n'),
        "robustness matrix drifted; regenerate tests/golden_robustness.txt (see module docs)"
    );
}
