//! Integration tests for the table/figure generators: run a miniature
//! campaign and check the rendered aggregates carry the paper's shapes.

use h2ready_bench::{scan, wild};
use webpop::{ExperimentSpec, Population};

fn mini_campaign() -> (Population, Vec<scan::ScanRecord>) {
    let population = Population::new(ExperimentSpec::first(), 0.003);
    let records = scan::scan(&population, 4);
    (population, records)
}

#[test]
fn adoption_table_counts_the_funnel() {
    let (population, records) = mini_campaign();
    let rendered = wild::adoption(&records, &population);
    assert!(rendered.contains("NPN h2 sites"), "{rendered}");
    assert!(rendered.contains("HEADERS-returning sites"), "{rendered}");
    // The measured HEADERS count equals the population's generated quota.
    let headers = scan::headers_records(&records).len() as u64;
    assert_eq!(headers, population.headers_count());
}

#[test]
fn table4_ranks_litespeed_and_nginx_first() {
    let (population, records) = mini_campaign();
    let rendered = wild::table4(&records, &population);
    let litespeed_line = rendered.lines().find(|l| l.contains("Litespeed")).unwrap();
    let nginx_line = rendered
        .lines()
        .find(|l| l.trim_start().starts_with("Nginx"))
        .unwrap();
    let count = |line: &str| -> u64 {
        line.split_whitespace()
            .nth(1)
            .and_then(|v| v.replace(',', "").parse().ok())
            .unwrap_or(0)
    };
    // Experiment 1 ordering: Litespeed > Nginx > everything else.
    assert!(count(litespeed_line) > count(nginx_line), "{rendered}");
    assert!(count(nginx_line) > 10, "{rendered}");
}

#[test]
fn settings_tables_render_every_published_row() {
    let (population, records) = mini_campaign();
    let t5 = wild::table5(&records, &population);
    for value in ["NULL", "65,536", "1,048,576", "2,147,483,647"] {
        assert!(t5.contains(value), "Table V misses {value}: {t5}");
    }
    let t6 = wild::table6(&records, &population);
    assert!(t6.contains("16,777,215"), "{t6}");
    let t7 = wild::table7(&records, &population);
    assert!(t7.contains("unlimited"), "{t7}");
}

#[test]
fn fig2_reports_majority_at_or_above_100() {
    let (population, records) = mini_campaign();
    let rendered = wild::fig2(&records, &population);
    assert!(rendered.contains("majority >= 100: true"), "{rendered}");
}

#[test]
fn flow_control_summary_tracks_population_quotas() {
    let (population, records) = mini_campaign();
    let rendered = wild::flow_control(&records, &population);
    // The RST measured count appears and is within 25% of the scaled
    // paper count (sampling noise at 0.3% scale).
    assert!(rendered.contains("[V-D3]"), "{rendered}");
    let line = rendered
        .lines()
        .find(|l| l.trim_start().starts_with("RST_STREAM"))
        .unwrap();
    let measured: f64 = line
        .split_whitespace()
        .nth(2)
        .and_then(|v| v.replace(',', "").parse().ok())
        .unwrap();
    let expect = 23_673.0 * population.scale();
    assert!(
        (measured - expect).abs() / expect < 0.25,
        "measured {measured} vs scaled paper {expect}"
    );
}

#[test]
fn hpack_figure_separates_the_families() {
    let (population, records) = mini_campaign();
    let rendered = wild::hpack_figure(&records, &population);
    let gse = rendered
        .lines()
        .find(|l| l.trim_start().starts_with("GSE"))
        .unwrap();
    assert!(gse.contains("P(r<0.3)=1.00"), "{rendered}");
    let nginx = rendered
        .lines()
        .find(|l| l.trim_start().starts_with("nginx"))
        .unwrap();
    assert!(
        nginx.contains("median=1.000"),
        "nginx sits at ratio 1: {rendered}"
    );
}
