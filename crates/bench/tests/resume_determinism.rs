//! The campaign record's crash-safety contract, end to end: a scan that
//! is killed at an arbitrary point and resumed — possibly at a different
//! thread count — finalizes a record byte-identical to an uninterrupted
//! run. Rows depend only on `(population, index)` and the finalized
//! bytes only on `(meta, row set)`, so nothing about scheduling, crash
//! timing or worker count may leak into the record.

use std::path::{Path, PathBuf};

use h2fault::{FaultProfile, KillPoint};
use h2obs::Obs;
use h2ready_bench::scan::{self, RecordedScan};
use h2ready_bench::sched::ScanPool;
use webpop::{ExperimentSpec, Population};

const SCALE: f64 = 0.004;
const SEED: u64 = 11;

fn population() -> Population {
    Population::new(ExperimentSpec::first(), SCALE)
}

/// A collision-free scratch path inside the build's temp dir.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("h2ready-resume-{}-{tag}.h2c", std::process::id()))
}

fn record_uninterrupted(path: &Path, threads: usize) -> Vec<scan::ScanRecord> {
    let outcome = scan::scan_recorded(
        &population(),
        threads,
        FaultProfile::flaky(),
        SEED,
        &Obs::off(),
        path,
        false,
        None,
    )
    .expect("recorded scan");
    match outcome {
        RecordedScan::Complete { records, resumed } => {
            assert_eq!(resumed, 0, "fresh run resumed nothing");
            records
        }
        RecordedScan::Killed { .. } => panic!("no kill point was set"),
    }
}

#[test]
fn killed_and_resumed_records_are_byte_identical_to_uninterrupted() {
    let golden_path = scratch("golden");
    record_uninterrupted(&golden_path, 1);
    let golden = std::fs::read(&golden_path).expect("golden bytes");

    let total = population().h2_count();
    // Three seeded kill points (early / middle / last-but-one), each
    // killed at one thread count and resumed at another.
    for (k, kill) in KillPoint::seeded(total, SEED).into_iter().enumerate() {
        for (kill_threads, resume_threads) in [(1, 4), (4, 1)] {
            let path = scratch(&format!("kill{k}-t{kill_threads}"));
            let outcome = scan::scan_recorded(
                &population(),
                kill_threads,
                FaultProfile::flaky(),
                SEED,
                &Obs::off(),
                &path,
                false,
                Some(kill),
            )
            .expect("killed scan");
            let rows = match outcome {
                RecordedScan::Killed { rows } => rows,
                RecordedScan::Complete { .. } => panic!("kill point did not fire"),
            };
            assert!(rows >= kill.after_rows, "durable rows reach the kill point");
            // In-flight sites (at most one per extra worker) may still
            // land after the kill fires; only a kill point with enough
            // headroom is guaranteed to leave work behind.
            assert!(rows <= total);
            if kill.after_rows + kill_threads as u64 <= total {
                assert!(rows < total, "the crash left work behind");
            }

            let resumed_outcome = scan::scan_recorded(
                &population(),
                resume_threads,
                FaultProfile::flaky(),
                SEED,
                &Obs::off(),
                &path,
                true,
                None,
            )
            .expect("resumed scan");
            let (records, resumed) = match resumed_outcome {
                RecordedScan::Complete { records, resumed } => (records, resumed),
                RecordedScan::Killed { .. } => panic!("resume had no kill point"),
            };
            assert!(
                resumed >= kill.after_rows,
                "rows were preloaded, not rescanned"
            );
            assert_eq!(records.len() as u64, total);

            let resumed_bytes = std::fs::read(&path).expect("resumed bytes");
            assert_eq!(
                resumed_bytes, golden,
                "kill point {k} at {kill_threads}→{resume_threads} threads diverged"
            );
            std::fs::remove_file(&path).ok();
        }
    }
    std::fs::remove_file(&golden_path).ok();
}

#[test]
fn recorded_scan_returns_the_same_records_as_the_plain_scan() {
    let path = scratch("parity");
    let recorded = record_uninterrupted(&path, 4);
    let plain = scan::scan_faulted(&population(), 2, FaultProfile::flaky(), SEED);
    assert_eq!(recorded.len(), plain.len());
    for (a, b) in recorded.iter().zip(&plain) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.family, b.family);
        assert_eq!(a.report, b.report);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resuming_a_finalized_record_is_a_no_op() {
    let path = scratch("noop");
    record_uninterrupted(&path, 2);
    let before = std::fs::read(&path).expect("finalized bytes");
    let obs = Obs::campaign(0);
    let outcome = scan::scan_recorded(
        &population(),
        3,
        FaultProfile::flaky(),
        SEED,
        &obs,
        &path,
        true,
        None,
    )
    .expect("resume of finalized record");
    let RecordedScan::Complete { records, resumed } = outcome else {
        panic!("no kill point was set");
    };
    assert_eq!(resumed, population().h2_count());
    assert_eq!(records.len() as u64, resumed);
    assert_eq!(obs.snapshot().expect("on").sites_resumed, resumed);
    assert_eq!(
        std::fs::read(&path).expect("bytes"),
        before,
        "record untouched"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn sharded_scan_is_byte_identical_to_single_thread_for_every_campaign_kind() {
    // The sharding contract, pinned at the byte level: per-worker
    // simulators, RNG streams, obs shards and buffer pools may never
    // leak into what a campaign produces. Every campaign kind the
    // engine supports is compared against its single-thread run.
    let population = population();
    let serialize = |records: &[scan::ScanRecord]| {
        h2scope::storage::write_reports(records.iter().map(|r| &r.report))
    };

    let plain_1t = serialize(&scan::scan(&population, 1));
    for threads in [2, 8, 16] {
        assert_eq!(
            plain_1t,
            serialize(&scan::scan(&population, threads)),
            "plain scan diverged at {threads} threads"
        );
    }

    let faulted_1t = serialize(&scan::scan_faulted(
        &population,
        1,
        FaultProfile::flaky(),
        SEED,
    ));
    for threads in [2, 8, 16] {
        assert_eq!(
            faulted_1t,
            serialize(&scan::scan_faulted(
                &population,
                threads,
                FaultProfile::flaky(),
                SEED
            )),
            "faulted scan diverged at {threads} threads"
        );
    }

    let golden_path = scratch("shard-golden");
    record_uninterrupted(&golden_path, 1);
    let recorded_1t = std::fs::read(&golden_path).expect("golden bytes");
    for threads in [2, 8, 16] {
        let path = scratch(&format!("shard-{threads}t"));
        record_uninterrupted(&path, threads);
        assert_eq!(
            recorded_1t,
            std::fs::read(&path).expect("sharded bytes"),
            "recorded campaign diverged at {threads} threads"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&golden_path).ok();
}

#[test]
fn a_reused_pool_records_kills_and_resumes_byte_identically() {
    // The persistent-pool contract: workers that already ran other
    // campaigns (warmed thread-local buffer pools, consumed RNG
    // streams, dirty scratch state) must record and resume exactly like
    // freshly spawned single-thread workers.
    let golden_path = scratch("pool-golden");
    record_uninterrupted(&golden_path, 1);
    let golden = std::fs::read(&golden_path).expect("golden bytes");

    let population = population();
    let mut pool = ScanPool::new(3);
    // Dirty the pool with unrelated campaigns first.
    pool.scan(&population);
    pool.scan_faulted(&population, FaultProfile::flaky(), SEED ^ 0xdead);

    let kill = KillPoint::seeded(population.h2_count(), SEED)[1];
    let path = scratch("pool-reuse");
    let outcome = pool
        .scan_recorded(
            &population,
            FaultProfile::flaky(),
            SEED,
            &Obs::off(),
            &path,
            false,
            Some(kill),
        )
        .expect("killed scan");
    assert!(
        matches!(outcome, RecordedScan::Killed { .. }),
        "kill point did not fire"
    );

    // Resume on the SAME pool the crash happened on.
    let resumed = pool
        .scan_recorded(
            &population,
            FaultProfile::flaky(),
            SEED,
            &Obs::off(),
            &path,
            true,
            None,
        )
        .expect("resumed scan");
    let RecordedScan::Complete { records, resumed } = resumed else {
        panic!("resume had no kill point");
    };
    assert!(resumed >= kill.after_rows);
    assert_eq!(records.len() as u64, population.h2_count());
    assert_eq!(
        std::fs::read(&path).expect("resumed bytes"),
        golden,
        "pool reuse across record→resume diverged from a fresh run"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&golden_path).ok();
}

#[test]
fn resume_refuses_a_record_from_a_different_campaign() {
    let path = scratch("mismatch");
    record_uninterrupted(&path, 2);
    let err = scan::scan_recorded(
        &population(),
        2,
        FaultProfile::flaky(),
        SEED + 1, // different campaign seed
        &Obs::off(),
        &path,
        true,
        None,
    )
    .expect_err("seed mismatch must be rejected");
    assert!(err.to_string().contains("seed"), "unhelpful error: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn diff_of_stored_records_matches_the_in_memory_campaign() {
    let path_a = scratch("diff-a");
    let path_b = scratch("diff-b");
    let records_a = record_uninterrupted(&path_a, 2);
    let outcome = scan::scan_recorded(
        &Population::new(ExperimentSpec::second(), SCALE),
        2,
        FaultProfile::flaky(),
        SEED,
        &Obs::off(),
        &path_b,
        false,
        None,
    )
    .expect("recorded scan");
    let RecordedScan::Complete {
        records: records_b, ..
    } = outcome
    else {
        panic!("no kill point was set");
    };

    let a = h2campaign::read(&path_a).expect("stored a");
    let b = h2campaign::read(&path_b).expect("stored b");
    let diff = h2campaign::diff_records(&a, &b);
    let npn = |records: &[scan::ScanRecord]| {
        records
            .iter()
            .filter(|r| r.report.negotiation.npn_h2)
            .count() as u64
    };
    let adoption = diff
        .adoption
        .iter()
        .find(|d| d.name == "NPN h2")
        .expect("NPN row");
    assert_eq!(adoption.a, npn(&records_a), "stored diff vs in-memory scan");
    assert_eq!(adoption.b, npn(&records_b));
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}
