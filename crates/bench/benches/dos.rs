//! Cost curves for the §VI DoS vectors: how victim-side state scales with
//! attacker effort, per server profile.

use criterion::{criterion_group, criterion_main, Criterion};
use h2dos::{priority_churn, slow_receiver, table_thrash};
use h2scope::Target;
use h2server::{ServerProfile, SiteSpec};

fn victim() -> Target {
    Target::testbed(ServerProfile::rfc7540(), SiteSpec::benchmark())
}

fn bench_slow_receiver(c: &mut Criterion) {
    let mut group = c.benchmark_group("dos_slow_receiver");
    group.sample_size(20);
    let v = victim();
    for streams in [4u32, 16, 64] {
        group.bench_function(format!("{streams}_streams"), |b| {
            b.iter(|| slow_receiver::attack(&v, streams));
        });
    }
    group.finish();
}

fn bench_table_thrash(c: &mut Criterion) {
    let mut group = c.benchmark_group("dos_table_thrash");
    group.sample_size(10);
    let vulnerable = table_thrash::vulnerable_victim();
    let capped = table_thrash::capped_victim();
    group.bench_function("vulnerable_100_requests", |b| {
        b.iter(|| table_thrash::attack(&vulnerable, 1 << 26, 100));
    });
    group.bench_function("capped_100_requests", |b| {
        b.iter(|| table_thrash::attack(&capped, 1 << 26, 100));
    });
    group.finish();
}

fn bench_priority_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("dos_priority_churn");
    group.sample_size(10);
    let v = victim();
    for depth in [64u32, 512] {
        group.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| priority_churn::attack(&v, depth, 10));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_slow_receiver,
    bench_table_thrash,
    bench_priority_churn
);
criterion_main!(benches);
