//! Figure 3 ablation benches: how the page-load-time advantage of server
//! push scales with asset count, asset size and link latency — the design
//! space the paper's discussion section points at ("server push could
//! speed up the downloading... only a few web sites support it").

use criterion::{criterion_group, criterion_main, Criterion};
use h2scope::pageload::page_load;
use h2scope::Target;
use h2server::{ServerProfile, SiteSpec};
use netsim::LinkSpec;

fn push_target(assets: usize, asset_size: usize, delay_ms: u64) -> Target {
    let mut target = Target::testbed(
        ServerProfile::h2o(),
        SiteSpec::page_with_assets(assets, asset_size),
    );
    target.link = LinkSpec::wan(delay_ms);
    target
}

fn bench_pageload(c: &mut Criterion) {
    let mut group = c.benchmark_group("pageload");
    group.sample_size(20);
    for (assets, size, delay) in [
        (4usize, 10_000usize, 20u64),
        (16, 30_000, 20),
        (8, 20_000, 80),
    ] {
        let target = push_target(assets, size, delay);
        group.bench_function(format!("push_{assets}a_{size}b_{delay}ms"), |b| {
            b.iter(|| page_load(&target, true, 1));
        });
        group.bench_function(format!("nopush_{assets}a_{size}b_{delay}ms"), |b| {
            b.iter(|| page_load(&target, false, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pageload);
criterion_main!(benches);
