//! End-to-end probe benchmarks: whole H2Scope probes against a simulated
//! server, the unit of work the scan campaigns repeat tens of thousands
//! of times.

use criterion::{criterion_group, criterion_main, Criterion};
use h2scope::probes::{flow_control, hpack, ping, priority};
use h2scope::testbed::Testbed;
use h2scope::{H2Scope, Target};
use h2server::{ServerProfile, SiteSpec};

fn target() -> Target {
    Target::testbed(ServerProfile::h2o(), SiteSpec::benchmark())
}

fn bench_probes(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe");
    group.sample_size(20);
    let t = target();
    group.bench_function("flow_control_suite", |b| b.iter(|| flow_control::probe(&t)));
    group.bench_function("priority_algorithm1", |b| {
        b.iter(|| priority::algorithm1(&t));
    });
    group.bench_function("hpack_ratio_h8", |b| b.iter(|| hpack::probe(&t, 8)));
    group.bench_function("ping_5_samples", |b| b.iter(|| ping::probe(&t, 5)));
    group.finish();
}

fn bench_characterize(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterize");
    group.sample_size(10);
    let scope = H2Scope::new();
    for profile in [ServerProfile::nginx(), ServerProfile::h2o()] {
        let name = profile.name.clone();
        let testbed = Testbed::new(profile, SiteSpec::benchmark());
        group.bench_function(format!("full_table_iii_column_{name}"), |b| {
            b.iter(|| scope.characterize(&testbed));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_probes, bench_characterize);
criterion_main!(benches);
