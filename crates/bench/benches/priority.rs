//! Microbenchmarks for the priority dependency tree and scheduler.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use h2conn::PriorityTree;
use h2wire::{PrioritySpec, StreamId};

fn spec(dep: u32, weight: u16, exclusive: bool) -> PrioritySpec {
    PrioritySpec {
        exclusive,
        dependency: StreamId::new(dep),
        weight,
    }
}

/// A wide tree: `n` streams under the root plus chains of depth 3.
fn build_tree(n: u32) -> PriorityTree {
    let mut tree = PriorityTree::new();
    for k in 0..n {
        let id = k * 6 + 1;
        tree.declare(StreamId::new(id), spec(0, 16, false)).unwrap();
        tree.declare(StreamId::new(id + 2), spec(id, 8, false))
            .unwrap();
        tree.declare(StreamId::new(id + 4), spec(id + 2, 4, false))
            .unwrap();
    }
    tree
}

fn bench_declare(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_tree");
    for n in [16u32, 128] {
        group.bench_function(format!("build_{n}_chains"), |b| b.iter(|| build_tree(n)));
        group.bench_function(format!("reprioritize_exclusive_{n}"), |b| {
            b.iter_batched(
                || build_tree(n),
                |mut tree| {
                    // Move the deepest stream to the root exclusively —
                    // adopts every other root child (worst case).
                    tree.declare(StreamId::new(5), spec(0, 256, true)).unwrap();
                    tree
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_schedule");
    for n in [16u32, 128] {
        let ready: Vec<u32> = (0..n).map(|k| k * 6 + 5).collect(); // leaves only
        group.bench_function(format!("next_stream_{n}_ready_leaves"), |b| {
            b.iter_batched(
                || build_tree(n),
                |mut tree| {
                    let mut picks = 0;
                    for _ in 0..64 {
                        if tree.next_stream(|s| ready.contains(&s.value())).is_some() {
                            picks += 1;
                        }
                    }
                    picks
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_declare, bench_schedule);
criterion_main!(benches);
