//! Microbenchmarks for HPACK: encoder policies, decoder, Huffman.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use h2hpack::{huffman, Decoder, Encoder, EncoderOptions, Header, IndexingPolicy};

fn request_headers() -> Vec<Header> {
    vec![
        Header::new(":method", "GET"),
        Header::new(":scheme", "https"),
        Header::new(":path", "/index.html"),
        Header::new(":authority", "www.example.com"),
        Header::new("user-agent", "h2scope/0.1"),
        Header::new("accept", "*/*"),
        Header::new("accept-encoding", "gzip, deflate"),
        Header::new("cookie", "session=0123456789abcdef0123456789abcdef"),
    ]
}

fn bench_encoder_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpack_encode");
    let headers = request_headers();
    for (name, policy) in [
        ("always_index", IndexingPolicy::Always),
        ("never_index", IndexingPolicy::Never),
    ] {
        group.bench_function(format!("first_block_{name}"), |b| {
            b.iter_batched(
                || {
                    Encoder::with_options(EncoderOptions {
                        indexing: policy,
                        ..Default::default()
                    })
                },
                |mut enc| enc.encode_block(&headers),
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("repeat_block_{name}"), |b| {
            b.iter_batched(
                || {
                    let mut enc = Encoder::with_options(EncoderOptions {
                        indexing: policy,
                        ..Default::default()
                    });
                    enc.encode_block(&headers);
                    enc
                },
                |mut enc| enc.encode_block(&headers),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_decoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpack_decode");
    let headers = request_headers();
    let mut enc = Encoder::new();
    let first = enc.encode_block(&headers);
    let repeat = enc.encode_block(&headers);
    group.bench_function("first_block", |b| {
        b.iter_batched(
            Decoder::new,
            |mut dec| dec.decode_block(&first).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("repeat_block", |b| {
        b.iter_batched(
            || {
                let mut dec = Decoder::new();
                dec.decode_block(&first).unwrap();
                dec
            },
            |mut dec| dec.decode_block(&repeat).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_huffman(c: &mut Criterion) {
    let mut group = c.benchmark_group("huffman");
    let text = b"www.example.com/assets/application-0123456789abcdef.js".repeat(8);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            huffman::encode(&text, &mut out);
            out
        });
    });
    let mut coded = Vec::new();
    huffman::encode(&text, &mut coded);
    group.throughput(Throughput::Bytes(coded.len() as u64));
    group.bench_function("decode", |b| b.iter(|| huffman::decode(&coded).unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    bench_encoder_policies,
    bench_decoder,
    bench_huffman
);
criterion_main!(benches);
