//! Faulted-scan benchmarks: what resilience costs. The same campaign is
//! scanned at 0%, 1% and 5% uniform packet loss; the slowdown relative to
//! the clean run is the price of deadlines, retransmit delays and
//! retry/backoff in the §IV-B pipeline.
//!
//! Unlike the other benches this one has a custom `main` that also writes
//! the measurements to `BENCH_faulted_scan.json` at the repository root,
//! so faulted-scan throughput is tracked as a committed artifact.

use std::io::Write as _;

use criterion::{Criterion, Throughput};
use h2fault::FaultProfile;
use h2ready_bench::scan::scan_faulted;
use webpop::{ExperimentSpec, Population};

/// Campaign seed for every measured scan: benches must replay exactly.
const SEED: u64 = 0xbe_ac47;

fn bench_loss_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("faulted_scan");
    group.sample_size(10);
    // 0.2% of experiment 1 ≈ 105 h2 sites per iteration, matching the
    // plain scan bench so the two are directly comparable.
    let population = Population::new(ExperimentSpec::first(), 0.002);
    group.throughput(Throughput::Elements(population.h2_count()));
    for (label, loss) in [("loss_0pct", 0.0), ("loss_1pct", 0.01), ("loss_5pct", 0.05)] {
        let profile = FaultProfile::uniform_loss(loss);
        group.bench_function(format!("campaign_0p2pct_{label}"), |b| {
            b.iter(|| scan_faulted(&population, 4, profile, SEED));
        });
    }
    group.finish();
}

fn write_json(c: &Criterion) -> std::io::Result<()> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faulted_scan.json");
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    let measurements = c.measurements();
    for (i, m) in measurements.iter().enumerate() {
        let elements = match m.throughput {
            Some(Throughput::Elements(n)) => n,
            _ => 0,
        };
        let median_s = m.median.as_secs_f64();
        let sites_per_sec = if median_s > 0.0 {
            elements as f64 / median_s
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"samples\": {}, \"sites\": {}, \"sites_per_sec\": {:.1}}}{}\n",
            m.id,
            m.median.as_nanos(),
            m.min.as_nanos(),
            m.samples,
            elements,
            sites_per_sec,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

fn main() {
    let mut c = Criterion::default();
    bench_loss_sweep(&mut c);
    if let Err(e) = write_json(&c) {
        eprintln!("faulted_scan: could not write BENCH_faulted_scan.json: {e}");
    }
}
