//! Scan-throughput benchmarks: how many sites per second the survey
//! pipeline sustains — the number that decides whether a million-site
//! campaign is feasible.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use h2ready_bench::scan::scan;
use h2scope::H2Scope;
use webpop::{ExperimentSpec, Population};

fn bench_site_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("population");
    let population = Population::new(ExperimentSpec::first(), 0.1);
    group.bench_function("generate_one_site", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let site = population.site(i % population.headers_count());
            i += 1;
            site
        });
    });
    group.finish();
}

fn bench_survey(c: &mut Criterion) {
    let mut group = c.benchmark_group("survey");
    group.sample_size(10);
    let population = Population::new(ExperimentSpec::first(), 0.1);
    let scope = H2Scope::new();
    group.bench_function("single_site_full_survey", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let site = population.site(i % population.headers_count());
            i += 1;
            scope.survey(&site.target())
        });
    });
    group.finish();
}

fn bench_parallel_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan");
    group.sample_size(10);
    // 0.2% of experiment 1 ≈ 105 h2 sites per iteration.
    let population = Population::new(ExperimentSpec::first(), 0.002);
    group.throughput(Throughput::Elements(population.h2_count()));
    for threads in [1usize, 4] {
        group.bench_function(format!("campaign_0p2pct_{threads}_threads"), |b| {
            b.iter(|| scan(&population, threads));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_site_generation,
    bench_survey,
    bench_parallel_scan
);
criterion_main!(benches);
