//! Scan-throughput benchmark: the campaign-scale number the perf work is
//! judged by. One 0.2%-scale population (≈105 h2 sites) is scanned at 1,
//! 4 and 8 worker threads, both clean and under the `flaky` fault profile,
//! and the resulting sites/sec figures are written to
//! `BENCH_scan_throughput.json` at the repository root so the trajectory
//! is tracked as a committed artifact.
//!
//! Quick mode (`H2READY_BENCH_QUICK=1`, used by the CI perf-smoke job)
//! drops the sample count so the bench finishes in seconds while still
//! exercising the full measurement + JSON emission path.

use std::io::Write as _;

use criterion::{Criterion, Throughput};
use h2fault::FaultProfile;
use h2ready_bench::scan::{scan, scan_faulted};
use webpop::{ExperimentSpec, Population};

/// Campaign seed for the faulted runs: benches must replay exactly.
const SEED: u64 = 0xbe_ac47;

fn quick_mode() -> bool {
    std::env::var_os("H2READY_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn bench_scan_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_throughput");
    group.sample_size(if quick_mode() { 2 } else { 10 });
    // 0.2% of experiment 1 ≈ 105 h2 sites per iteration, matching the
    // scan and faulted_scan benches so all three are comparable.
    let population = Population::new(ExperimentSpec::first(), 0.002);
    group.throughput(Throughput::Elements(population.h2_count()));
    for threads in [1usize, 4, 8] {
        group.bench_function(format!("plain_{threads}t"), |b| {
            b.iter(|| scan(&population, threads));
        });
        group.bench_function(format!("flaky_{threads}t"), |b| {
            b.iter(|| scan_faulted(&population, threads, FaultProfile::flaky(), SEED));
        });
    }
    group.finish();
}

fn write_json(c: &Criterion) -> std::io::Result<()> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scan_throughput.json"
    );
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    let measurements = c.measurements();
    for (i, m) in measurements.iter().enumerate() {
        let elements = match m.throughput {
            Some(Throughput::Elements(n)) => n,
            _ => 0,
        };
        let median_s = m.median.as_secs_f64();
        let sites_per_sec = if median_s > 0.0 {
            elements as f64 / median_s
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"samples\": {}, \"sites\": {}, \"sites_per_sec\": {:.1}}}{}\n",
            m.id,
            m.median.as_nanos(),
            m.min.as_nanos(),
            m.samples,
            elements,
            sites_per_sec,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

fn main() {
    let mut c = Criterion::default();
    bench_scan_throughput(&mut c);
    if let Err(e) = write_json(&c) {
        eprintln!("scan_throughput: could not write BENCH_scan_throughput.json: {e}");
    }
}
