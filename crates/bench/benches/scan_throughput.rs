//! Scan-throughput scaling benchmark: the campaign-scale number the perf
//! work is judged by. One 1%-scale population (≈525 h2 sites) is scanned
//! at 1, 2, 4, 8 and 16 worker threads, both clean and under the `flaky`
//! fault profile, on a *persistent* [`ScanPool`] — the pool is spawned
//! once per thread configuration and reused across samples, so the curve
//! measures steady-state scan work, not thread-spawn overhead (the bug
//! that made the original curve invert: ~40 ms iterations re-spawning
//! every worker each sample).
//!
//! Two clocks per sample:
//!
//! * **wall** — `Instant` elapsed around the campaign. On a host with
//!   fewer free cores than workers this cannot scale (N threads
//!   time-slice one core at the same aggregate rate) — it is recorded so
//!   the artifact is honest about the host, next to `host_cpus`.
//! * **critical path** — the maximum per-worker *thread CPU time* for
//!   the campaign (see `h2ready_bench::cputime`). This is the wall time
//!   the campaign would take with enough free cores: it shrinks only if
//!   the per-worker work actually partitions, and it degrades under
//!   serialization, load imbalance, or spin contention. The headline
//!   `sites_per_sec` and `speedup_vs_1t` derive from it.
//!
//! Results land in `BENCH_scan_throughput.json` at the repository root
//! (schema `h2ready-scan-throughput-v2`) so the trajectory is tracked as
//! a committed artifact.
//!
//! Quick mode (`H2READY_BENCH_QUICK=1`, used by the CI perf-smoke job)
//! drops the sample count so the bench finishes in seconds while still
//! exercising the full measurement + JSON emission path.

use std::io::Write as _;
use std::time::Instant;

use h2fault::FaultProfile;
use h2ready_bench::cputime::host_cpus;
use h2ready_bench::sched::ScanPool;
use webpop::{ExperimentSpec, Population};

/// Campaign seed for the faulted runs: benches must replay exactly.
const SEED: u64 = 0xbe_ac47;

/// Benched population scale: 1% of the full million-site list.
const SCALE: f64 = 0.01;

/// Thread counts of the scaling curve.
const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

fn quick_mode() -> bool {
    std::env::var_os("H2READY_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

struct BenchResult {
    id: String,
    mode: &'static str,
    threads: usize,
    samples: usize,
    sites: u64,
    wall_median_ns: u64,
    wall_min_ns: u64,
    critical_path_median_ns: u64,
    critical_path_min_ns: u64,
}

impl BenchResult {
    /// Headline throughput: sites over the critical-path median.
    fn sites_per_sec(&self) -> f64 {
        per_sec(self.sites, self.critical_path_median_ns)
    }

    /// Host-bound throughput: sites over the wall-clock median.
    fn sites_per_sec_wall(&self) -> f64 {
        per_sec(self.sites, self.wall_median_ns)
    }
}

fn per_sec(sites: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        return 0.0;
    }
    sites as f64 * 1e9 / nanos as f64
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs one (mode, threads) configuration: spawn the pool once, warm it
/// up, then time `samples` full campaigns on it.
fn run_config(
    population: &Population,
    mode: &'static str,
    threads: usize,
    samples: usize,
) -> BenchResult {
    let mut pool = ScanPool::new(threads);
    let run = |pool: &mut ScanPool| match mode {
        "plain" => pool.scan(population),
        _ => pool.scan_faulted(population, FaultProfile::flaky(), SEED),
    };
    // One unmeasured warmup: first-touch costs (per-thread body cache,
    // buffer pools, lazy allocations) belong to neither clock.
    let warmup = run(&mut pool);
    assert_eq!(warmup.len() as u64, population.h2_count());
    let mut wall = Vec::with_capacity(samples);
    let mut critical = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let records = run(&mut pool);
        wall.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        critical.push(pool.critical_path_ns());
        assert_eq!(records.len() as u64, population.h2_count());
    }
    let result = BenchResult {
        id: format!("scan_throughput/{mode}_{threads}t"),
        mode,
        threads,
        samples,
        sites: population.h2_count(),
        wall_median_ns: median(&mut wall),
        wall_min_ns: wall[0],
        critical_path_median_ns: median(&mut critical),
        critical_path_min_ns: critical[0],
    };
    eprintln!(
        "{:<28} wall {:>8.1} sites/s   critical-path {:>8.1} sites/s",
        result.id,
        result.sites_per_sec_wall(),
        result.sites_per_sec()
    );
    result
}

fn write_json(results: &[BenchResult], scale: f64) -> std::io::Result<()> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scan_throughput.json"
    );
    let base: Vec<&BenchResult> = results.iter().filter(|r| r.threads == 1).collect();
    let speedup = |r: &BenchResult| -> f64 {
        base.iter()
            .find(|b| b.mode == r.mode)
            .map_or(1.0, |b| match b.sites_per_sec() {
                s if s > 0.0 => r.sites_per_sec() / s,
                _ => 1.0,
            })
    };
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"h2ready-scan-throughput-v2\",\n");
    out.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \"samples\": {}, \"sites\": {}, \
             \"wall_median_ns\": {}, \"wall_min_ns\": {}, \
             \"critical_path_median_ns\": {}, \"critical_path_min_ns\": {}, \
             \"sites_per_sec\": {:.1}, \"sites_per_sec_wall\": {:.1}, \"speedup_vs_1t\": {:.2}}}{}\n",
            r.id,
            r.mode,
            r.threads,
            r.samples,
            r.sites,
            r.wall_median_ns,
            r.wall_min_ns,
            r.critical_path_median_ns,
            r.critical_path_min_ns,
            r.sites_per_sec(),
            r.sites_per_sec_wall(),
            speedup(r),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

fn main() {
    let samples = if quick_mode() { 2 } else { 10 };
    let population = Population::new(ExperimentSpec::first(), SCALE);
    eprintln!(
        "scan_throughput: {} h2 sites (scale {SCALE}), {} samples/config, host_cpus {}",
        population.h2_count(),
        samples,
        host_cpus()
    );
    let mut results = Vec::new();
    for threads in THREADS {
        for mode in ["plain", "flaky"] {
            results.push(run_config(&population, mode, threads, samples));
        }
    }
    if let Err(e) = write_json(&results, SCALE) {
        eprintln!("scan_throughput: could not write BENCH_scan_throughput.json: {e}");
        std::process::exit(1);
    }
}
