//! Microbenchmarks for the h2wire frame codec.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use h2wire::{
    decode_one, DataFrame, Frame, FrameDecoder, HeadersFrame, PrioritySpec, SettingId, Settings,
    SettingsFrame, StreamId,
};

fn data_frame(len: usize) -> Frame {
    Frame::Data(DataFrame {
        stream_id: StreamId::new(1),
        data: Bytes::from(vec![0xa5; len]),
        end_stream: false,
        pad_len: None,
    })
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_encode");
    for len in [64usize, 1_024, 16_384] {
        let frame = data_frame(len);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_function(format!("data_{len}"), |b| b.iter(|| frame.to_bytes()));
    }
    let headers = Frame::Headers(HeadersFrame {
        stream_id: StreamId::new(1),
        fragment: Bytes::from(vec![0x82; 128]),
        end_stream: true,
        end_headers: true,
        priority: Some(PrioritySpec::default_spec()),
        pad_len: Some(8),
    });
    group.bench_function("headers_with_priority_and_padding", |b| {
        b.iter(|| headers.to_bytes());
    });
    let settings = Frame::Settings(SettingsFrame::from(
        Settings::new()
            .with(SettingId::MaxConcurrentStreams, 100)
            .with(SettingId::InitialWindowSize, 65_535)
            .with(SettingId::MaxFrameSize, 16_384),
    ));
    group.bench_function("settings", |b| b.iter(|| settings.to_bytes()));
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_decode");
    for len in [64usize, 1_024, 16_384] {
        let bytes = data_frame(len).to_bytes();
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_function(format!("data_{len}"), |b| {
            b.iter(|| decode_one(&bytes, 16_384).unwrap().unwrap());
        });
    }
    // A realistic mixed stream through the stateful decoder.
    let stream: Vec<u8> = {
        let frames = vec![
            Frame::Settings(SettingsFrame::ack()),
            data_frame(1_024),
            data_frame(128),
            Frame::Ping(h2wire::PingFrame::request([7; 8])),
        ];
        h2wire::encode_all(&frames)
    };
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.bench_function("mixed_stream", |b| {
        b.iter_batched(
            FrameDecoder::new,
            |mut dec| {
                dec.feed(&stream);
                dec.drain_frames().unwrap()
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
