//! Microbenchmarks for flow-control accounting and the connection core's
//! receive path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use h2conn::{ConnectionCore, EffectiveSettings, FlowWindow, Role};
use h2hpack::{EncoderOptions, Header};
use h2wire::{DataFrame, Frame, StreamId};

fn bench_window_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_window");
    group.bench_function("consume_expand_cycle", |b| {
        b.iter_batched(
            || FlowWindow::new(65_535),
            |mut w| {
                for _ in 0..64 {
                    w.consume(512).unwrap();
                    w.expand(512).unwrap();
                }
                w
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn core_pair() -> (ConnectionCore, ConnectionCore, Vec<u8>) {
    let mut client = ConnectionCore::new(
        Role::Client,
        EffectiveSettings::default(),
        EncoderOptions::default(),
    );
    let mut server = ConnectionCore::new(
        Role::Server,
        EffectiveSettings::default(),
        EncoderOptions::default(),
    );
    let headers = vec![
        Header::new(":method", "POST"),
        Header::new(":path", "/upload"),
        Header::new(":authority", "bench.example"),
    ];
    let mut wire = Vec::new();
    for frame in client.encode_headers(StreamId::new(1), &headers, false, None) {
        frame.encode(&mut wire);
    }
    server.recv_bytes(&wire).unwrap();
    let mut data_wire = Vec::new();
    Frame::Data(DataFrame {
        stream_id: StreamId::new(1),
        data: bytes::Bytes::from(vec![0u8; 16_384]),
        end_stream: false,
        pad_len: None,
    })
    .encode(&mut data_wire);
    (client, server, data_wire)
}

fn bench_core_receive_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("connection_core");
    let (_, _, data_wire) = core_pair();
    group.throughput(Throughput::Bytes(data_wire.len() as u64));
    group.bench_function("recv_16k_data_and_replenish", |b| {
        b.iter_batched(
            core_pair,
            |(_client, mut server, wire)| {
                let events = server.recv_bytes(&wire).unwrap();
                let updates = server.replenish_recv_windows(StreamId::new(1), 16_384);
                (events, updates)
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_window_ops, bench_core_receive_path);
criterion_main!(benches);
