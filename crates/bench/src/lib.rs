//! # h2ready-bench — experiment regeneration harness
//!
//! The `repro` binary (see `src/main.rs`) regenerates every table and
//! figure of the paper's evaluation section; this library holds the
//! pieces: the parallel [`scan`] driver, the testbed [`tables`]
//! (Table III, §V-A), the wild-scan aggregates ([`wild`]: Tables IV–VII,
//! Figure 2, §V-D, §V-E, §V-F) and the timing figures ([`figures`]:
//! Figures 3 and 6).

#![warn(missing_docs)]

pub mod abuse;
pub mod cputime;
pub mod figures;
pub mod scan;
pub mod sched;
pub mod stats;
pub mod tables;
pub mod wild;
