//! Parallel scan driver: surveys a whole synthetic population with a
//! thread pool, the reproduction of the paper's §IV-B scanning loop
//! ("we construct a thread pool with configurable number of threads, each
//! of which will test a web site").

use crossbeam::channel;
use crossbeam::thread;

use h2scope::{H2Scope, SiteReport};
use webpop::{Family, Population};

/// One scanned site with its generated family (kept alongside the report
/// so family-conditioned figures don't have to re-parse server strings).
#[derive(Debug, Clone)]
pub struct ScanRecord {
    /// Site index within the campaign.
    pub index: u64,
    /// Generated family (ground truth).
    pub family: Family,
    /// What H2Scope measured.
    pub report: SiteReport,
}

/// Scans every h2 site of the population with `threads` worker threads,
/// returning records in index order.
pub fn scan(population: &Population, threads: usize) -> Vec<ScanRecord> {
    let threads = threads.max(1);
    let total = population.h2_count();
    let (tx, rx) = channel::unbounded::<ScanRecord>();
    thread::scope(|scope| {
        for worker in 0..threads as u64 {
            let tx = tx.clone();
            let population = population.clone();
            scope.spawn(move |_| {
                let scope_tool = H2Scope::new();
                let mut i = worker;
                while i < total {
                    let site = population.site(i);
                    let report = scope_tool.survey(&site.target());
                    let record = ScanRecord { index: i, family: site.family, report };
                    if tx.send(record).is_err() {
                        return;
                    }
                    i += threads as u64;
                }
            });
        }
        drop(tx);
    })
    .expect("scan workers do not panic");
    let mut records: Vec<ScanRecord> = rx.into_iter().collect();
    records.sort_by_key(|r| r.index);
    records
}

/// Records restricted to HEADERS-returning sites (the denominator of every
/// follow-up analysis).
pub fn headers_records(records: &[ScanRecord]) -> Vec<&ScanRecord> {
    records.iter().filter(|r| r.report.headers_received).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webpop::ExperimentSpec;

    #[test]
    fn scan_covers_the_population_in_order() {
        let population = Population::new(ExperimentSpec::first(), 0.001);
        let records = scan(&population, 4);
        assert_eq!(records.len() as u64, population.h2_count());
        assert!(records.windows(2).all(|w| w[0].index < w[1].index));
        let with_headers = headers_records(&records);
        // 0.1% scale: 44 of 52 sites return headers.
        assert_eq!(with_headers.len() as u64, population.headers_count());
    }

    #[test]
    fn scan_is_deterministic_across_thread_counts() {
        let population = Population::new(ExperimentSpec::first(), 0.0005);
        let a = scan(&population, 1);
        let b = scan(&population, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.report, y.report);
        }
    }
}
