//! Parallel scan driver: surveys a whole synthetic population with a
//! thread pool, the reproduction of the paper's §IV-B scanning loop
//! ("we construct a thread pool with configurable number of threads, each
//! of which will test a web site").
//!
//! Every scan variant — plain, faulted, recorded, resumed — runs on a
//! [`ScanPool`] of persistent workers. Each worker is a shared-nothing
//! simulator shard: it owns its [`H2Scope`] scratch state, an
//! [`Obs::worker_shard`] counter registry, and (per connection) a
//! private netsim event loop, touching shared state only to claim the
//! next chunk of site indices and to deposit finished records into
//! index-addressed [`Slots`]. Because every record depends only on
//! `(population, index, fault plan, seed)` — never on which worker ran
//! it or when — all outputs are byte-identical at any thread count.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use h2campaign::{CampaignMeta, CampaignRow, RecordError, RecordWriter};
use h2fault::{splitmix64, FaultPlan, FaultProfile, KillPoint};
use h2obs::Obs;
use h2scope::{survey_with_retries, H2Scope, ProbeOutcome, SiteReport};
use netsim::time::SimDuration;
use webpop::{Family, Population, SiteSample};

use crate::sched::{ScanPool, Slots, SparseQueue, WorkQueue};

/// One scanned site with its generated family (kept alongside the report
/// so family-conditioned figures don't have to re-parse server strings).
#[derive(Debug, Clone)]
pub struct ScanRecord {
    /// Site index within the campaign.
    pub index: u64,
    /// Generated family (ground truth).
    pub family: Family,
    /// What H2Scope measured.
    pub report: SiteReport,
}

/// Scans every h2 site of the population with `threads` worker threads,
/// returning records in index order.
///
/// Convenience wrapper that spins up a transient [`ScanPool`]; callers
/// running repeated campaigns (benchmarks, the coming `repro serve`
/// daemon) should hold a pool and call [`ScanPool::scan`] to amortize
/// worker spawning.
pub fn scan(population: &Population, threads: usize) -> Vec<ScanRecord> {
    ScanPool::new(threads).scan(population)
}

/// [`scan`] with an observability handle: per-site metrics and (for sites
/// under the `--trace-sites` limit) frame-level traces are recorded into
/// `obs`. With `Obs::off()` this is exactly [`scan`].
pub fn scan_with_obs(population: &Population, threads: usize, obs: &Obs) -> Vec<ScanRecord> {
    ScanPool::new(threads).scan_with_obs(population, obs)
}

/// Scans the population under a fault profile: every site's probes run
/// against an impaired link (and possibly a byzantine server) derived
/// deterministically from `(seed, site index, attempt)`, with deadlines
/// and retry/backoff from the profile. With the `none` profile this is
/// exactly [`scan`] — same code path, bit-identical records.
pub fn scan_faulted(
    population: &Population,
    threads: usize,
    profile: FaultProfile,
    seed: u64,
) -> Vec<ScanRecord> {
    ScanPool::new(threads).scan_faulted(population, profile, seed)
}

/// [`scan_faulted`] with an observability handle (see [`scan_with_obs`]).
/// All of a site's retry attempts share one per-site context, so retry
/// telemetry and trace events accumulate across attempts.
pub fn scan_faulted_with_obs(
    population: &Population,
    threads: usize,
    profile: FaultProfile,
    seed: u64,
    obs: &Obs,
) -> Vec<ScanRecord> {
    ScanPool::new(threads).scan_faulted_with_obs(population, profile, seed, obs)
}

impl ScanPool {
    /// Scans every h2 site of the population on this pool's workers,
    /// returning records in index order.
    pub fn scan(&mut self, population: &Population) -> Vec<ScanRecord> {
        self.scan_with_obs(population, &Obs::off())
    }

    /// [`ScanPool::scan`] with an observability handle; each worker
    /// records through its own [`Obs::worker_shard`].
    pub fn scan_with_obs(&mut self, population: &Population, obs: &Obs) -> Vec<ScanRecord> {
        self.run_campaign(population, None, 0, obs)
    }

    /// Scans under a fault profile (see [`scan_faulted`]).
    pub fn scan_faulted(
        &mut self,
        population: &Population,
        profile: FaultProfile,
        seed: u64,
    ) -> Vec<ScanRecord> {
        self.scan_faulted_with_obs(population, profile, seed, &Obs::off())
    }

    /// Scans under a fault profile with an observability handle.
    pub fn scan_faulted_with_obs(
        &mut self,
        population: &Population,
        profile: FaultProfile,
        seed: u64,
        obs: &Obs,
    ) -> Vec<ScanRecord> {
        let plan = (!profile.is_none()).then(|| FaultPlan::new(profile, seed));
        self.run_campaign(population, plan, seed, obs)
    }

    /// The one in-memory scan loop: broadcast a queue-draining job to
    /// every worker, collect the slots.
    ///
    /// Workers receive the population behind an `Arc` (a `Population` is
    /// a spec + scale, so the clone is O(1) — sites are generated on
    /// demand from `(spec, index)`), claim adaptively-sized index chunks
    /// from a shared [`WorkQueue`], and deposit records into shared
    /// [`Slots`]. Everything else a worker touches is its own.
    fn run_campaign(
        &mut self,
        population: &Population,
        plan: Option<FaultPlan>,
        seed: u64,
        obs: &Obs,
    ) -> Vec<ScanRecord> {
        let total = population.h2_count();
        let queue = Arc::new(WorkQueue::new(total, self.threads()));
        let slots = Arc::new(Slots::new(total as usize));
        let shared = Arc::new((population.clone(), plan));
        let obs = obs.clone();
        {
            let queue = Arc::clone(&queue);
            let slots = Arc::clone(&slots);
            let shared = Arc::clone(&shared);
            self.broadcast(move |_worker| {
                let (population, plan) = &*shared;
                let scope_tool = H2Scope::new();
                let obs = obs.worker_shard();
                while let Some(range) = queue.claim() {
                    for i in range {
                        slots.put(
                            i as usize,
                            scan_one(&scope_tool, population, i, plan.as_ref(), seed, &obs),
                        );
                    }
                }
            });
        }
        Arc::into_inner(slots)
            .expect("broadcast returns only after every job dropped its state")
            .into_vec()
    }

    /// [`ScanPool::scan_faulted_with_obs`] with persistence (see the
    /// free [`scan_recorded`] for the full contract).
    ///
    /// # Errors
    ///
    /// [`RecordError`] on I/O failure, a malformed record, or a resume
    /// against a record from a different campaign configuration.
    #[allow(clippy::too_many_arguments)] // the CLI's one call site names them all
    pub fn scan_recorded(
        &mut self,
        population: &Population,
        profile: FaultProfile,
        seed: u64,
        obs: &Obs,
        path: &Path,
        resume: bool,
        kill: Option<KillPoint>,
    ) -> Result<RecordedScan, RecordError> {
        let total = population.h2_count();
        let meta = CampaignMeta::describe(population, profile.name, seed);

        let mut preloaded: Vec<CampaignRow> = Vec::new();
        if resume {
            let stored = h2campaign::read(path)?;
            meta.ensure_matches(&stored.meta)?;
            if stored.finalized {
                // Nothing to do — surface the stored campaign unchanged.
                obs.sites_resumed(stored.rows.len() as u64);
                let records = stored
                    .rows
                    .into_iter()
                    .map(|row| ScanRecord {
                        index: row.index,
                        family: row.family,
                        report: row.report,
                    })
                    .collect();
                return Ok(RecordedScan::Complete {
                    records,
                    resumed: total,
                });
            }
            preloaded = stored.rows;
        }

        let slots = Arc::new(Slots::new(total as usize));
        let mut present = vec![false; total as usize];
        let resumed = preloaded.len() as u64;
        for row in preloaded {
            present[row.index as usize] = true;
            slots.put(
                row.index as usize,
                ScanRecord {
                    index: row.index,
                    family: row.family,
                    report: row.report,
                },
            );
        }
        obs.sites_resumed(resumed);
        let writer = Arc::new(if resume {
            RecordWriter::append_to(path, resumed)?
        } else {
            RecordWriter::create(path, &meta)?
        });
        let missing: Vec<u64> = (0..total).filter(|&i| !present[i as usize]).collect();
        let queue = Arc::new(SparseQueue::new(missing, self.threads()));
        let killed = Arc::new(AtomicBool::new(false));
        let plan = (!profile.is_none()).then(|| FaultPlan::new(profile, seed));
        let shared = Arc::new((population.clone(), plan));
        let obs_handle = obs.clone();
        {
            let queue = Arc::clone(&queue);
            let slots = Arc::clone(&slots);
            let writer = Arc::clone(&writer);
            let killed = Arc::clone(&killed);
            let shared = Arc::clone(&shared);
            self.broadcast(move |_worker| {
                let (population, plan) = &*shared;
                let scope_tool = H2Scope::new();
                let obs = obs_handle.worker_shard();
                'claims: while let Some(chunk) = queue.claim() {
                    for &i in chunk {
                        if killed.load(Ordering::Relaxed) {
                            break 'claims;
                        }
                        let record =
                            scan_one(&scope_tool, population, i, plan.as_ref(), seed, &obs);
                        let row = CampaignRow {
                            index: record.index,
                            family: record.family,
                            report: record.report.clone(),
                        };
                        // A record that cannot persist its rows has lost
                        // its crash-safety contract; stop the campaign.
                        let written = writer.append(&row).expect("campaign record append");
                        slots.put(i as usize, record);
                        if kill.is_some_and(|k| written >= k.after_rows) {
                            killed.store(true, Ordering::Relaxed);
                            break 'claims;
                        }
                    }
                }
            });
        }
        if killed.load(Ordering::Relaxed) {
            return Ok(RecordedScan::Killed {
                rows: writer.rows_written(),
            });
        }
        let records = Arc::into_inner(slots)
            .expect("broadcast returns only after every job dropped its state")
            .into_vec();
        let rows: Vec<CampaignRow> = records
            .iter()
            .map(|r| CampaignRow {
                index: r.index,
                family: r.family,
                report: r.report.clone(),
            })
            .collect();
        h2campaign::finalize(path, &meta, &rows)?;
        Ok(RecordedScan::Complete { records, resumed })
    }
}

/// Surveys one site through the single code path every scan variant
/// shares — in-memory, recorded, and resumed campaigns must produce
/// identical reports, so there is exactly one place that builds targets.
fn survey_one(
    scope_tool: &H2Scope,
    site: &SiteSample,
    plan: Option<&FaultPlan>,
    seed: u64,
    site_obs: &Obs,
) -> SiteReport {
    let Some(plan) = plan else {
        let mut target = site.target();
        target.obs = site_obs.clone();
        return scope_tool.survey(&target);
    };
    survey_with_retries(
        scope_tool,
        plan.profile().retry,
        splitmix64(seed ^ site.index),
        |attempt| {
            let injection = plan.injection(site.index, attempt);
            let mut target = site.target();
            target.obs = site_obs.clone();
            target.link = injection.impairment.apply(target.link);
            target.pipe_faults = injection.impairment.pipe_faults();
            target.patience = Some(plan.profile().deadline);
            target.seed ^= injection.seed_salt;
            if !injection.byzantine.is_noop() {
                // The rare byzantine attempt is the one place a target's
                // shared profile is customized; `make_mut` clones only
                // then, keeping clean attempts at pointer-bump cost.
                std::sync::Arc::make_mut(&mut target.profile)
                    .behavior
                    .byzantine = Some(injection.byzantine);
            }
            target
        },
    )
}

/// Scans site `i` end to end: survey (clean or faulted), per-site obs
/// bookkeeping, record assembly.
fn scan_one(
    scope_tool: &H2Scope,
    population: &Population,
    i: u64,
    plan: Option<&FaultPlan>,
    seed: u64,
    obs: &Obs,
) -> ScanRecord {
    let site = population.site(i);
    let site_obs = obs.for_site(i);
    let report = survey_one(scope_tool, &site, plan, seed, &site_obs);
    site_obs.finish_site();
    ScanRecord {
        index: i,
        family: site.family,
        report,
    }
}

/// Records restricted to HEADERS-returning sites (the denominator of every
/// follow-up analysis).
pub fn headers_records(records: &[ScanRecord]) -> Vec<&ScanRecord> {
    records
        .iter()
        .filter(|r| r.report.headers_received)
        .collect()
}

/// How a recorded scan ([`scan_recorded`]) ended.
#[derive(Debug)]
pub enum RecordedScan {
    /// The campaign completed and the record on disk was finalized.
    Complete {
        /// All records, in index order.
        records: Vec<ScanRecord>,
        /// Sites preloaded from a partial record instead of scanned.
        resumed: u64,
    },
    /// A [`KillPoint`] fired: the journal holds `rows` durable rows and
    /// no `end|` trailer — the on-disk state of a crashed campaign.
    Killed {
        /// Rows persisted before the simulated crash.
        rows: u64,
    },
}

/// [`scan_faulted_with_obs`] with persistence: every finished site is
/// appended (and flushed) to the campaign record at `path` before the
/// worker moves on, so a killed process loses at most its in-flight
/// sites. With `resume`, a partial record at `path` is validated against
/// this campaign's configuration, its rows are preloaded, and only the
/// missing sites are scanned. Either way a completed campaign finalizes
/// the record into canonical index order — which is why a resumed
/// campaign's final record is byte-identical to an uninterrupted one at
/// any thread count: rows depend only on `(population, index)` and the
/// final bytes only on `(meta, row set)`.
///
/// # Errors
///
/// [`RecordError`] on I/O failure, a malformed record, or a resume
/// against a record from a different campaign configuration.
#[allow(clippy::too_many_arguments)] // the CLI's one call site names them all
pub fn scan_recorded(
    population: &Population,
    threads: usize,
    profile: FaultProfile,
    seed: u64,
    obs: &Obs,
    path: &Path,
    resume: bool,
    kill: Option<KillPoint>,
) -> Result<RecordedScan, RecordError> {
    ScanPool::new(threads).scan_recorded(population, profile, seed, obs, path, resume, kill)
}

/// The scan report's resilience section: outcome histogram plus
/// retry/backoff accounting (printed by `repro` for faulted campaigns).
pub fn fault_summary(records: &[ScanRecord]) -> String {
    let mut counts = [0usize; 5];
    let mut attempts = 0u64;
    let mut retried = 0usize;
    let mut backoff = SimDuration::ZERO;
    for record in records {
        let stats = &record.report.probe;
        let slot = match stats.outcome {
            ProbeOutcome::Ok => 0,
            ProbeOutcome::Timeout => 1,
            ProbeOutcome::ConnReset => 2,
            ProbeOutcome::Malformed => 3,
            ProbeOutcome::GaveUpAfterRetries => 4,
        };
        counts[slot] += 1;
        attempts += u64::from(stats.attempts);
        if stats.attempts > 1 {
            retried += 1;
        }
        backoff = backoff + stats.backoff;
    }
    let mut out = String::new();
    out.push_str("Scan resilience\n");
    out.push_str(&format!("  sites scanned      {}\n", records.len()));
    out.push_str(&format!("  ok                 {}\n", counts[0]));
    out.push_str(&format!("  timeout            {}\n", counts[1]));
    out.push_str(&format!("  conn-reset         {}\n", counts[2]));
    out.push_str(&format!("  malformed          {}\n", counts[3]));
    out.push_str(&format!("  gave-up-after-retries {}\n", counts[4]));
    out.push_str(&format!(
        "  attempts           {attempts} total, {retried} sites retried\n"
    ));
    out.push_str(&format!(
        "  backoff spent      {:.1} s simulated\n",
        backoff.as_millis_f64() / 1_000.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use webpop::ExperimentSpec;

    #[test]
    fn scan_covers_the_population_in_order() {
        let population = Population::new(ExperimentSpec::first(), 0.001);
        let records = scan(&population, 4);
        assert_eq!(records.len() as u64, population.h2_count());
        assert!(records.windows(2).all(|w| w[0].index < w[1].index));
        let with_headers = headers_records(&records);
        // 0.1% scale: 44 of 52 sites return headers.
        assert_eq!(with_headers.len() as u64, population.headers_count());
    }

    #[test]
    fn scan_is_deterministic_across_thread_counts() {
        let population = Population::new(ExperimentSpec::first(), 0.0005);
        let a = scan(&population, 1);
        let b = scan(&population, 7);
        let c = scan(&population, 16);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), c.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.report, y.report);
            assert_eq!(x.report, z.report, "16 threads diverged");
        }
    }

    #[test]
    fn reused_pool_matches_fresh_pools() {
        // A persistent pool run back-to-back (the benchmark's steady
        // state) must produce exactly what transient pools produce —
        // worker reuse cannot leak state between campaigns.
        let population = Population::new(ExperimentSpec::first(), 0.0005);
        let fresh_plain = scan(&population, 4);
        let fresh_faulted = scan_faulted(&population, 4, FaultProfile::flaky(), 0xfa17);
        let mut pool = ScanPool::new(4);
        for _round in 0..2 {
            let plain = pool.scan(&population);
            let faulted = pool.scan_faulted(&population, FaultProfile::flaky(), 0xfa17);
            assert_eq!(plain.len(), fresh_plain.len());
            for (x, y) in plain.iter().zip(&fresh_plain) {
                assert_eq!(x.report, y.report);
            }
            for (x, y) in faulted.iter().zip(&fresh_faulted) {
                assert_eq!(x.report, y.report);
            }
        }
    }

    #[test]
    fn faulted_scan_is_byte_identical_across_thread_counts() {
        // A loss+jitter+drop campaign must replay exactly at any thread
        // count: faults derive from (seed, site, attempt), never from
        // scheduling.
        let population = Population::new(ExperimentSpec::first(), 0.0005);
        let profile = FaultProfile::flaky();
        let a = scan_faulted(&population, 1, profile, 0xfa17);
        let b = scan_faulted(&population, 4, profile, 0xfa17);
        let c = scan_faulted(&population, 8, profile, 0xfa17);
        let d = scan_faulted(&population, 16, profile, 0xfa17);
        let serialize = |records: &[ScanRecord]| {
            h2scope::storage::write_reports(records.iter().map(|r| &r.report))
        };
        let (sa, sb, sc, sd) = (serialize(&a), serialize(&b), serialize(&c), serialize(&d));
        assert_eq!(sa, sb, "1 vs 4 threads");
        assert_eq!(sb, sc, "4 vs 8 threads");
        assert_eq!(sc, sd, "8 vs 16 threads");
        // The campaign actually exercised the impairments: some probes
        // resolved to degraded outcomes, and some sites burned retries.
        assert!(
            a.iter().any(|r| r.report.probe.outcome != ProbeOutcome::Ok),
            "flaky profile should degrade some sites"
        );
        assert!(a.iter().any(|r| r.report.probe.attempts > 1));
    }

    #[test]
    fn faulted_scan_with_none_profile_matches_plain_scan() {
        let population = Population::new(ExperimentSpec::first(), 0.0005);
        let plain = scan(&population, 4);
        let faultless = scan_faulted(&population, 4, FaultProfile::none(), 99);
        assert_eq!(plain.len(), faultless.len());
        for (x, y) in plain.iter().zip(&faultless) {
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn faulted_campaign_seeds_change_the_outcome_mix() {
        // Retries mask most injected faults, so the outcome enum alone can
        // coincide; the serialized records (attempts, backoff, outcomes)
        // must still differ between seeds.
        let population = Population::new(ExperimentSpec::first(), 0.0005);
        let profile = FaultProfile::flaky();
        let a = scan_faulted(&population, 4, profile, 1);
        let b = scan_faulted(&population, 4, profile, 2);
        let serialize = |records: &[ScanRecord]| {
            h2scope::storage::write_reports(records.iter().map(|r| &r.report))
        };
        assert_ne!(
            serialize(&a),
            serialize(&b),
            "different seeds, different faults"
        );
    }

    #[test]
    fn metrics_recording_does_not_perturb_the_records() {
        // The tentpole's contract: --metrics is observation only. The
        // serialized reports of an instrumented scan must be byte-identical
        // to the uninstrumented baseline.
        let population = Population::new(ExperimentSpec::first(), 0.0005);
        let serialize = |records: &[ScanRecord]| {
            h2scope::storage::write_reports(records.iter().map(|r| &r.report))
        };
        let plain = serialize(&scan(&population, 4));
        let obs = Obs::campaign(2);
        let observed = serialize(&scan_with_obs(&population, 4, &obs));
        assert_eq!(plain, observed, "plain scan perturbed by metrics");
        let faulted = serialize(&scan_faulted(&population, 4, FaultProfile::flaky(), 7));
        let obs = Obs::campaign(2);
        let observed = serialize(&scan_faulted_with_obs(
            &population,
            4,
            FaultProfile::flaky(),
            7,
            &obs,
        ));
        assert_eq!(faulted, observed, "faulted scan perturbed by metrics");
    }

    #[test]
    fn obs_snapshot_is_identical_across_thread_counts() {
        // Counters are order-independent sums folded across per-worker
        // shards, and traces are flushed as per-site batches, so the
        // whole rendered snapshot — table and JSON — must not depend on
        // worker scheduling or shard count.
        let population = Population::new(ExperimentSpec::first(), 0.0005);
        let run = |threads: usize| {
            let obs = Obs::campaign(3);
            scan_faulted_with_obs(&population, threads, FaultProfile::flaky(), 7, &obs);
            let snap = obs.snapshot().expect("campaign obs snapshots");
            (h2obs::render_table(&snap), h2obs::render_json(&snap))
        };
        let (table1, json1) = run(1);
        let (table8, json8) = run(8);
        let (table16, json16) = run(16);
        assert_eq!(table1, table8);
        assert_eq!(json1, json8);
        assert_eq!(table8, table16);
        assert_eq!(json8, json16);
        assert!(json1.contains("\"schema\": \"h2obs-campaign-v2\""));
    }

    #[test]
    fn fault_summary_reports_the_taxonomy() {
        let population = Population::new(ExperimentSpec::first(), 0.0005);
        let records = scan_faulted(&population, 4, FaultProfile::flaky(), 0xfa17);
        let summary = fault_summary(&records);
        assert!(summary.contains("gave-up-after-retries"));
        assert!(summary.contains("sites retried"));
        assert!(summary.contains(&format!("sites scanned      {}", records.len())));
    }
}
