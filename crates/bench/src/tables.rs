//! Testbed generators: Table III (the server characterization matrix) and
//! the §V-A MAX_CONCURRENT_STREAMS enforcement experiment.

use std::fmt::Write as _;

use h2scope::probes::flow_control::SmallWindowOutcome;
use h2scope::testbed::Testbed;
use h2scope::{H2Scope, Reaction, ServerCharacterization};
use h2server::{ServerProfile, SiteSpec};

/// The paper's Table III expectations, row-major, one entry per server
/// (Nginx, LiteSpeed, H2O, nghttpd, Tengine, Apache).
pub struct TableIiiExpectation {
    /// Row label as printed.
    pub row: &'static str,
    /// Expected cell per server column.
    pub cells: [&'static str; 6],
}

/// Every row of the paper's Table III.
pub const TABLE_III_EXPECTED: &[TableIiiExpectation] = &[
    TableIiiExpectation {
        row: "ALPN",
        cells: ["support"; 6],
    },
    TableIiiExpectation {
        row: "NPN",
        cells: [
            "support",
            "support",
            "support",
            "support",
            "support",
            "no support",
        ],
    },
    TableIiiExpectation {
        row: "Request Multiplexing",
        cells: ["support"; 6],
    },
    TableIiiExpectation {
        row: "Flow Control on DATA Frames",
        cells: ["yes"; 6],
    },
    TableIiiExpectation {
        row: "Flow Control on HEADERS Frames",
        cells: ["no", "yes", "no", "no", "no", "no"],
    },
    TableIiiExpectation {
        row: "Zero Window Update on stream",
        cells: [
            "ignore",
            "RST_STREAM",
            "RST_STREAM",
            "GOAWAY",
            "ignore",
            "GOAWAY",
        ],
    },
    TableIiiExpectation {
        row: "Zero Window Update on connection",
        cells: ["ignore", "GOAWAY", "GOAWAY", "GOAWAY", "ignore", "GOAWAY"],
    },
    TableIiiExpectation {
        row: "Large Window Update (Connection)",
        cells: ["GOAWAY"; 6],
    },
    TableIiiExpectation {
        row: "Large Window Update (Stream)",
        cells: ["RST_STREAM"; 6],
    },
    TableIiiExpectation {
        row: "Server Push",
        cells: ["no", "no", "yes", "yes", "no", "yes"],
    },
    TableIiiExpectation {
        row: "Priority Mechanism Testing (Algorithm 1)",
        cells: ["fail", "fail", "pass", "pass", "fail", "pass"],
    },
    TableIiiExpectation {
        row: "Self-dependent Stream",
        cells: [
            "RST_STREAM",
            "ignore",
            "GOAWAY",
            "GOAWAY",
            "RST_STREAM",
            "GOAWAY",
        ],
    },
    TableIiiExpectation {
        row: "Header Compression",
        cells: [
            "support*", "support", "support", "support", "support*", "support",
        ],
    },
    TableIiiExpectation {
        row: "HTTP/2 PING",
        cells: ["support"; 6],
    },
];

/// Characterizes all six testbed servers (one H2Scope run per column).
pub fn characterize_testbed() -> Vec<ServerCharacterization> {
    let scope = H2Scope::new();
    ServerProfile::testbed()
        .into_iter()
        .map(|profile| {
            // The push row needs a site with a manifest; everything else
            // uses the benchmark site. Run characterize on the benchmark
            // and overwrite the push verdict from a manifest-bearing site.
            let report = scope.characterize(&Testbed::new(profile.clone(), SiteSpec::benchmark()));
            let push = h2scope::probes::push::probe(
                &h2scope::Target::testbed(profile, SiteSpec::page_with_assets(3, 2_000)),
                &["/"],
            );
            ServerCharacterization { push, ..report }
        })
        .collect()
}

fn reaction_cell(reaction: Reaction) -> &'static str {
    match reaction {
        Reaction::Ignored => "ignore",
        Reaction::RstStream => "RST_STREAM",
        Reaction::Goaway | Reaction::GoawayWithDebug => "GOAWAY",
    }
}

/// Extracts the measured cell for `(row, characterization)`.
pub fn measured_cell(row: &str, c: &ServerCharacterization) -> &'static str {
    match row {
        "ALPN" => {
            if c.negotiation.alpn_h2 {
                "support"
            } else {
                "no support"
            }
        }
        "NPN" => {
            if c.negotiation.npn_h2 {
                "support"
            } else {
                "no support"
            }
        }
        "Request Multiplexing" => {
            if c.multiplexing.parallel {
                "support"
            } else {
                "no support"
            }
        }
        "Flow Control on DATA Frames" => {
            if matches!(
                c.flow_control.small_window,
                SmallWindowOutcome::OneByteData | SmallWindowOutcome::NoResponse
            ) {
                "yes"
            } else {
                "no"
            }
        }
        "Flow Control on HEADERS Frames" => {
            if c.flow_control.headers_at_zero_window {
                "no"
            } else {
                "yes"
            }
        }
        "Zero Window Update on stream" => reaction_cell(c.flow_control.zero_update_stream),
        "Zero Window Update on connection" => reaction_cell(c.flow_control.zero_update_conn),
        "Large Window Update (Connection)" => reaction_cell(c.flow_control.large_update_conn),
        "Large Window Update (Stream)" => reaction_cell(c.flow_control.large_update_stream),
        "Server Push" => {
            if c.push.supported {
                "yes"
            } else {
                "no"
            }
        }
        "Priority Mechanism Testing (Algorithm 1)" => {
            if c.priority.passes() {
                "pass"
            } else {
                "fail"
            }
        }
        "Self-dependent Stream" => reaction_cell(c.priority.self_dependency),
        "Header Compression" => {
            if (c.hpack.ratio - 1.0).abs() < 1e-9 {
                "support*"
            } else {
                "support"
            }
        }
        "HTTP/2 PING" => {
            if c.ping.supported {
                "support"
            } else {
                "no support"
            }
        }
        other => panic!("unknown Table III row {other}"),
    }
}

/// Regenerates Table III and appends a verification footer comparing every
/// measured cell with the paper.
pub fn table3() -> String {
    let characterizations = characterize_testbed();
    let mut out = String::new();
    writeln!(
        out,
        "TABLE III — Characterizing popular HTTP/2 web servers in testbed"
    )
    .unwrap();
    write!(out, "{:<42}", "").unwrap();
    for c in &characterizations {
        write!(out, "{:<13}", c.server).unwrap();
    }
    writeln!(out).unwrap();
    let mut mismatches = 0;
    for expectation in TABLE_III_EXPECTED {
        write!(out, "{:<42}", expectation.row).unwrap();
        for (c, expected) in characterizations.iter().zip(expectation.cells.iter()) {
            let measured = measured_cell(expectation.row, c);
            let marker = if measured == *expected {
                ""
            } else {
                mismatches += 1;
                "!"
            };
            write!(out, "{:<13}", format!("{measured}{marker}")).unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "\nverification vs paper: {} ({} cells, {} mismatches)",
        if mismatches == 0 { "MATCH" } else { "MISMATCH" },
        TABLE_III_EXPECTED.len() * 6,
        mismatches
    )
    .unwrap();
    out
}

/// §V-A: announce MAX_CONCURRENT_STREAMS of 0 and 1 on Nginx/Tengine and
/// watch the RST_STREAM enforcement.
pub fn concurrency_experiment() -> String {
    use h2scope::ProbeConn;
    use h2wire::{Frame, SettingId, Settings};

    let mut out = String::new();
    writeln!(
        out,
        "§V-A — MAX_CONCURRENT_STREAMS enforcement (Nginx & Tengine)"
    )
    .unwrap();
    for base in [ServerProfile::nginx(), ServerProfile::tengine()] {
        for mcs in [0u32, 1] {
            let mut profile = base.clone();
            profile.behavior.announced = Settings::new()
                .with(SettingId::MaxConcurrentStreams, mcs)
                .with(SettingId::InitialWindowSize, 65_535);
            profile.behavior.zero_window_then_update = None;
            let target = h2scope::Target::testbed(profile, SiteSpec::benchmark());
            let mut conn = ProbeConn::establish(&target, Settings::new(), 0x5a01);
            conn.exchange();
            conn.get(1, "/big/1", None);
            if mcs == 1 {
                conn.get(3, "/big/2", None);
            }
            let frames = conn.exchange();
            let rsts: Vec<u32> = frames
                .iter()
                .filter_map(|tf| match &tf.frame {
                    Frame::RstStream(r) => Some(r.stream_id.value()),
                    _ => None,
                })
                .collect();
            writeln!(
                out,
                "  {:<8} MCS={mcs}: RST_STREAM on streams {rsts:?} (paper: {})",
                base.name,
                if mcs == 0 {
                    "every new request reset"
                } else {
                    "second request reset"
                }
            )
            .unwrap();
        }
    }
    out
}

/// Methodology ablation: the naive priority check vs Algorithm 1 across
/// the testbed — demonstrating why the paper's §III-C preparation steps
/// (drain the connection window, RST the throwaway streams, reprioritize
/// while blocked) are load-bearing.
pub fn priority_ablation() -> String {
    use h2scope::probes::priority::{algorithm1, naive_order_check};
    let mut out = String::new();
    writeln!(out, "Ablation — naive ordering check vs Algorithm 1").unwrap();
    writeln!(
        out,
        "  {:<10} {:>18} {:>18} {:>10}",
        "server", "naive verdict", "Algorithm 1", "truth"
    )
    .unwrap();
    let mut naive_errors = 0;
    let mut algo_errors = 0;
    for profile in ServerProfile::testbed() {
        let truth = profile.behavior.priority_mode.passes_table_iii();
        let target = h2scope::Target::testbed(profile.clone(), SiteSpec::benchmark());
        let naive = naive_order_check(&target).by_last_frame;
        let algo = algorithm1(&target).passes();
        if naive != truth {
            naive_errors += 1;
        }
        if algo != truth {
            algo_errors += 1;
        }
        writeln!(
            out,
            "  {:<10} {:>18} {:>18} {:>10}",
            profile.name,
            if naive { "pass" } else { "fail" },
            if algo { "pass" } else { "fail" },
            if truth { "supports" } else { "fcfs" }
        )
        .unwrap();
    }
    writeln!(
        out,
        "  misclassifications: naive {naive_errors}/6, Algorithm 1 {algo_errors}/6 \
         (the drain/RST/reprioritize preparation is what makes the probe sound)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shows_algorithm1_strictly_better() {
        let rendered = priority_ablation();
        assert!(rendered.contains("Algorithm 1 0/6"), "{rendered}");
        assert!(
            !rendered.contains("naive 0/6"),
            "naive must misclassify: {rendered}"
        );
    }

    #[test]
    fn table3_matches_the_paper_cell_for_cell() {
        let rendered = table3();
        assert!(
            rendered.contains("verification vs paper: MATCH"),
            "{rendered}"
        );
    }

    #[test]
    fn concurrency_experiment_resets_correct_streams() {
        let rendered = concurrency_experiment();
        // MCS=0 lines reset stream 1; MCS=1 lines reset stream 3.
        assert!(
            rendered.contains("MCS=0: RST_STREAM on streams [1]"),
            "{rendered}"
        );
        assert!(
            rendered.contains("MCS=1: RST_STREAM on streams [3]"),
            "{rendered}"
        );
    }
}
