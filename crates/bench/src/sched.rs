//! Work claiming and result collection for the parallel scan driver.
//!
//! The original scan loop gave worker `w` the arithmetic stride `w, w+T,
//! w+2T, …` and funneled every finished record through an unbounded
//! channel, then sorted the whole campaign by site index afterwards. Both
//! halves cost more than they need to:
//!
//! * static striding load-balances badly when per-site cost varies (mute
//!   sites finish in microseconds, retry-burning flaky sites take orders
//!   of magnitude longer), and
//! * the channel allocates per record and the final sort is an
//!   O(n log n) pass over data whose order was known all along.
//!
//! [`WorkQueue`] replaces the stride with chunked atomic claiming: a
//! worker grabs the next [`CHUNK`]-sized index range with one
//! `fetch_add`, so contention is one atomic per chunk instead of any
//! per-site coordination, and a slow site only delays its own chunk.
//! [`Slots`] replaces the channel + sort: results are written directly
//! into a pre-sized slot addressed by site index, so collection is O(n)
//! and allocation-free per record.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Indices claimed per atomic operation. Small enough that an unlucky
/// worker stuck behind a pathological chunk strands at most `CHUNK - 1`
/// cheap sites, large enough that the claim counter never becomes a
/// contended cache line.
pub const CHUNK: u64 = 16;

/// A shared counter handing out disjoint index ranges `[0, total)`.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicU64,
    total: u64,
}

impl WorkQueue {
    /// A queue over the index space `0..total`.
    pub fn new(total: u64) -> WorkQueue {
        WorkQueue {
            next: AtomicU64::new(0),
            total,
        }
    }

    /// Claims the next unclaimed chunk, or `None` when the index space is
    /// exhausted. Ranges returned to different callers never overlap,
    /// which is what makes the per-index [`Slots::put`] writes race-free.
    pub fn claim(&self) -> Option<Range<u64>> {
        let start = self.next.fetch_add(CHUNK, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + CHUNK).min(self.total))
    }
}

/// Chunked atomic claiming over an arbitrary (sparse) index list — the
/// resume path's work queue. A resumed campaign only re-scans the sites
/// missing from the partial record, which is rarely a contiguous range:
/// workers were writing rows out of order when the process died. Same
/// claim discipline as [`WorkQueue`] (one `fetch_add` per [`CHUNK`]),
/// but over an explicit index list instead of `0..total`.
#[derive(Debug)]
pub struct SparseQueue {
    indices: Vec<u64>,
    next: AtomicU64,
}

impl SparseQueue {
    /// A queue handing out the given indices (claim order = list order).
    pub fn new(indices: Vec<u64>) -> SparseQueue {
        SparseQueue {
            indices,
            next: AtomicU64::new(0),
        }
    }

    /// How many indices the queue was created with.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when the queue was created empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Claims the next unclaimed slice of at most [`CHUNK`] indices, or
    /// `None` when the list is exhausted. Slices never overlap.
    pub fn claim(&self) -> Option<&[u64]> {
        let start = self.next.fetch_add(CHUNK, Ordering::Relaxed) as usize;
        if start >= self.indices.len() {
            return None;
        }
        let end = (start + CHUNK as usize).min(self.indices.len());
        Some(&self.indices[start..end])
    }
}

/// Pre-sized, index-addressed result collection.
///
/// Each slot is a [`OnceLock`], so concurrent workers can fill disjoint
/// indices through a shared reference without locks or channels; the
/// scan's claim discipline guarantees each index is written exactly once.
#[derive(Debug)]
pub struct Slots<T> {
    slots: Vec<OnceLock<T>>,
}

impl<T> Slots<T> {
    /// `len` empty slots.
    pub fn new(len: usize) -> Slots<T> {
        let mut slots = Vec::with_capacity(len);
        slots.resize_with(len, OnceLock::new);
        Slots { slots }
    }

    /// Fills slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already filled — that would mean two
    /// workers claimed the same index, which the queue's `fetch_add`
    /// discipline rules out.
    pub fn put(&self, index: usize, value: T) {
        if self.slots[index].set(value).is_err() {
            panic!("slot {index} filled twice");
        }
    }

    /// Unwraps the collection into index order.
    ///
    /// # Panics
    ///
    /// Panics if any slot is empty (a worker exited without finishing its
    /// claimed range, which only happens via a worker panic — already
    /// propagated by the thread scope).
    pub fn into_vec(self) -> Vec<T> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot.into_inner() {
                Some(value) => value,
                None => panic!("slot {i} never filled"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::thread;

    #[test]
    fn claims_cover_the_index_space_exactly_once() {
        let queue = WorkQueue::new(103);
        let mut seen = vec![0u32; 103];
        while let Some(range) = queue.claim() {
            for i in range {
                seen[i as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1));
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let queue = WorkQueue::new(0);
        assert_eq!(queue.claim(), None);
    }

    #[test]
    fn sparse_claims_cover_the_list_exactly_once() {
        let indices: Vec<u64> = (0..217).filter(|i| i % 3 != 0).collect();
        let queue = SparseQueue::new(indices.clone());
        assert_eq!(queue.len(), indices.len());
        let mut claimed = Vec::new();
        while let Some(chunk) = queue.claim() {
            claimed.extend_from_slice(chunk);
        }
        assert_eq!(claimed, indices);
    }

    #[test]
    fn empty_sparse_queue_yields_nothing() {
        let queue = SparseQueue::new(Vec::new());
        assert!(queue.is_empty());
        assert_eq!(queue.claim(), None);
    }

    #[test]
    fn slots_collect_in_index_order_regardless_of_fill_order() {
        let slots = Slots::new(5);
        for i in [3usize, 0, 4, 1, 2] {
            slots.put(i, i * 10);
        }
        assert_eq!(slots.into_vec(), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn concurrent_workers_partition_the_space() {
        let queue = WorkQueue::new(1000);
        let slots = Slots::new(1000);
        thread::scope(|scope| {
            for _ in 0..4 {
                let (queue, slots) = (&queue, &slots);
                scope.spawn(move |_| {
                    while let Some(range) = queue.claim() {
                        for i in range {
                            slots.put(i as usize, i * 2);
                        }
                    }
                });
            }
        })
        .expect("workers do not panic");
        let collected = slots.into_vec();
        assert!(collected
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as u64 * 2));
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn double_fill_panics() {
        let slots = Slots::new(1);
        slots.put(0, 1);
        slots.put(0, 2);
    }
}
