//! Work claiming, result collection, and the persistent worker pool for
//! the parallel scan driver.
//!
//! The original scan loop gave worker `w` the arithmetic stride `w, w+T,
//! w+2T, …` and funneled every finished record through an unbounded
//! channel, then sorted the whole campaign by site index afterwards. Both
//! halves cost more than they need to:
//!
//! * static striding load-balances badly when per-site cost varies (mute
//!   sites finish in microseconds, retry-burning flaky sites take orders
//!   of magnitude longer), and
//! * the channel allocates per record and the final sort is an
//!   O(n log n) pass over data whose order was known all along.
//!
//! [`WorkQueue`] replaces the stride with chunked atomic claiming: a
//! worker grabs the next chunk-sized index range with one compare-exchange,
//! so contention is one atomic per chunk instead of any per-site
//! coordination, and a slow site only delays its own chunk. The chunk
//! size adapts to the population/thread ratio (see [`chunk_size`]) so
//! small populations still fan out across every worker. [`Slots`]
//! replaces the channel + sort: results are written directly into a
//! pre-sized slot addressed by site index, so collection is O(n) and
//! allocation-free per record.
//!
//! [`ScanPool`] owns the worker threads themselves. Spawning a thread per
//! scan was invisible at campaign scale but dominated the short
//! benchmark iterations that produced the inverted scaling curve of
//! `BENCH_scan_throughput.json`; a pool spawns once, hands each worker
//! jobs over a private channel, and reports per-job thread-CPU time so
//! the benchmarks can measure the critical path instead of the wall
//! clock of a core-starved host.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use crate::cputime;

/// Upper bound on indices claimed per atomic operation. Small enough
/// that an unlucky worker stuck behind a pathological chunk strands at
/// most `MAX_CHUNK - 1` cheap sites, large enough that the claim counter
/// never becomes a contended cache line.
pub const MAX_CHUNK: u64 = 16;

/// The claim granularity for `total` indices split across `threads`
/// workers: `clamp(total / (threads * 8), 1, MAX_CHUNK)`.
///
/// The old fixed chunk of 16 capped parallelism at `⌈total / 16⌉`
/// workers — a 105-site benchmark population had 7 claimable chunks, so
/// an 8-thread scan structurally idled a worker. Adapting to the ratio
/// guarantees at least `8 × threads` chunks whenever the population is
/// large enough to split that far (and one-index chunks below that), so
/// every worker claims work whenever `total ≥ threads`.
pub fn chunk_size(total: u64, threads: usize) -> u64 {
    let threads = threads.max(1) as u64;
    (total / (threads * 8)).clamp(1, MAX_CHUNK)
}

/// A shared counter handing out disjoint index ranges `[0, total)`.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicU64,
    total: u64,
    chunk: u64,
}

impl WorkQueue {
    /// A queue over the index space `0..total`, with claim granularity
    /// adapted to `threads` (see [`chunk_size`]).
    pub fn new(total: u64, threads: usize) -> WorkQueue {
        WorkQueue {
            next: AtomicU64::new(0),
            total,
            chunk: chunk_size(total, threads),
        }
    }

    /// Claims the next unclaimed chunk, or `None` when the index space is
    /// exhausted. Ranges returned to different callers never overlap,
    /// which is what makes the per-index [`Slots::put`] writes race-free.
    ///
    /// An exhausted claim is non-mutating: the counter saturates at
    /// `total` instead of creeping upward with every poll, so a
    /// long-lived queue (the coming `repro serve` daemon re-polls queues
    /// for their lifetime) can never wrap around, and post-exhaustion
    /// polling stops dirtying the shared cache line.
    pub fn claim(&self) -> Option<Range<u64>> {
        let mut start = self.next.load(Ordering::Relaxed);
        loop {
            if start >= self.total {
                return None;
            }
            let end = (start + self.chunk).min(self.total);
            match self
                .next
                .compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some(start..end),
                Err(observed) => start = observed,
            }
        }
    }

    /// Indices not yet handed out (0 once exhausted).
    pub fn remaining(&self) -> u64 {
        self.total.saturating_sub(self.next.load(Ordering::Relaxed))
    }
}

/// Chunked atomic claiming over an arbitrary (sparse) index list — the
/// resume path's work queue. A resumed campaign only re-scans the sites
/// missing from the partial record, which is rarely a contiguous range:
/// workers were writing rows out of order when the process died. Same
/// claim discipline as [`WorkQueue`] (one compare-exchange per chunk,
/// saturating at exhaustion), but over an explicit index list instead of
/// `0..total`.
#[derive(Debug)]
pub struct SparseQueue {
    indices: Vec<u64>,
    next: AtomicU64,
    chunk: u64,
}

impl SparseQueue {
    /// A queue handing out the given indices (claim order = list order),
    /// with claim granularity adapted to `threads` (see [`chunk_size`]).
    pub fn new(indices: Vec<u64>, threads: usize) -> SparseQueue {
        let chunk = chunk_size(indices.len() as u64, threads);
        SparseQueue {
            indices,
            next: AtomicU64::new(0),
            chunk,
        }
    }

    /// How many indices the queue was created with.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when the queue was created empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Claims the next unclaimed slice of at most [`chunk_size`] indices,
    /// or `None` when the list is exhausted. Slices never overlap, and an
    /// exhausted claim leaves the counter untouched (see
    /// [`WorkQueue::claim`]).
    pub fn claim(&self) -> Option<&[u64]> {
        let total = self.indices.len() as u64;
        let mut start = self.next.load(Ordering::Relaxed);
        loop {
            if start >= total {
                return None;
            }
            let end = (start + self.chunk).min(total);
            match self
                .next
                .compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some(&self.indices[start as usize..end as usize]),
                Err(observed) => start = observed,
            }
        }
    }
}

/// Pre-sized, index-addressed result collection.
///
/// Each slot is a [`OnceLock`], so concurrent workers can fill disjoint
/// indices through a shared reference without locks or channels; the
/// scan's claim discipline guarantees each index is written exactly once.
#[derive(Debug)]
pub struct Slots<T> {
    slots: Vec<OnceLock<T>>,
}

impl<T> Slots<T> {
    /// `len` empty slots.
    pub fn new(len: usize) -> Slots<T> {
        let mut slots = Vec::with_capacity(len);
        slots.resize_with(len, OnceLock::new);
        Slots { slots }
    }

    /// Fills slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already filled — that would mean two
    /// workers claimed the same index, which the queue's claim discipline
    /// rules out.
    pub fn put(&self, index: usize, value: T) {
        if self.slots[index].set(value).is_err() {
            panic!("slot {index} filled twice");
        }
    }

    /// Unwraps the collection into index order.
    ///
    /// # Panics
    ///
    /// Panics if any slot is empty (a worker exited without finishing its
    /// claimed range, which only happens via a worker panic — already
    /// propagated by the pool).
    pub fn into_vec(self) -> Vec<T> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot.into_inner() {
                Some(value) => value,
                None => panic!("slot {i} never filled"),
            })
            .collect()
    }
}

/// One unit of work dispatched to a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A worker's completion report for one job.
struct Done {
    worker: usize,
    cpu_ns: u64,
    panic: Option<Box<dyn Any + Send>>,
}

/// A persistent pool of scan workers.
///
/// Workers are spawned once and live for the pool's lifetime;
/// [`ScanPool::broadcast`] hands every worker one closure of the same
/// job (the scan paths make the closure drain a shared [`WorkQueue`]
/// or [`SparseQueue`], so the pool stays policy-free). Each completion
/// carries the thread-CPU time the job consumed, which
/// [`ScanPool::worker_cpu_ns`] / [`ScanPool::critical_path_ns`] expose
/// for the scaling benchmarks.
///
/// A job that panics does not kill its worker: the panic is caught,
/// reported with the completion, and re-raised on the broadcasting
/// thread after every worker has checked in — same observable behavior
/// as the scoped-thread scan it replaces, but the pool stays reusable.
#[derive(Debug)]
pub struct ScanPool {
    senders: Vec<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    done: mpsc::Receiver<Done>,
    cpu_ns: Vec<u64>,
}

impl ScanPool {
    /// Spawns `threads.max(1)` workers, named `scan-0…`.
    pub fn new(threads: usize) -> ScanPool {
        let threads = threads.max(1);
        let (done_tx, done) = mpsc::channel::<Done>();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let (tx, rx) = mpsc::channel::<Job>();
            let done_tx = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("scan-{worker}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let start = cputime::thread_cpu_ns();
                        // The job owns all its state (Arc'd queue, slots,
                        // population), so a panic cannot leave this
                        // worker's locals poisoned; catching it keeps the
                        // pool alive and lets the broadcaster re-raise.
                        let panic = catch_unwind(AssertUnwindSafe(job)).err();
                        let cpu_ns = cputime::thread_cpu_ns().saturating_sub(start);
                        if done_tx
                            .send(Done {
                                worker,
                                cpu_ns,
                                panic,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                })
                .expect("spawn scan worker");
            senders.push(tx);
            handles.push(handle);
        }
        ScanPool {
            senders,
            handles,
            done,
            cpu_ns: vec![0; threads],
        }
    }

    /// Number of workers in the pool.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Runs `job(worker_index)` on every worker and blocks until all of
    /// them finish, recording per-worker thread-CPU time.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic (after every worker has
    /// completed, so [`Slots`] teardown never races a live worker).
    pub fn broadcast<F>(&mut self, job: F)
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let job = Arc::new(job);
        for (worker, tx) in self.senders.iter().enumerate() {
            let job = Arc::clone(&job);
            tx.send(Box::new(move || job(worker)))
                .expect("scan worker alive");
        }
        drop(job);
        let mut first_panic = None;
        for _ in 0..self.senders.len() {
            let done = self.done.recv().expect("scan worker completion");
            self.cpu_ns[done.worker] = done.cpu_ns;
            if first_panic.is_none() {
                first_panic = done.panic;
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    }

    /// Thread-CPU nanoseconds each worker spent on the last
    /// [`ScanPool::broadcast`], indexed by worker.
    pub fn worker_cpu_ns(&self) -> &[u64] {
        &self.cpu_ns
    }

    /// The last broadcast's critical path: the maximum thread-CPU time
    /// over all workers — the wall time the broadcast would need on a
    /// host with at least [`ScanPool::threads`] free cores.
    pub fn critical_path_ns(&self) -> u64 {
        self.cpu_ns.iter().copied().max().unwrap_or(0)
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::thread;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn claims_cover_the_index_space_exactly_once() {
        let queue = WorkQueue::new(103, 4);
        let mut seen = vec![0u32; 103];
        while let Some(range) = queue.claim() {
            for i in range {
                seen[i as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1));
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let queue = WorkQueue::new(0, 4);
        assert_eq!(queue.claim(), None);
    }

    #[test]
    fn chunk_adapts_to_population_and_thread_count() {
        // Huge population: chunk saturates at MAX_CHUNK.
        assert_eq!(chunk_size(1_000_000, 8), MAX_CHUNK);
        // The inverted-bench shape: 105 sites / 8 threads must not leave
        // a worker without a claimable chunk (105/64 = 1-index chunks).
        assert_eq!(chunk_size(105, 8), 1);
        // Mid-size: total/(threads*8), between the clamps.
        assert_eq!(chunk_size(320, 8), 5);
        // Degenerate inputs stay sane.
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(10, 0), 1);
    }

    #[test]
    fn every_worker_claims_work_when_total_is_at_least_threads() {
        // The structural guarantee behind the adaptive chunk: whenever
        // total >= threads there are at least `threads` chunks, so no
        // worker can be idled by the claim granularity alone.
        for threads in [1usize, 2, 3, 4, 8, 16, 32] {
            for total in [threads as u64, 105, 1000, 52_471] {
                if total < threads as u64 {
                    continue;
                }
                let chunk = chunk_size(total, threads);
                let chunks = total.div_ceil(chunk);
                assert!(
                    chunks >= threads as u64,
                    "total={total} threads={threads}: only {chunks} chunks"
                );
            }
        }
        // And dynamically: with each of 8 workers claiming exactly once
        // from a 105-site queue (the shape that idled the 8th worker
        // under the fixed chunk), every claim must succeed.
        let queue = WorkQueue::new(105, 8);
        thread::scope(|scope| {
            for _ in 0..8 {
                let queue = &queue;
                scope.spawn(move |_| {
                    assert!(queue.claim().is_some(), "worker starved of a first chunk");
                });
            }
        })
        .expect("claimers do not panic");
    }

    #[test]
    fn exhausted_claims_do_not_mutate_the_counter() {
        let queue = WorkQueue::new(100, 4);
        while queue.claim().is_some() {}
        let settled = queue.next.load(Ordering::Relaxed);
        assert!(settled >= 100);
        for _ in 0..1000 {
            assert_eq!(queue.claim(), None);
        }
        assert_eq!(
            queue.next.load(Ordering::Relaxed),
            settled,
            "post-exhaustion claims crept the counter"
        );
        assert_eq!(queue.remaining(), 0);
    }

    #[test]
    fn sparse_exhausted_claims_do_not_mutate_the_counter() {
        let queue = SparseQueue::new((0..50).collect(), 4);
        while queue.claim().is_some() {}
        let settled = queue.next.load(Ordering::Relaxed);
        for _ in 0..1000 {
            assert!(queue.claim().is_none());
        }
        assert_eq!(
            queue.next.load(Ordering::Relaxed),
            settled,
            "post-exhaustion sparse claims crept the counter"
        );
    }

    #[test]
    fn sparse_claims_cover_the_list_exactly_once() {
        let indices: Vec<u64> = (0..217).filter(|i| i % 3 != 0).collect();
        let queue = SparseQueue::new(indices.clone(), 4);
        assert_eq!(queue.len(), indices.len());
        let mut claimed = Vec::new();
        while let Some(chunk) = queue.claim() {
            claimed.extend_from_slice(chunk);
        }
        assert_eq!(claimed, indices);
    }

    #[test]
    fn empty_sparse_queue_yields_nothing() {
        let queue = SparseQueue::new(Vec::new(), 4);
        assert!(queue.is_empty());
        assert_eq!(queue.claim(), None);
    }

    #[test]
    fn slots_collect_in_index_order_regardless_of_fill_order() {
        let slots = Slots::new(5);
        for i in [3usize, 0, 4, 1, 2] {
            slots.put(i, i * 10);
        }
        assert_eq!(slots.into_vec(), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn concurrent_workers_partition_the_space() {
        let queue = WorkQueue::new(1000, 4);
        let slots = Slots::new(1000);
        thread::scope(|scope| {
            for _ in 0..4 {
                let (queue, slots) = (&queue, &slots);
                scope.spawn(move |_| {
                    while let Some(range) = queue.claim() {
                        for i in range {
                            slots.put(i as usize, i * 2);
                        }
                    }
                });
            }
        })
        .expect("workers do not panic");
        let collected = slots.into_vec();
        assert!(collected
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as u64 * 2));
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn double_fill_panics() {
        let slots = Slots::new(1);
        slots.put(0, 1);
        slots.put(0, 2);
    }

    #[test]
    fn pool_broadcast_runs_every_worker_and_is_reusable() {
        let mut pool = ScanPool::new(4);
        assert_eq!(pool.threads(), 4);
        for _round in 0..3 {
            let hits = Arc::new(AtomicUsize::new(0));
            let seen = Arc::new(Slots::new(4));
            let (h, s) = (Arc::clone(&hits), Arc::clone(&seen));
            pool.broadcast(move |worker| {
                h.fetch_add(1, Ordering::Relaxed);
                s.put(worker, worker);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 4);
            let seen = Arc::into_inner(seen).expect("jobs dropped after broadcast");
            assert_eq!(seen.into_vec(), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn pool_reports_per_worker_cpu_time() {
        let mut pool = ScanPool::new(2);
        pool.broadcast(|worker| {
            // Worker 1 does measurable work; worker 0 does none.
            if worker == 1 {
                let mut acc = 0u64;
                for i in 0..3_000_000u64 {
                    acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
                }
                assert_ne!(acc, 1);
            }
        });
        let cpu = pool.worker_cpu_ns();
        assert_eq!(cpu.len(), 2);
        assert!(
            cpu[1] > cpu[0],
            "busy worker should out-spend the idle one: {cpu:?}"
        );
        assert_eq!(pool.critical_path_ns(), cpu[1].max(cpu[0]));
    }

    #[test]
    fn pool_worker_panic_propagates_but_pool_survives() {
        let mut pool = ScanPool::new(3);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|worker| {
                assert!(worker != 1, "deliberate test panic");
            });
        }));
        assert!(caught.is_err(), "worker panic must propagate");
        // The pool remains usable after a propagated panic.
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        pool.broadcast(move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }
}
