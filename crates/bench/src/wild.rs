//! Wild-scan generators: adoption (§V-B), Table IV, Tables V–VII, Figure
//! 2, the §V-D flow-control aggregates and the §V-E priority aggregates.

use std::collections::HashMap;
use std::fmt::Write as _;

use h2scope::probes::flow_control::SmallWindowOutcome;
use h2scope::{ProbeOutcome, ProbeStats, Reaction};
use webpop::Population;

use crate::scan::{headers_records, ScanRecord};
use crate::stats::{apportion, fmt_count, spark_cdf};

/// Scales one *independent* measured count back up to paper scale for
/// side-by-side comparison. Only for counters that don't share a column
/// total (adoption funnels, standalone aggregates) — rows that partition
/// a total go through [`upscaled_rows`], which keeps the column sum
/// exact.
fn upscaled(count: usize, scale: f64) -> u64 {
    (count as f64 / scale).round() as u64
}

/// Upscales a group of rows that partition (a subset of) `total` sites.
/// Independent per-row rounding lets the upscaled rows drift from the
/// upscaled total at scale < 1 (each row rounds on its own); instead the
/// rows — plus an implicit remainder row covering the sites the table
/// doesn't print — are apportioned against `upscaled(total)` by largest
/// remainder ([`apportion`]), so printed rows + unprinted remainder sum
/// exactly to the upscaled column total at every scale.
fn upscaled_rows(counts: &[u64], total: u64, scale: f64) -> Vec<u64> {
    let listed: u64 = counts.iter().sum();
    debug_assert!(listed <= total, "rows exceed their column total");
    let mut with_remainder = counts.to_vec();
    with_remainder.push(total.saturating_sub(listed));
    let mut shares = apportion(&with_remainder, upscaled(total as usize, scale));
    shares.pop();
    shares
}

/// Future work made runnable: a monthly adoption-trend series between
/// the two campaigns, each month a freshly generated and scanned
/// population (the paper: "we will perform regular scanning on popular
/// web sites to characterize how HTTP/2 and its features are adopted").
pub fn trend(scale: f64, threads: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Adoption trend — simulated monthly scans, Jul. 2016 → Jan. 2017"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<8}{:>10}{:>10}{:>10}{:>12}{:>12}",
        "month", "NPN", "ALPN", "HEADERS", "prio(last)", "push sites"
    )
    .unwrap();
    for (month, spec) in webpop::monthly_series().into_iter().enumerate() {
        let population = Population::new(spec, scale);
        let records = crate::scan::scan(&population, threads);
        let npn = records
            .iter()
            .filter(|r| r.report.negotiation.npn_h2)
            .count();
        let alpn = records
            .iter()
            .filter(|r| r.report.negotiation.alpn_h2)
            .count();
        let headers = records.iter().filter(|r| r.report.headers_received).count();
        let prio = records
            .iter()
            .filter(|r| r.report.priority.as_ref().is_some_and(|p| p.by_last_frame))
            .count();
        let push = records
            .iter()
            .filter(|r| r.report.push.as_ref().is_some_and(|p| p.supported))
            .count();
        writeln!(
            out,
            "  {:<8}{:>10}{:>10}{:>10}{:>12}{:>12}",
            format!("+{month}mo"),
            fmt_count(upscaled(npn, scale)),
            fmt_count(upscaled(alpn, scale)),
            fmt_count(upscaled(headers, scale)),
            fmt_count(upscaled(prio, scale)),
            push,
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (paper endpoints: NPN 49,334 → 78,714; HEADERS 44,390 → 64,299)"
    )
    .unwrap();
    out
}

/// §V-B1: ALPN/NPN adoption counts.
pub fn adoption(records: &[ScanRecord], population: &Population) -> String {
    let spec = population.spec();
    let scale = population.scale();
    let npn = records
        .iter()
        .filter(|r| r.report.negotiation.npn_h2)
        .count();
    let alpn = records
        .iter()
        .filter(|r| r.report.negotiation.alpn_h2)
        .count();
    let headers = records.iter().filter(|r| r.report.headers_received).count();
    let mut out = String::new();
    writeln!(out, "§V-B1 — Adoption ({}; scale {scale})", spec.label).unwrap();
    for (name, measured, paper) in [
        ("NPN h2 sites", npn, spec.npn_sites),
        ("ALPN h2 sites", alpn, spec.alpn_sites),
        ("HEADERS-returning sites", headers, spec.headers_sites),
    ] {
        writeln!(
            out,
            "  {name:<26} measured {:>9}  (paper-scale est. {:>9}, paper {:>9})",
            fmt_count(measured as u64),
            fmt_count(upscaled(measured, scale)),
            fmt_count(paper)
        )
        .unwrap();
    }
    out
}

/// §V-B2 / Table IV: server families by `server` response header.
pub fn table4(records: &[ScanRecord], population: &Population) -> String {
    let scale = population.scale();
    let mut counts: HashMap<String, usize> = HashMap::new();
    for record in headers_records(records) {
        let name = record
            .report
            .server_name
            .clone()
            .unwrap_or_else(|| "(no server header)".to_string());
        // Collapse versioned names into families the way the paper's
        // table does.
        let family = if name.starts_with("nginx") {
            "Nginx".to_string()
        } else if name.starts_with("Tengine/Aserver") {
            "Tengine/Aserver".to_string()
        } else if name.starts_with("Tengine") {
            "Tengine".to_string()
        } else if name.starts_with("LiteSpeed") {
            "Litespeed".to_string()
        } else if name.starts_with("IdeaWebServer") {
            "IdeaWebServer/v0.80".to_string()
        } else {
            name
        };
        *counts.entry(family).or_default() += 1;
    }
    let distinct = counts.len();
    let headers_total: u64 = counts.values().map(|&c| c as u64).sum();
    let mut rows: Vec<(String, usize)> = counts.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let paper: &[(&str, u64, u64)] = &[
        ("Litespeed", 12_637, 13_626),
        ("Nginx", 11_293, 27_394),
        ("GSE", 9_928, 9_929),
        ("Tengine", 2_535, 674),
        ("cloudflare-nginx", 1_197, 1_766),
        ("IdeaWebServer/v0.80", 1_128, 1_261),
        ("Tengine/Aserver", 0, 2_620),
    ];
    let second = population.spec().second;
    let mut out = String::new();
    writeln!(
        out,
        "TABLE IV — Top server families ({}; {} distinct names seen, paper {})",
        population.spec().label,
        distinct,
        if second { 345 } else { 223 }
    )
    .unwrap();
    writeln!(
        out,
        "  {:<22}{:>10}{:>14}{:>10}",
        "Server", "measured", "paper-scale", "paper"
    )
    .unwrap();
    // The listed families are disjoint slices of the headers-returning
    // sites, so their paper-scale column is apportioned against the
    // upscaled headers total rather than rounded row by row.
    let measured_rows: Vec<u64> = paper
        .iter()
        .map(|(name, _, _)| {
            rows.iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, c)| *c as u64)
        })
        .collect();
    let scaled_rows = upscaled_rows(&measured_rows, headers_total, scale);
    for (((name, exp1, exp2), measured), scaled) in
        paper.iter().zip(&measured_rows).zip(scaled_rows)
    {
        let paper_count = if second { *exp2 } else { *exp1 };
        writeln!(
            out,
            "  {:<22}{:>10}{:>14}{:>10}",
            name,
            fmt_count(*measured),
            fmt_count(scaled),
            fmt_count(paper_count)
        )
        .unwrap();
    }
    out
}

/// A generic SETTINGS distribution table (Tables V–VII).
fn settings_table(
    title: &str,
    records: &[ScanRecord],
    population: &Population,
    paper_rows: &[(Option<u32>, u64, u64)],
    extract: impl Fn(&ScanRecord) -> Option<u32>,
    render_value: impl Fn(Option<u32>) -> String,
) -> String {
    let scale = population.scale();
    let second = population.spec().second;
    let mut counts: HashMap<Option<u32>, usize> = HashMap::new();
    for record in headers_records(records) {
        *counts.entry(extract(record)).or_default() += 1;
    }
    let mut out = String::new();
    writeln!(out, "{title} ({})", population.spec().label).unwrap();
    writeln!(
        out,
        "  {:<16}{:>10}{:>14}{:>10}",
        "Value", "measured", "paper-scale", "paper"
    )
    .unwrap();
    // Each listed value is a distinct key, so the rows partition (a
    // subset of) the headers-returning sites: apportion the paper-scale
    // column so it stays consistent with the upscaled total.
    let total: u64 = counts.values().map(|&c| c as u64).sum();
    let measured_rows: Vec<u64> = paper_rows
        .iter()
        .map(|(value, _, _)| counts.get(value).copied().unwrap_or(0) as u64)
        .collect();
    let scaled_rows = upscaled_rows(&measured_rows, total, scale);
    for (((value, exp1, exp2), measured), scaled) in
        paper_rows.iter().zip(&measured_rows).zip(scaled_rows)
    {
        let paper_count = if second { *exp2 } else { *exp1 };
        writeln!(
            out,
            "  {:<16}{:>10}{:>14}{:>10}",
            render_value(*value),
            fmt_count(*measured),
            fmt_count(scaled),
            fmt_count(paper_count)
        )
        .unwrap();
    }
    out
}

/// Table V: `SETTINGS_INITIAL_WINDOW_SIZE` distribution.
pub fn table5(records: &[ScanRecord], population: &Population) -> String {
    let rows: Vec<(Option<u32>, u64, u64)> = webpop::marginals::INITIAL_WINDOW_SIZE
        .iter()
        .map(|vc| (vc.value, vc.exp1, vc.exp2))
        .collect();
    settings_table(
        "TABLE V — SETTINGS_INITIAL_WINDOW_SIZE",
        records,
        population,
        &rows,
        |r| r.report.settings.initial_window_size,
        |v| v.map_or("NULL".to_string(), |x| fmt_count(u64::from(x))),
    )
}

/// Table VI: `SETTINGS_MAX_FRAME_SIZE` distribution.
pub fn table6(records: &[ScanRecord], population: &Population) -> String {
    let rows: Vec<(Option<u32>, u64, u64)> = webpop::marginals::MAX_FRAME_SIZE
        .iter()
        .map(|vc| (vc.value, vc.exp1, vc.exp2))
        .collect();
    settings_table(
        "TABLE VI — SETTINGS_MAX_FRAME_SIZE",
        records,
        population,
        &rows,
        |r| r.report.settings.max_frame_size,
        |v| v.map_or("NULL".to_string(), |x| fmt_count(u64::from(x))),
    )
}

/// Table VII: `SETTINGS_MAX_HEADER_LIST_SIZE` distribution.
pub fn table7(records: &[ScanRecord], population: &Population) -> String {
    let rows: Vec<(Option<u32>, u64, u64)> = webpop::marginals::MAX_HEADER_LIST_SIZE
        .iter()
        .map(|vc| {
            let value = vc.value.map(|v| {
                if v == webpop::marginals::UNLIMITED {
                    u32::MAX
                } else {
                    v
                }
            });
            (value, vc.exp1, vc.exp2)
        })
        .collect();
    settings_table(
        "TABLE VII — SETTINGS_MAX_HEADER_LIST_SIZE",
        records,
        population,
        &rows,
        |r| r.report.settings.max_header_list_size,
        |v| match v {
            None => "NULL".to_string(),
            Some(u32::MAX) => "unlimited".to_string(),
            Some(x) => fmt_count(u64::from(x)),
        },
    )
}

/// Figure 2: CDF of `SETTINGS_MAX_CONCURRENT_STREAMS`.
pub fn fig2(records: &[ScanRecord], population: &Population) -> String {
    let samples: Vec<f64> = headers_records(records)
        .iter()
        .filter_map(|r| r.report.settings.max_concurrent_streams)
        .map(f64::from)
        .collect();
    let ticks: Vec<f64> = [
        1.0, 3.0, 10.0, 30.0, 100.0, 128.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 100_000.0,
    ]
    .to_vec();
    let mut out = String::new();
    writeln!(
        out,
        "FIGURE 2 — CDF of SETTINGS_MAX_CONCURRENT_STREAMS ({})",
        population.spec().label
    )
    .unwrap();
    for (x, f) in crate::stats::cdf_points(&samples, &ticks) {
        writeln!(out, "  x = {:>9}   F(x) = {:.3}", fmt_count(x as u64), f).unwrap();
    }
    writeln!(out, "  sparkline: {}", spark_cdf(&samples, &ticks)).unwrap();
    let below_100 = crate::stats::cdf_at(&samples, 99.0);
    writeln!(
        out,
        "  majority >= 100: {} (paper: \"the majority of web sites use a value >= 100\")",
        below_100 < 0.5
    )
    .unwrap();
    out
}

/// §V-D: the four flow-control aggregates.
pub fn flow_control(records: &[ScanRecord], population: &Population) -> String {
    let spec = population.spec();
    let scale = population.scale();
    let with_headers = headers_records(records);
    let mut out = String::new();
    writeln!(out, "§V-D — Flow control in the wild ({})", spec.label).unwrap();

    // V-D1: small window outcomes.
    let mut one_byte = 0;
    let mut zero_len = 0;
    let mut no_resp = 0;
    for r in &with_headers {
        match r.report.flow_control.as_ref().map(|fc| fc.small_window) {
            Some(SmallWindowOutcome::OneByteData) => one_byte += 1,
            Some(SmallWindowOutcome::ZeroLenData) => zero_len += 1,
            Some(SmallWindowOutcome::NoResponse | SmallWindowOutcome::HeadersOnly) => no_resp += 1,
            _ => {}
        }
    }
    writeln!(out, "  [V-D1] SETTINGS_INITIAL_WINDOW_SIZE = 1:").unwrap();
    let d1_scaled = upscaled_rows(
        &[one_byte, zero_len, no_resp],
        with_headers.len() as u64,
        scale,
    );
    for ((label, measured, paper), scaled) in [
        ("1-byte DATA", one_byte, spec.small_window_one_byte),
        ("zero-length DATA", zero_len, spec.small_window_zero_len),
        ("no response", no_resp, spec.small_window_no_response),
    ]
    .into_iter()
    .zip(d1_scaled)
    {
        writeln!(
            out,
            "    {label:<18} measured {:>8}  paper-scale {:>9}  paper {:>9}",
            fmt_count(measured),
            fmt_count(scaled),
            fmt_count(paper)
        )
        .unwrap();
    }
    // Under a fault campaign, break the "no response" row down by how it
    // was established: a probe that actually waited out its deadline
    // (timeout-derived) vs a server quirk observed on a healthy link
    // (quirk-derived). Absent faults every probe carries default stats
    // and this section — like the campaign itself — is byte-identical to
    // the pre-fault pipeline.
    let faulted = records
        .iter()
        .any(|r| r.report.probe != ProbeStats::default());
    if faulted {
        let timeout_derived = with_headers
            .iter()
            .filter(|r| {
                matches!(
                    r.report.flow_control.as_ref().map(|fc| fc.small_window),
                    Some(SmallWindowOutcome::NoResponse | SmallWindowOutcome::HeadersOnly)
                ) && matches!(
                    r.report.probe.outcome,
                    ProbeOutcome::Timeout | ProbeOutcome::GaveUpAfterRetries
                )
            })
            .count();
        // A timeout-derived row is by construction also a no-response
        // row, so the subtraction cannot underflow — but the previous
        // `saturating_sub` would have silently printed "0 quirk-derived"
        // if that invariant ever broke, hiding the accounting bug.
        // Surface it in the report instead.
        match no_resp.checked_sub(timeout_derived as u64) {
            Some(quirk_derived) => writeln!(
                out,
                "    no-response rows: {timeout_derived} timeout-derived (deadline expired), {quirk_derived} quirk-derived"
            )
            .unwrap(),
            None => writeln!(
                out,
                "    ACCOUNTING ERROR: {timeout_derived} timeout-derived rows exceed the {no_resp} no-response rows observed"
            )
            .unwrap(),
        }
    }

    // V-D2: HEADERS at a zero window.
    let compliant = with_headers
        .iter()
        .filter(|r| {
            r.report
                .flow_control
                .as_ref()
                .is_some_and(|fc| fc.headers_at_zero_window)
        })
        .count();
    writeln!(
        out,
        "  [V-D2] HEADERS under zero window: measured {:>8}  paper-scale {:>9}  paper {:>9}",
        fmt_count(compliant as u64),
        fmt_count(upscaled(compliant, scale)),
        fmt_count(spec.headers_at_zero_window)
    )
    .unwrap();

    // V-D3: zero window update reactions.
    let mut rst = 0;
    let mut goaway = 0;
    let mut debug = 0;
    let mut ignored = 0;
    for r in &with_headers {
        match r
            .report
            .flow_control
            .as_ref()
            .map(|fc| fc.zero_update_stream)
        {
            Some(Reaction::RstStream) => rst += 1,
            Some(Reaction::Goaway) => goaway += 1,
            Some(Reaction::GoawayWithDebug) => debug += 1,
            Some(Reaction::Ignored) => ignored += 1,
            None => {}
        }
    }
    writeln!(out, "  [V-D3] zero WINDOW_UPDATE on a stream:").unwrap();
    let d3_scaled = upscaled_rows(
        &[rst, ignored, goaway, debug],
        with_headers.len() as u64,
        scale,
    );
    for ((label, measured, paper), scaled) in [
        ("RST_STREAM", rst, spec.zero_update_stream.rst),
        ("ignored", ignored, spec.zero_update_stream.ignored),
        ("GOAWAY", goaway, spec.zero_update_stream.goaway),
        (
            "GOAWAY + debug",
            debug,
            spec.zero_update_stream.goaway_debug,
        ),
    ]
    .into_iter()
    .zip(d3_scaled)
    {
        writeln!(
            out,
            "    {label:<18} measured {:>8}  paper-scale {:>9}  paper {:>9}",
            fmt_count(measured),
            fmt_count(scaled),
            fmt_count(paper)
        )
        .unwrap();
    }
    let conn_goaway = with_headers
        .iter()
        .filter(|r| {
            r.report.flow_control.as_ref().is_some_and(|fc| {
                matches!(
                    fc.zero_update_conn,
                    Reaction::Goaway | Reaction::GoawayWithDebug
                )
            })
        })
        .count();
    writeln!(
        out,
        "    connection scope: {} GOAWAY of {} (paper: \"nearly all\")",
        fmt_count(conn_goaway as u64),
        fmt_count(with_headers.len() as u64)
    )
    .unwrap();

    // V-D4: large window update reactions.
    let large_conn = with_headers
        .iter()
        .filter(|r| {
            r.report.flow_control.as_ref().is_some_and(|fc| {
                matches!(
                    fc.large_update_conn,
                    Reaction::Goaway | Reaction::GoawayWithDebug
                )
            })
        })
        .count();
    let large_stream = with_headers
        .iter()
        .filter(|r| {
            r.report
                .flow_control
                .as_ref()
                .is_some_and(|fc| fc.large_update_stream == Reaction::RstStream)
        })
        .count();
    writeln!(out, "  [V-D4] window increment overflowing 2^31-1:").unwrap();
    for (label, measured, paper) in [
        (
            "connection GOAWAY",
            large_conn,
            spec.large_update_conn_goaway,
        ),
        (
            "stream RST_STREAM",
            large_stream,
            spec.large_update_stream_rst,
        ),
    ] {
        writeln!(
            out,
            "    {label:<18} measured {:>8}  paper-scale {:>9}  paper {:>9}",
            fmt_count(measured as u64),
            fmt_count(upscaled(measured, scale)),
            fmt_count(paper)
        )
        .unwrap();
    }
    out
}

/// §V-E: priority orderings and self-dependency reactions.
pub fn priority(records: &[ScanRecord], population: &Population) -> String {
    let spec = population.spec();
    let scale = population.scale();
    let with_headers = headers_records(records);
    let mut by_last = 0;
    let mut by_first = 0;
    let mut by_both = 0;
    let mut self_rst = 0;
    let mut self_goaway = 0;
    let mut self_ignore = 0;
    for r in &with_headers {
        if let Some(p) = &r.report.priority {
            if p.by_last_frame {
                by_last += 1;
            }
            if p.by_first_frame {
                by_first += 1;
            }
            if p.by_both {
                by_both += 1;
            }
            match p.self_dependency {
                Reaction::RstStream => self_rst += 1,
                Reaction::Goaway | Reaction::GoawayWithDebug => self_goaway += 1,
                Reaction::Ignored => self_ignore += 1,
            }
        }
    }
    let mut out = String::new();
    writeln!(
        out,
        "§V-E — Priority mechanism in the wild ({})",
        spec.label
    )
    .unwrap();
    for (label, measured, paper) in [
        ("last-DATA-frame rule", by_last, spec.priority_by_last),
        ("first-DATA-frame rule", by_first, spec.priority_by_first),
        ("both rules", by_both, spec.priority_by_both),
    ] {
        writeln!(
            out,
            "  {label:<22} measured {:>7}  paper-scale {:>8}  paper {:>8}",
            fmt_count(measured),
            fmt_count(upscaled(measured as usize, scale)),
            fmt_count(paper)
        )
        .unwrap();
    }
    writeln!(out, "  self-dependent stream reactions:").unwrap();
    let self_scaled = upscaled_rows(
        &[self_rst, self_goaway, self_ignore],
        with_headers.len() as u64,
        scale,
    );
    for ((label, measured, paper), scaled) in [
        ("RST_STREAM", self_rst, spec.self_dependency.rst),
        ("GOAWAY", self_goaway, spec.self_dependency.goaway),
        ("ignored", self_ignore, spec.self_dependency.ignored),
    ]
    .into_iter()
    .zip(self_scaled)
    {
        writeln!(
            out,
            "    {label:<20} measured {:>7}  paper-scale {:>8}  paper {:>8}",
            fmt_count(measured),
            fmt_count(scaled),
            fmt_count(paper)
        )
        .unwrap();
    }
    out
}

/// §V-F (counts only; Figure 3 timing lives in `figures`).
pub fn push_adoption(records: &[ScanRecord], population: &Population) -> String {
    let spec = population.spec();
    let with_headers = headers_records(records);
    let push_sites: Vec<&&ScanRecord> = with_headers
        .iter()
        .filter(|r| r.report.push.as_ref().is_some_and(|p| p.supported))
        .collect();
    let mut out = String::new();
    writeln!(out, "§V-F — Server push in the wild ({})", spec.label).unwrap();
    writeln!(
        out,
        "  sites pushing on the front page: measured {} (paper {} at full scale)",
        push_sites.len(),
        spec.push_sites
    )
    .unwrap();
    for record in push_sites.iter().take(20) {
        let push = record.report.push.as_ref().expect("filtered");
        writeln!(
            out,
            "    {:<34} {} promised objects, {} pushed octets",
            record.report.authority,
            push.promised_paths.len(),
            fmt_count(push.pushed_octets)
        )
        .unwrap();
    }
    out
}

/// Figures 4/5: HPACK compression ratio CDFs for the top five families.
pub fn hpack_figure(records: &[ScanRecord], population: &Population) -> String {
    use webpop::Family;
    let spec = population.spec();
    let figure = if spec.second { "FIGURE 5" } else { "FIGURE 4" };
    let mut out = String::new();
    writeln!(
        out,
        "{figure} — HPACK compression ratio CDFs by server family ({})",
        spec.label
    )
    .unwrap();
    let families = [
        (Family::Gse, "GSE"),
        (Family::Nginx, "nginx"),
        (Family::Tengine, "Tengine"),
        (Family::Litespeed, "litespeed"),
        (Family::IdeaWeb, "ideaweb"),
    ];
    let ticks: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut kept_total = 0usize;
    for (family, label) in families {
        let mut ratios: Vec<f64> = Vec::new();
        let mut filtered = 0usize;
        for r in headers_records(records) {
            if r.family != family {
                continue;
            }
            if let Some(h) = &r.report.hpack {
                if h.filtered() {
                    filtered += 1; // the paper's r > 1 cookie filter
                } else {
                    ratios.push(h.ratio);
                }
            }
        }
        kept_total += ratios.len();
        if ratios.is_empty() {
            writeln!(out, "  {label:<10} (no sites at this scale)").unwrap();
            continue;
        }
        writeln!(
            out,
            "  {label:<10} n={:<5} filtered(r>1)={:<4} median={:.3}  P(r<0.3)={:.2}  P(r=1)={:.2}  cdf {}",
            ratios.len(),
            filtered,
            crate::stats::quantile(&ratios, 0.5),
            crate::stats::cdf_at(&ratios, 0.3),
            ratios.iter().filter(|&&r| (r - 1.0).abs() < 1e-9).count() as f64
                / ratios.len() as f64,
            spark_cdf(&ratios, &ticks),
        )
        .unwrap();
    }
    writeln!(
        out,
        "  kept sites across families: {} (paper kept {} of all families)",
        fmt_count(kept_total as u64),
        fmt_count(spec.hpack_sites_kept)
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use webpop::ExperimentSpec;

    /// Scales exercised by the consistency tests: the paper's own 1.0
    /// plus the fractional scales where independent per-row rounding
    /// used to drift from the rounded column total.
    const SCALES: [f64; 7] = [1.0, 0.5, 0.25, 0.1, 0.04, 0.01, 0.003];

    /// First number after `key` on the first line of `text` containing
    /// `marker`, with thousands separators stripped.
    fn num_after(text: &str, marker: &str, key: &str) -> u64 {
        let line = text
            .lines()
            .find(|l| l.contains(marker))
            .unwrap_or_else(|| panic!("no line matching {marker:?}"));
        let rest = line.split(key).nth(1).unwrap_or_else(|| {
            panic!("no {key:?} on line {line:?}");
        });
        let token = rest.split_whitespace().next().expect("value after key");
        token.replace(',', "").parse().expect("numeric token")
    }

    /// Every value in the table's paper-scale column, in row order.
    fn scaled_column(table: &str) -> Vec<u64> {
        table
            .lines()
            .skip(2) // title + column header
            .filter_map(|l| {
                let mut fields = l.split_whitespace().rev();
                let _paper = fields.next()?;
                Some(fields.next()?.replace(',', "").parse().expect("count"))
            })
            .collect()
    }

    #[test]
    fn upscaled_rows_sum_exactly_when_rows_partition_the_total() {
        let counts = [317u64, 204, 96, 83];
        let total: u64 = counts.iter().sum();
        for scale in SCALES {
            let shares = upscaled_rows(&counts, total, scale);
            assert_eq!(
                shares.iter().sum::<u64>(),
                upscaled(total as usize, scale),
                "scale {scale}"
            );
        }
    }

    #[test]
    fn upscaled_rows_leave_room_for_the_unlisted_remainder() {
        let counts = [317u64, 204, 96];
        let total = 700u64; // 83 sites not listed by the table
        for scale in SCALES {
            let shares = upscaled_rows(&counts, total, scale);
            let listed: u64 = shares.iter().sum();
            let column_total = upscaled(total as usize, scale);
            assert!(listed <= column_total, "scale {scale}");
            // The implicit remainder row absorbs exactly the rest.
            let full = upscaled_rows(&[317, 204, 96, 83], total, scale);
            assert_eq!(full.iter().sum::<u64>(), column_total, "scale {scale}");
            // Apportionment stays within one unit of naive rounding.
            for (share, &count) in shares.iter().zip(&counts) {
                let naive = upscaled(count as usize, scale);
                assert!(share.abs_diff(naive) <= 1, "scale {scale}");
            }
        }
    }

    #[test]
    fn settings_table_scaled_column_sums_to_the_upscaled_headers_total() {
        // Table V's rows cover every generated value, so its paper-scale
        // column must sum to the upscaled headers total exactly — the
        // consistency independent per-row rounding could not guarantee.
        for scale in [0.05, 0.01, 0.003] {
            let population = Population::new(ExperimentSpec::first(), scale);
            let records = crate::scan::scan(&population, 2);
            let headers = headers_records(&records).len();
            let column = scaled_column(&table5(&records, &population));
            assert_eq!(
                column.iter().sum::<u64>(),
                upscaled(headers, scale),
                "scale {scale}"
            );
        }
    }

    #[test]
    fn faulted_no_response_split_accounts_for_every_row() {
        let population = Population::new(ExperimentSpec::first(), 0.01);
        let records = crate::scan::scan_faulted(&population, 2, h2fault::FaultProfile::flaky(), 7);
        let report = flow_control(&records, &population);
        assert!(
            !report.contains("ACCOUNTING ERROR"),
            "timeout-derived rows exceeded observed no-response rows:\n{report}"
        );
        assert!(
            report.contains("no-response rows:"),
            "faulted split missing"
        );
        let no_resp = num_after(&report, "no response", "measured");
        let timeout_derived = num_after(&report, "no-response rows:", "no-response rows:");
        let quirk_derived = num_after(&report, "no-response rows:", "(deadline expired),");
        assert_eq!(timeout_derived + quirk_derived, no_resp);
    }
}
