//! Per-thread CPU-time measurement for the scaling benchmarks.
//!
//! Wall-clock time cannot show parallel speedup on a CPU-starved host (a
//! 1-core CI container runs 8 workers exactly as fast as 1), so the scan
//! benchmarks also measure each worker's *thread CPU time* — the
//! scheduler-independent cost of the work the worker actually executed.
//! The campaign's critical path is the maximum over workers, which is the
//! wall time the campaign would take on a machine with enough cores: it
//! punishes serialization, load imbalance, and spin contention, the
//! failure modes a scan scheduler can actually regress on.
//!
//! On Linux this reads `CLOCK_THREAD_CPUTIME_ID` directly (the workspace
//! vendors no libc crate, so the one syscall wrapper is declared by
//! hand); elsewhere it degrades to a process-wide monotonic clock, which
//! keeps the benchmarks running but conflates CPU time with wall time.

#[cfg(target_os = "linux")]
mod imp {
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }

    extern "C" {
        fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
    }

    /// `CLOCK_THREAD_CPUTIME_ID` from `<time.h>`: CPU time consumed by
    /// the calling thread only.
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    pub fn thread_cpu_ns() -> u64 {
        let mut ts = Timespec { sec: 0, nsec: 0 };
        // SAFETY: `ts` is a valid, exclusively borrowed Timespec whose
        // layout matches the kernel's struct timespec on 64-bit Linux;
        // clock_gettime writes it and touches nothing else.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            return 0;
        }
        u64::try_from(ts.sec)
            .unwrap_or(0)
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::try_from(ts.nsec).unwrap_or(0))
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    pub fn thread_cpu_ns() -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        u64::try_from(Instant::now().duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Nanoseconds of CPU time consumed by the calling thread so far.
///
/// Monotonic within a thread; values from different threads are
/// independent clocks and only their *deltas* are comparable.
pub fn thread_cpu_ns() -> u64 {
    imp::thread_cpu_ns()
}

/// How many hardware threads the host actually offers — recorded next to
/// every scaling curve so a flat wall-clock line on a 1-core container is
/// readable as a host limit, not an engine regression.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_time_is_monotonic_and_advances_under_load() {
        let start = thread_cpu_ns();
        // Burn a visible amount of CPU; volatile-free spin that the
        // optimizer cannot delete because the sum is asserted on.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        assert_ne!(acc, 1); // keep the loop observable
        let end = thread_cpu_ns();
        assert!(end >= start, "thread CPU clock went backwards");
        assert!(end > start, "2M multiply-adds consumed no measurable CPU");
    }

    #[test]
    fn other_threads_do_not_charge_this_thread() {
        #[cfg(target_os = "linux")]
        {
            let before = thread_cpu_ns();
            std::thread::spawn(|| {
                let mut acc = 1u64;
                for i in 0..4_000_000u64 {
                    acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i);
                }
                assert_ne!(acc, 1);
            })
            .join()
            .expect("spinner thread");
            let after = thread_cpu_ns();
            // The spinner burned ~milliseconds; our own clock should have
            // advanced far less (just the join bookkeeping).
            assert!(
                after.saturating_sub(before) < 50_000_000,
                "thread clock charged for another thread's work: {} ns",
                after - before
            );
        }
    }

    #[test]
    fn host_cpus_is_positive() {
        assert!(host_cpus() >= 1);
    }
}
