//! `repro` — regenerates every table and figure of "Are HTTP/2 Servers
//! Ready Yet?" (ICDCS 2017) against the simulated testbed and population.
//!
//! ```text
//! repro [COMMAND] [--scale S] [--exp 1|2|both] [--threads N] [--loads L]
//!                 [--faults PROFILE] [--seed N]
//!
//! COMMANDS
//!   table3       Table III  testbed characterization matrix
//!   concurrency  §V-A       MAX_CONCURRENT_STREAMS enforcement
//!   ablation     §III-C     naive ordering check vs Algorithm 1
//!   trend        future wk  simulated monthly adoption series
//!   adoption     §V-B1      NPN/ALPN/HEADERS adoption counts
//!   table4       Table IV   server families
//!   table5       Table V    SETTINGS_INITIAL_WINDOW_SIZE
//!   table6       Table VI   SETTINGS_MAX_FRAME_SIZE
//!   table7       Table VII  SETTINGS_MAX_HEADER_LIST_SIZE
//!   fig2         Figure 2   MAX_CONCURRENT_STREAMS CDF
//!   flowcontrol  §V-D       flow-control aggregates
//!   priority     §V-E       priority aggregates
//!   push         §V-F       push adoption
//!   fig3         Figure 3   page-load time with/without push
//!   fig4         Figure 4/5 HPACK ratio CDFs per family
//!   fig6         Figure 6   RTT by four estimators
//!   all          everything above (default)
//!   diff A B     longitudinal diff of two finalized campaign records
//!                (regenerates the Jul. 2016 → Jan. 2017 comparison from
//!                disk alone — no rescan)
//!   abuse        §VI        mixed benign+attack campaign: robustness
//!                matrix, per-vector defense counts, detector confusion
//!                matrix; writes ABUSE_campaign.json (schema h2attack-v1)
//!
//! ABUSE CAMPAIGNS
//!   --vectors A,B,...  restrict the attack rotation (names: rapid-reset,
//!                      continuation-flood, slow-read, slow-post,
//!                      settings-flood, table-thrash, priority-churn;
//!                      default all)
//!   --mix B:A          benign:attack traffic shares (default 3:1)
//!
//! FAULT CAMPAIGNS
//!   --faults PROFILE   scan under impairments: none, lossy, jittery,
//!                      flaky, byzantine, chaos (default none)
//!   --seed N           campaign seed; same seed replays the exact same
//!                      faults at any thread count (default 0)
//!
//! CAMPAIGN RECORDS
//!   --record PATH      persist every scanned site to an append-only
//!                      campaign record as it finishes; a completed
//!                      campaign finalizes the record (canonical order +
//!                      checksum trailer). With --exp both the experiment
//!                      name is inserted before the extension.
//!   --resume PATH      validate a partial record against this campaign,
//!                      preload its rows and scan only the missing sites;
//!                      the finalized record is byte-identical to an
//!                      uninterrupted run at any thread count
//!   --kill-after N     (testing) simulate a crash: stop appending after
//!                      N durable rows and exit with status 3, leaving
//!                      the partial record behind for --resume
//!
//! OBSERVABILITY
//!   --metrics          record campaign metrics (frame counters, wire
//!                      bytes, latency histograms); prints a table after
//!                      the experiments and writes OBS_campaign.json.
//!                      Everything above the metrics table stays
//!                      byte-identical to a --metrics-less run.
//!   --trace-sites N    additionally keep frame-level event traces for
//!                      the first N sites of each experiment (default 0)
//!   --out-dir DIR      route OBS_campaign.json and relative --record /
//!                      --resume / diff paths into DIR (created if absent)
//! ```

use std::path::{Path, PathBuf};
use std::time::Instant;

use h2fault::{FaultProfile, KillPoint};
use h2obs::Obs;
use h2ready_bench::scan::RecordedScan;
use h2ready_bench::{abuse, figures, scan, tables, wild};
use webpop::{ExperimentSpec, Population};

struct Options {
    command: String,
    command_args: Vec<String>,
    scale: f64,
    experiments: Vec<ExperimentSpec>,
    threads: usize,
    loads: usize,
    faults: FaultProfile,
    seed: u64,
    metrics: bool,
    trace_sites: u64,
    vectors: Vec<h2attack::AttackVector>,
    mix: (u64, u64),
    record: Option<PathBuf>,
    resume: Option<PathBuf>,
    kill_after: Option<u64>,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut positionals: Vec<String> = Vec::new();
    let mut scale = 0.02;
    let mut experiments = vec![ExperimentSpec::first(), ExperimentSpec::second()];
    let mut threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut loads = 10;
    let mut faults = FaultProfile::none();
    let mut seed = 0u64;
    let mut metrics = false;
    let mut trace_sites = 0u64;
    let mut vectors = h2attack::AttackVector::ALL.to_vec();
    let mut mix = (3u64, 1u64);
    let mut record: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut kill_after: Option<u64> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale needs a number in (0, 1]");
                    std::process::exit(2);
                });
            }
            "--exp" => match args.next().as_deref() {
                Some("1") => experiments = vec![ExperimentSpec::first()],
                Some("2") => experiments = vec![ExperimentSpec::second()],
                Some("both") | None => {}
                Some(other) => {
                    eprintln!("unknown experiment {other}; use 1, 2 or both");
                    std::process::exit(2);
                }
            },
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).unwrap_or(threads);
            }
            "--loads" => {
                loads = args.next().and_then(|v| v.parse().ok()).unwrap_or(loads);
            }
            "--faults" => {
                let name = args.next().unwrap_or_default();
                faults = FaultProfile::parse(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown fault profile {name:?}; known profiles: {}",
                        FaultProfile::names().join(", ")
                    );
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an unsigned integer");
                    std::process::exit(2);
                });
            }
            "--metrics" => metrics = true,
            "--trace-sites" => {
                trace_sites = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--trace-sites needs an unsigned integer");
                    std::process::exit(2);
                });
                metrics = true;
            }
            "--vectors" => {
                let list = args.next().unwrap_or_default();
                vectors = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|name| {
                        h2attack::AttackVector::parse(name.trim()).unwrap_or_else(|| {
                            eprintln!(
                                "unknown attack vector {name:?}; known vectors: {}",
                                h2attack::AttackVector::ALL
                                    .iter()
                                    .map(|v| v.name())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            );
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if vectors.is_empty() {
                    eprintln!("--vectors needs at least one vector name");
                    std::process::exit(2);
                }
            }
            "--mix" => {
                let spec = args.next().unwrap_or_default();
                let parsed = spec
                    .split_once(':')
                    .and_then(|(b, a)| Some((b.trim().parse().ok()?, a.trim().parse().ok()?)));
                mix = match parsed {
                    Some((b, a)) if b + a > 0 => (b, a),
                    _ => {
                        eprintln!("--mix needs BENIGN:ATTACK shares, e.g. 3:1");
                        std::process::exit(2);
                    }
                };
            }
            "--record" => {
                record = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--record needs a file path");
                    std::process::exit(2);
                })));
            }
            "--resume" => {
                resume = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--resume needs a file path");
                    std::process::exit(2);
                })));
            }
            "--kill-after" => {
                kill_after = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--kill-after needs an unsigned row count");
                    std::process::exit(2);
                }));
            }
            "--out-dir" => {
                out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out-dir needs a directory path");
                    std::process::exit(2);
                })));
            }
            "--help" | "-h" => {
                println!("see crate docs: repro [COMMAND] [--scale S] [--exp 1|2|both] [--threads N] [--loads L] [--faults PROFILE] [--seed N] [--metrics] [--trace-sites N] [--record PATH | --resume PATH] [--kill-after N] [--out-dir DIR] | repro diff A B | repro abuse [--vectors A,B] [--mix B:A]");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => positionals.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if record.is_some() && resume.is_some() {
        eprintln!("--record and --resume are mutually exclusive; --resume already appends to (and finalizes) its record");
        std::process::exit(2);
    }
    if kill_after.is_some() && record.is_none() && resume.is_none() {
        eprintln!("--kill-after only makes sense with --record or --resume (it crashes a persisted campaign)");
        std::process::exit(2);
    }
    let mut positionals = positionals.into_iter();
    Options {
        command: positionals.next().unwrap_or_else(|| "all".to_string()),
        command_args: positionals.collect(),
        scale,
        experiments,
        threads,
        loads,
        faults,
        seed,
        metrics,
        trace_sites,
        vectors,
        mix,
        record,
        resume,
        kill_after,
        out_dir,
    }
}

/// Routes a relative path through `--out-dir` (absolute paths and runs
/// without `--out-dir` are untouched).
fn resolve(out_dir: Option<&Path>, path: &Path) -> PathBuf {
    match out_dir {
        Some(dir) if path.is_relative() => dir.join(path),
        _ => path.to_path_buf(),
    }
}

/// The record path for one experiment: with a single experiment the
/// user's path is used as-is; with several, the experiment name is
/// inserted before the extension so each campaign gets its own record.
fn per_experiment_path(base: &Path, spec_name: &str, multi: bool) -> PathBuf {
    if !multi {
        return base.to_path_buf();
    }
    match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => base.with_extension(format!("{spec_name}.{ext}")),
        None => base.with_extension(spec_name),
    }
}

/// `repro diff A B`: regenerate the longitudinal comparison from two
/// finalized campaign records, no rescan.
fn run_diff(options: &Options) -> ! {
    let [a, b] = match options.command_args.as_slice() {
        [a, b] => [a, b],
        other => {
            eprintln!("diff needs exactly two record paths, got {}", other.len());
            std::process::exit(2);
        }
    };
    let out_dir = options.out_dir.as_deref();
    let mut stored = Vec::new();
    for path in [a, b] {
        let path = resolve(out_dir, Path::new(path));
        match h2campaign::read(&path) {
            Ok(record) if record.finalized => stored.push(record),
            Ok(_) => {
                eprintln!(
                    "{} is a partial record (no end| trailer); finish the campaign with --resume before diffing",
                    path.display()
                );
                std::process::exit(2);
            }
            Err(err) => {
                eprintln!("cannot read {}: {err}", path.display());
                std::process::exit(2);
            }
        }
    }
    let diff = h2campaign::diff_records(&stored[0], &stored[1]);
    print!("{}", h2campaign::render_diff(&diff));
    std::process::exit(0);
}

/// `repro abuse`: the §VI mixed benign+attack campaign — robustness
/// matrix, per-vector defense counts, detector confusion matrix, plus
/// the machine-readable `ABUSE_campaign.json`.
fn run_abuse(options: &Options) -> ! {
    let abuse_options = abuse::AbuseOptions {
        vectors: options.vectors.clone(),
        benign_share: options.mix.0,
        attack_share: options.mix.1,
        seed: options.seed,
        scale: options.scale,
        threads: options.threads,
    };
    println!(
        "repro: command=abuse scale={} threads={} seed={} mix={}:{}\n",
        abuse_options.scale,
        abuse_options.threads,
        abuse_options.seed,
        abuse_options.benign_share,
        abuse_options.attack_share
    );
    let started = Instant::now();
    let campaign = abuse::run_campaign(&abuse_options);
    eprintln!(
        "[abuse] ran {} connections in {:.1}s",
        campaign.outcomes.len(),
        started.elapsed().as_secs_f64()
    );
    println!("{}", abuse::render_report(&campaign));
    let path = resolve(options.out_dir.as_deref(), Path::new("ABUSE_campaign.json"));
    match std::fs::write(&path, abuse::render_json(&abuse_options, &campaign)) {
        Ok(()) => eprintln!("[abuse] wrote {}", path.display()),
        Err(err) => {
            eprintln!("[abuse] failed to write {}: {err}", path.display());
            std::process::exit(2);
        }
    }
    std::process::exit(0);
}

fn needs_scan(command: &str) -> bool {
    matches!(
        command,
        "all"
            | "adoption"
            | "table4"
            | "table5"
            | "table6"
            | "table7"
            | "fig2"
            | "flowcontrol"
            | "priority"
            | "push"
            | "fig4"
            | "fig5"
    )
}

fn main() {
    let options = parse_args();
    let command = options.command.as_str();
    if let Some(dir) = &options.out_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out-dir {}: {err}", dir.display());
            std::process::exit(2);
        }
    }
    if command == "diff" {
        run_diff(&options);
    }
    if command == "abuse" {
        run_abuse(&options);
    }
    println!(
        "repro: command={command} scale={} threads={}\n",
        options.scale, options.threads
    );

    if matches!(command, "table3" | "all") {
        println!("{}", tables::table3());
    }
    if matches!(command, "concurrency" | "all") {
        println!("{}", tables::concurrency_experiment());
    }
    if matches!(command, "ablation" | "all") {
        println!("{}", tables::priority_ablation());
    }
    if command == "trend" {
        println!("{}", wild::trend(options.scale, options.threads));
    }

    let obs = if options.metrics {
        Obs::campaign(options.trace_sites)
    } else {
        Obs::off()
    };

    let record_base = options.record.as_deref().or(options.resume.as_deref());
    for spec in &options.experiments {
        let population = Population::new(spec.clone(), options.scale);
        let records = if needs_scan(command) || record_base.is_some() {
            let started = Instant::now();
            let records = if let Some(base) = record_base {
                let path = resolve(
                    options.out_dir.as_deref(),
                    &per_experiment_path(base, spec.name, options.experiments.len() > 1),
                );
                let outcome = scan::scan_recorded(
                    &population,
                    options.threads,
                    options.faults,
                    options.seed,
                    &obs,
                    &path,
                    options.resume.is_some(),
                    options.kill_after.map(KillPoint::after),
                );
                match outcome {
                    Ok(RecordedScan::Complete { records, resumed }) => {
                        if resumed > 0 {
                            eprintln!(
                                "[{}] resumed {resumed} sites from {}",
                                spec.name,
                                path.display()
                            );
                        }
                        eprintln!("[{}] finalized record {}", spec.name, path.display());
                        records
                    }
                    Ok(RecordedScan::Killed { rows }) => {
                        eprintln!(
                            "[{}] simulated crash: {rows} durable rows left in partial record {}",
                            spec.name,
                            path.display()
                        );
                        std::process::exit(3);
                    }
                    Err(err) => {
                        eprintln!("[{}] campaign record error: {err}", spec.name);
                        std::process::exit(2);
                    }
                }
            } else {
                scan::scan_faulted_with_obs(
                    &population,
                    options.threads,
                    options.faults,
                    options.seed,
                    &obs,
                )
            };
            eprintln!(
                "[{}] scanned {} h2 sites in {:.1}s",
                spec.name,
                records.len(),
                started.elapsed().as_secs_f64()
            );
            if !options.faults.is_none() {
                println!(
                    "[{} faults={} seed={}]\n{}",
                    spec.name,
                    options.faults.name,
                    options.seed,
                    scan::fault_summary(&records)
                );
            }
            records
        } else {
            Vec::new()
        };

        if matches!(command, "adoption" | "all") {
            println!("{}", wild::adoption(&records, &population));
        }
        if matches!(command, "table4" | "all") {
            println!("{}", wild::table4(&records, &population));
        }
        if matches!(command, "table5" | "all") {
            println!("{}", wild::table5(&records, &population));
        }
        if matches!(command, "table6" | "all") {
            println!("{}", wild::table6(&records, &population));
        }
        if matches!(command, "table7" | "all") {
            println!("{}", wild::table7(&records, &population));
        }
        if matches!(command, "fig2" | "all") {
            println!("{}", wild::fig2(&records, &population));
        }
        if matches!(command, "flowcontrol" | "all") {
            println!("{}", wild::flow_control(&records, &population));
        }
        if matches!(command, "priority" | "all") {
            println!("{}", wild::priority(&records, &population));
        }
        if matches!(command, "push" | "all") {
            println!("{}", wild::push_adoption(&records, &population));
        }
        if matches!(command, "fig4" | "fig5" | "all") {
            println!("{}", wild::hpack_figure(&records, &population));
        }
        if matches!(command, "fig3" | "all") {
            println!("{}", figures::fig3(&population, options.loads));
        }
        if matches!(command, "fig6" | "all") {
            println!("{}", figures::fig6(&population, 60, 10));
        }
    }

    // The metrics table is the last stdout section, below the marker, so
    // consumers can strip it and diff the experiment output byte-for-byte
    // against a --metrics-less run.
    if let Some(snapshot) = obs.snapshot() {
        println!("{}", h2obs::render_table(&snapshot));
        let path = resolve(options.out_dir.as_deref(), Path::new("OBS_campaign.json"));
        match std::fs::write(&path, h2obs::render_json(&snapshot)) {
            Ok(()) => eprintln!("[obs] wrote {}", path.display()),
            Err(err) => eprintln!("[obs] failed to write {}: {err}", path.display()),
        }
    }
}
