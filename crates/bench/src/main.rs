//! `repro` — regenerates every table and figure of "Are HTTP/2 Servers
//! Ready Yet?" (ICDCS 2017) against the simulated testbed and population.
//!
//! ```text
//! repro [COMMAND] [--scale S] [--exp 1|2|both] [--threads N] [--loads L]
//!                 [--faults PROFILE] [--seed N]
//!
//! COMMANDS
//!   table3       Table III  testbed characterization matrix
//!   concurrency  §V-A       MAX_CONCURRENT_STREAMS enforcement
//!   ablation     §III-C     naive ordering check vs Algorithm 1
//!   trend        future wk  simulated monthly adoption series
//!   adoption     §V-B1      NPN/ALPN/HEADERS adoption counts
//!   table4       Table IV   server families
//!   table5       Table V    SETTINGS_INITIAL_WINDOW_SIZE
//!   table6       Table VI   SETTINGS_MAX_FRAME_SIZE
//!   table7       Table VII  SETTINGS_MAX_HEADER_LIST_SIZE
//!   fig2         Figure 2   MAX_CONCURRENT_STREAMS CDF
//!   flowcontrol  §V-D       flow-control aggregates
//!   priority     §V-E       priority aggregates
//!   push         §V-F       push adoption
//!   fig3         Figure 3   page-load time with/without push
//!   fig4         Figure 4/5 HPACK ratio CDFs per family
//!   fig6         Figure 6   RTT by four estimators
//!   all          everything above (default)
//!
//! FAULT CAMPAIGNS
//!   --faults PROFILE   scan under impairments: none, lossy, jittery,
//!                      flaky, byzantine, chaos (default none)
//!   --seed N           campaign seed; same seed replays the exact same
//!                      faults at any thread count (default 0)
//!
//! OBSERVABILITY
//!   --metrics          record campaign metrics (frame counters, wire
//!                      bytes, latency histograms); prints a table after
//!                      the experiments and writes OBS_campaign.json.
//!                      Everything above the metrics table stays
//!                      byte-identical to a --metrics-less run.
//!   --trace-sites N    additionally keep frame-level event traces for
//!                      the first N sites of each experiment (default 0)
//! ```

use std::time::Instant;

use h2fault::FaultProfile;
use h2obs::Obs;
use h2ready_bench::{figures, scan, tables, wild};
use webpop::{ExperimentSpec, Population};

struct Options {
    command: String,
    scale: f64,
    experiments: Vec<ExperimentSpec>,
    threads: usize,
    loads: usize,
    faults: FaultProfile,
    seed: u64,
    metrics: bool,
    trace_sites: u64,
}

fn parse_args() -> Options {
    let mut command = "all".to_string();
    let mut scale = 0.02;
    let mut experiments = vec![ExperimentSpec::first(), ExperimentSpec::second()];
    let mut threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut loads = 10;
    let mut faults = FaultProfile::none();
    let mut seed = 0u64;
    let mut metrics = false;
    let mut trace_sites = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale needs a number in (0, 1]");
                    std::process::exit(2);
                });
            }
            "--exp" => match args.next().as_deref() {
                Some("1") => experiments = vec![ExperimentSpec::first()],
                Some("2") => experiments = vec![ExperimentSpec::second()],
                Some("both") | None => {}
                Some(other) => {
                    eprintln!("unknown experiment {other}; use 1, 2 or both");
                    std::process::exit(2);
                }
            },
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).unwrap_or(threads);
            }
            "--loads" => {
                loads = args.next().and_then(|v| v.parse().ok()).unwrap_or(loads);
            }
            "--faults" => {
                let name = args.next().unwrap_or_default();
                faults = FaultProfile::parse(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown fault profile {name:?}; known profiles: {}",
                        FaultProfile::names().join(", ")
                    );
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an unsigned integer");
                    std::process::exit(2);
                });
            }
            "--metrics" => metrics = true,
            "--trace-sites" => {
                trace_sites = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--trace-sites needs an unsigned integer");
                    std::process::exit(2);
                });
                metrics = true;
            }
            "--help" | "-h" => {
                println!("see crate docs: repro [COMMAND] [--scale S] [--exp 1|2|both] [--threads N] [--loads L] [--faults PROFILE] [--seed N] [--metrics] [--trace-sites N]");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => command = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Options {
        command,
        scale,
        experiments,
        threads,
        loads,
        faults,
        seed,
        metrics,
        trace_sites,
    }
}

fn needs_scan(command: &str) -> bool {
    matches!(
        command,
        "all"
            | "adoption"
            | "table4"
            | "table5"
            | "table6"
            | "table7"
            | "fig2"
            | "flowcontrol"
            | "priority"
            | "push"
            | "fig4"
            | "fig5"
    )
}

fn main() {
    let options = parse_args();
    let command = options.command.as_str();
    println!(
        "repro: command={command} scale={} threads={}\n",
        options.scale, options.threads
    );

    if matches!(command, "table3" | "all") {
        println!("{}", tables::table3());
    }
    if matches!(command, "concurrency" | "all") {
        println!("{}", tables::concurrency_experiment());
    }
    if matches!(command, "ablation" | "all") {
        println!("{}", tables::priority_ablation());
    }
    if command == "trend" {
        println!("{}", wild::trend(options.scale, options.threads));
    }

    let obs = if options.metrics {
        Obs::campaign(options.trace_sites)
    } else {
        Obs::off()
    };

    for spec in &options.experiments {
        let population = Population::new(spec.clone(), options.scale);
        let records = if needs_scan(command) {
            let started = Instant::now();
            let records = scan::scan_faulted_with_obs(
                &population,
                options.threads,
                options.faults,
                options.seed,
                &obs,
            );
            eprintln!(
                "[{}] scanned {} h2 sites in {:.1}s",
                spec.name,
                records.len(),
                started.elapsed().as_secs_f64()
            );
            if !options.faults.is_none() {
                println!(
                    "[{} faults={} seed={}]\n{}",
                    spec.name,
                    options.faults.name,
                    options.seed,
                    scan::fault_summary(&records)
                );
            }
            records
        } else {
            Vec::new()
        };

        if matches!(command, "adoption" | "all") {
            println!("{}", wild::adoption(&records, &population));
        }
        if matches!(command, "table4" | "all") {
            println!("{}", wild::table4(&records, &population));
        }
        if matches!(command, "table5" | "all") {
            println!("{}", wild::table5(&records, &population));
        }
        if matches!(command, "table6" | "all") {
            println!("{}", wild::table6(&records, &population));
        }
        if matches!(command, "table7" | "all") {
            println!("{}", wild::table7(&records, &population));
        }
        if matches!(command, "fig2" | "all") {
            println!("{}", wild::fig2(&records, &population));
        }
        if matches!(command, "flowcontrol" | "all") {
            println!("{}", wild::flow_control(&records, &population));
        }
        if matches!(command, "priority" | "all") {
            println!("{}", wild::priority(&records, &population));
        }
        if matches!(command, "push" | "all") {
            println!("{}", wild::push_adoption(&records, &population));
        }
        if matches!(command, "fig4" | "fig5" | "all") {
            println!("{}", wild::hpack_figure(&records, &population));
        }
        if matches!(command, "fig3" | "all") {
            println!("{}", figures::fig3(&population, options.loads));
        }
        if matches!(command, "fig6" | "all") {
            println!("{}", figures::fig6(&population, 60, 10));
        }
    }

    // The metrics table is the last stdout section, below the marker, so
    // consumers can strip it and diff the experiment output byte-for-byte
    // against a --metrics-less run.
    if let Some(snapshot) = obs.snapshot() {
        println!("{}", h2obs::render_table(&snapshot));
        let path = "OBS_campaign.json";
        match std::fs::write(path, h2obs::render_json(&snapshot)) {
            Ok(()) => eprintln!("[obs] wrote {path}"),
            Err(err) => eprintln!("[obs] failed to write {path}: {err}"),
        }
    }
}
