//! Small statistics helpers for the table/figure generators.

/// Mean of a sample (NaN when empty).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// The `q`-quantile (0..=1) by nearest-rank on a sorted copy.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Fraction of samples `<= x`.
pub fn cdf_at(samples: &[f64], x: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().filter(|&&v| v <= x).count() as f64 / samples.len() as f64
}

/// Renders a CDF as `(x, F(x))` pairs at the given x ticks.
pub fn cdf_points(samples: &[f64], ticks: &[f64]) -> Vec<(f64, f64)> {
    ticks.iter().map(|&x| (x, cdf_at(samples, x))).collect()
}

/// An ASCII sparkline of a CDF over log-spaced ticks, for terminal output.
pub fn spark_cdf(samples: &[f64], ticks: &[f64]) -> String {
    const LEVELS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    cdf_points(samples, ticks)
        .into_iter()
        .map(|(_, f)| {
            let idx = (f * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// Largest-remainder (Hamilton) apportionment: distributes `target`
/// units across `counts` proportionally, flooring each quota and handing
/// the leftover units to the rows with the largest fractional parts
/// (ties broken by lower index). The result always sums exactly to
/// `target` — the property independent per-row rounding lacks, and the
/// reason upscaled table columns now agree with their upscaled totals
/// at every scale. All integer math; no float drift.
///
/// With all-zero `counts` there is nothing to proportion against; the
/// result is all zeros (callers only hit this with `target == 0`).
pub fn apportion(counts: &[u64], target: u64) -> Vec<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return vec![0; counts.len()];
    }
    let (total, target128) = (u128::from(total), u128::from(target));
    let mut floors: Vec<u64> = Vec::with_capacity(counts.len());
    let mut fractions: Vec<(u128, usize)> = Vec::with_capacity(counts.len());
    for (i, &count) in counts.iter().enumerate() {
        let numerator = u128::from(count) * target128;
        floors.push((numerator / total) as u64);
        fractions.push((numerator % total, i));
    }
    let assigned: u64 = floors.iter().sum();
    let mut leftover = target - assigned;
    fractions.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in &fractions {
        if leftover == 0 {
            break;
        }
        floors[i] += 1;
        leftover -= 1;
    }
    floors
}

/// Formats a count with thousands separators, like the paper's tables.
pub fn fmt_count(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_mean() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&samples), 3.0);
        assert_eq!(quantile(&samples, 0.0), 1.0);
        assert_eq!(quantile(&samples, 0.5), 3.0);
        assert_eq!(quantile(&samples, 1.0), 5.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let samples = [10.0, 20.0, 20.0, 40.0];
        assert_eq!(cdf_at(&samples, 5.0), 0.0);
        assert_eq!(cdf_at(&samples, 20.0), 0.75);
        assert_eq!(cdf_at(&samples, 100.0), 1.0);
    }

    #[test]
    fn count_formatting_matches_paper_style() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(44_390), "44,390");
        assert_eq!(fmt_count(1_000_000), "1,000,000");
    }

    #[test]
    fn empty_samples_yield_nan() {
        assert!(mean(&[]).is_nan());
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn apportion_sums_exactly_to_target() {
        for (counts, target) in [
            (vec![1u64, 1, 1], 10u64),
            (vec![3, 3, 3], 10),
            (vec![1, 2, 3, 4], 1),
            (vec![0, 7, 0, 3], 1_000_003),
            (vec![44, 390], 44_390),
            (
                vec![12_637, 11_293, 9_928, 2_535, 1_197, 1_128, 0, 5_672],
                44_390,
            ),
        ] {
            let shares = apportion(&counts, target);
            assert_eq!(shares.iter().sum::<u64>(), target, "counts {counts:?}");
            assert_eq!(shares.len(), counts.len());
            // Zero-count rows never receive units.
            for (share, count) in shares.iter().zip(&counts) {
                assert!(*count > 0 || *share == 0);
            }
        }
    }

    #[test]
    fn apportion_is_exact_when_target_divides_evenly() {
        assert_eq!(apportion(&[10, 20, 30], 120), vec![20, 40, 60]);
        assert_eq!(apportion(&[5, 5], 10), vec![5, 5]);
    }

    #[test]
    fn apportion_breaks_fraction_ties_by_index() {
        // Two rows with identical fractional parts: the earlier row gets
        // the spare unit, deterministically.
        assert_eq!(apportion(&[1, 1], 3), vec![2, 1]);
    }

    #[test]
    fn apportion_handles_degenerate_inputs() {
        assert_eq!(apportion(&[], 5), Vec::<u64>::new());
        assert_eq!(apportion(&[0, 0], 0), vec![0, 0]);
        assert_eq!(apportion(&[7], 3), vec![3]);
    }
}
