//! Small statistics helpers for the table/figure generators.

/// Mean of a sample (NaN when empty).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// The `q`-quantile (0..=1) by nearest-rank on a sorted copy.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Fraction of samples `<= x`.
pub fn cdf_at(samples: &[f64], x: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().filter(|&&v| v <= x).count() as f64 / samples.len() as f64
}

/// Renders a CDF as `(x, F(x))` pairs at the given x ticks.
pub fn cdf_points(samples: &[f64], ticks: &[f64]) -> Vec<(f64, f64)> {
    ticks.iter().map(|&x| (x, cdf_at(samples, x))).collect()
}

/// An ASCII sparkline of a CDF over log-spaced ticks, for terminal output.
pub fn spark_cdf(samples: &[f64], ticks: &[f64]) -> String {
    const LEVELS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    cdf_points(samples, ticks)
        .into_iter()
        .map(|(_, f)| {
            let idx = (f * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// Formats a count with thousands separators, like the paper's tables.
pub fn fmt_count(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_mean() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&samples), 3.0);
        assert_eq!(quantile(&samples, 0.0), 1.0);
        assert_eq!(quantile(&samples, 0.5), 3.0);
        assert_eq!(quantile(&samples, 1.0), 5.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let samples = [10.0, 20.0, 20.0, 40.0];
        assert_eq!(cdf_at(&samples, 5.0), 0.0);
        assert_eq!(cdf_at(&samples, 20.0), 0.75);
        assert_eq!(cdf_at(&samples, 100.0), 1.0);
    }

    #[test]
    fn count_formatting_matches_paper_style() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(44_390), "44,390");
        assert_eq!(fmt_count(1_000_000), "1,000,000");
    }

    #[test]
    fn empty_samples_yield_nan() {
        assert!(mean(&[]).is_nan());
        assert!(quantile(&[], 0.5).is_nan());
    }
}
