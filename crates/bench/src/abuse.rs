//! Mixed benign+attack abuse campaigns (`repro abuse`): the §VI
//! robustness experiment.
//!
//! A synthetic population of connections — honest page loads, honest
//! page loads over impaired links, and seeded attack engagements drawn
//! from [`h2attack::vectors`] — runs against the seven testbed profiles
//! in virtual time. Every connection's class and target derive purely
//! from `(campaign seed, site index)`, work is distributed by chunked
//! claiming into index-addressed slots, and traces flush as per-site
//! batches, so the whole report is byte-identical at any thread count
//! (the same contract as [`crate::scan`]).
//!
//! The output has three sections: the per-profile robustness matrix
//! (Table III methodology extended to abuse hardening), the campaign
//! mix with per-vector defense counts, and the detector's confusion
//! matrix against ground truth.

use std::fmt::Write as _;

use crossbeam::thread;

use h2attack::{AttackReport, AttackVector, ConfusionMatrix, Detector, RobustnessRow};
use h2fault::{splitmix64, ImpairmentSpec};
use h2obs::{Obs, SiteTrace};
use h2scope::{ProbeConn, Reaction, Target};
use h2server::{ServerProfile, SiteSpec};
use h2wire::Settings;
use netsim::time::SimDuration;

use crate::sched::{Slots, WorkQueue};

/// Campaign size at `--scale 1`: 60 connections per testbed profile.
const BASE_SITES: u64 = 420;
/// Smallest population that still mixes every class against every
/// profile (so `--scale 0.01` smoke runs stay meaningful).
const MIN_SITES: u64 = 42;
/// Honest clients abandon a fetch after this long, which also bounds
/// every benign trace far below the detector's stall threshold.
const BENIGN_PATIENCE_SECS: u64 = 5;

/// Configuration for one abuse campaign.
#[derive(Debug, Clone)]
pub struct AbuseOptions {
    /// Attack vectors in play (rotated over deterministically).
    pub vectors: Vec<AttackVector>,
    /// Benign parts of the traffic mix (default 3).
    pub benign_share: u64,
    /// Attack parts of the traffic mix (default 1).
    pub attack_share: u64,
    /// Campaign seed: same seed, same campaign, at any thread count.
    pub seed: u64,
    /// Population scale factor (1.0 = 420 connections).
    pub scale: f64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for AbuseOptions {
    fn default() -> AbuseOptions {
        AbuseOptions {
            vectors: AttackVector::ALL.to_vec(),
            benign_share: 3,
            attack_share: 1,
            seed: 0,
            scale: 1.0,
            threads: 4,
        }
    }
}

impl AbuseOptions {
    fn site_count(&self) -> u64 {
        let scaled = (BASE_SITES as f64 * self.scale).round() as u64;
        scaled.max(MIN_SITES)
    }
}

/// Ground-truth class of one campaign connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// An honest client on a clean link.
    Benign,
    /// An honest client on a badly impaired link — the class a naive
    /// rate/latency detector misflags.
    BenignDegraded,
    /// A seeded attack engagement.
    Attack(AttackVector),
}

/// One finished campaign connection.
#[derive(Debug, Clone)]
pub struct SiteOutcome {
    /// Site index within the campaign.
    pub index: u64,
    /// Profile the connection ran against.
    pub server: String,
    /// Ground truth.
    pub class: SiteClass,
    /// The attack's unified report (attack sites only).
    pub report: Option<AttackReport>,
}

/// A completed campaign plus everything `repro abuse` prints.
#[derive(Debug, Clone)]
pub struct AbuseCampaign {
    /// Per-connection outcomes in index order.
    pub outcomes: Vec<SiteOutcome>,
    /// Detector verdicts in index order (`None` = benign).
    pub verdicts: Vec<Option<AttackVector>>,
    /// Detector evaluation against ground truth.
    pub confusion: ConfusionMatrix,
    /// The per-profile robustness matrix.
    pub robustness: Vec<RobustnessRow>,
}

/// The class of site `i` — a pure function of `(seed, i, mix, vectors)`.
pub fn site_class(options: &AbuseOptions, i: u64) -> SiteClass {
    let r = splitmix64(options.seed ^ splitmix64(i.wrapping_add(0xab05e)));
    let parts = (options.benign_share + options.attack_share).max(1);
    if r % parts < options.benign_share {
        // Every third benign connection rides a degraded link.
        if splitmix64(r).is_multiple_of(3) {
            SiteClass::BenignDegraded
        } else {
            SiteClass::Benign
        }
    } else {
        let pick = splitmix64(r ^ 0xa77) as usize % options.vectors.len().max(1);
        SiteClass::Attack(options.vectors[pick])
    }
}

/// The degraded-link impairment for benign-degraded sites: a long-haul
/// link composed with a congested last mile (two independently plausible
/// impairments layered via [`ImpairmentSpec::compose`]).
fn degraded_impairment() -> ImpairmentSpec {
    let long_haul = ImpairmentSpec {
        extra_delay: SimDuration::from_millis(80),
        extra_jitter: SimDuration::from_millis(15),
        extra_loss: 0.02,
        ..ImpairmentSpec::default()
    };
    let congested = ImpairmentSpec {
        extra_loss: 0.03,
        bandwidth_cap_bps: Some(2_000_000),
        ..ImpairmentSpec::default()
    };
    long_haul.compose(&congested)
}

/// Builds site `i`'s target: profile cycles through the testbed plus the
/// RFC reference, the seed mixes the campaign seed with the index, and
/// benign-degraded sites get the composed impairment.
fn site_target(profiles: &[ServerProfile], options: &AbuseOptions, i: u64, obs: &Obs) -> Target {
    let profile = profiles[(i % profiles.len() as u64) as usize].clone();
    let mut target = Target::testbed(profile, SiteSpec::benchmark());
    target.seed ^= splitmix64(options.seed ^ i);
    target.obs = obs.clone();
    target
}

/// Runs one honest page load: establish, fetch the page and two assets,
/// abandon politely at the patience deadline.
fn benign_load(target: &mut Target, conn_seed: u64, degraded: bool) {
    target.patience = Some(SimDuration::from_secs(BENIGN_PATIENCE_SECS));
    if degraded {
        let impairment = degraded_impairment();
        target.link = impairment.apply(target.link);
        target.pipe_faults = impairment.pipe_faults();
    }
    let mut conn = ProbeConn::establish(target, Settings::new(), conn_seed);
    conn.exchange();
    for (stream, path) in [(1, "/"), (3, "/style.css"), (5, "/app.js")] {
        if conn.is_dead() {
            break;
        }
        let _ = conn.fetch(stream, path);
    }
}

/// Runs site `i` end to end and returns its outcome. Pure in
/// `(options, i)` — the determinism contract of the whole campaign.
fn run_site(profiles: &[ServerProfile], options: &AbuseOptions, i: u64, obs: &Obs) -> SiteOutcome {
    let site_obs = obs.for_site(i);
    let class = site_class(options, i);
    let mut target = site_target(profiles, options, i, &site_obs);
    let server = target.profile.name.clone();
    let conn_seed = splitmix64(options.seed ^ splitmix64(i ^ 0xc0117));
    let report = match class {
        SiteClass::Benign => {
            benign_load(&mut target, conn_seed, false);
            None
        }
        SiteClass::BenignDegraded => {
            benign_load(&mut target, conn_seed, true);
            None
        }
        SiteClass::Attack(vector) => Some(h2attack::run(vector, &target, conn_seed)),
    };
    site_obs.finish_site();
    SiteOutcome {
        index: i,
        server,
        class,
        report,
    }
}

/// Runs the whole campaign: the mixed population, the detector pass and
/// the robustness matrix. Byte-identical at any `threads`.
pub fn run_campaign(options: &AbuseOptions) -> AbuseCampaign {
    let threads = options.threads.max(1);
    let total = options.site_count();
    let mut profiles = ServerProfile::testbed();
    profiles.push(ServerProfile::rfc7540());
    // Trace every site: the detector consumes the frame-level traces.
    let obs = Obs::campaign(total);
    let queue = WorkQueue::new(total, threads);
    let slots = Slots::new(total as usize);
    thread::scope(|scope| {
        for _ in 0..threads {
            let obs = obs.clone();
            let (queue, slots, profiles) = (&queue, &slots, &profiles);
            scope.spawn(move |_| {
                while let Some(range) = queue.claim() {
                    for i in range {
                        slots.put(i as usize, run_site(profiles, options, i, &obs));
                    }
                }
            });
        }
    })
    .expect("abuse campaign workers do not panic");
    let outcomes = slots.into_vec();

    let snapshot = obs.snapshot().expect("campaign obs snapshots");
    let detector = Detector::default();
    let mut confusion = ConfusionMatrix::default();
    let mut verdicts = Vec::with_capacity(outcomes.len());
    let mut traces = snapshot.traces.iter().peekable();
    for outcome in &outcomes {
        let trace: Option<&SiteTrace> = match traces.peek() {
            Some(t) if t.site == outcome.index => traces.next(),
            _ => None,
        };
        let verdict = trace.and_then(|t| detector.classify(t));
        let truth = match outcome.class {
            SiteClass::Attack(v) => Some(v),
            _ => None,
        };
        confusion.record(truth, verdict);
        verdicts.push(verdict);
    }

    AbuseCampaign {
        outcomes,
        verdicts,
        confusion,
        robustness: h2attack::robustness_matrix(),
    }
}

fn reaction_cell(reaction: Reaction) -> &'static str {
    match reaction {
        Reaction::Ignored => "-",
        Reaction::RstStream => "RST_STREAM",
        Reaction::Goaway => "GOAWAY",
        Reaction::GoawayWithDebug => "GOAWAY+debug",
    }
}

/// Renders the §V-style robustness matrix: one row per profile, one
/// column per abuse probe, the measured reaction in each cell.
pub fn render_robustness(rows: &[RobustnessRow]) -> String {
    let mut out = String::new();
    out.push_str("Robustness matrix (reaction when the abuse bound is crossed)\n");
    let _ = writeln!(
        out,
        "  {:<12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "Server", "rst-rate", "settings", "continuation", "stall", "header-list", "defenses"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "  {:<12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}/5",
            row.server,
            reaction_cell(row.report.rst_rate),
            reaction_cell(row.report.settings_rate),
            reaction_cell(row.report.continuation_bound),
            reaction_cell(row.report.stalled_stream),
            reaction_cell(row.report.header_list_bound),
            row.defenses(),
        );
    }
    out
}

/// Renders the campaign mix and per-vector attack/defense counts.
pub fn render_mix(campaign: &AbuseCampaign) -> String {
    let mut out = String::new();
    let benign = campaign
        .outcomes
        .iter()
        .filter(|o| o.class == SiteClass::Benign)
        .count();
    let degraded = campaign
        .outcomes
        .iter()
        .filter(|o| o.class == SiteClass::BenignDegraded)
        .count();
    let attacked = campaign.outcomes.len() - benign - degraded;
    out.push_str("Campaign mix\n");
    let _ = writeln!(out, "  connections        {}", campaign.outcomes.len());
    let _ = writeln!(out, "  benign             {benign}");
    let _ = writeln!(out, "  benign (degraded)  {degraded}");
    let _ = writeln!(out, "  attacked           {attacked}\n");
    out.push_str("Attacks by vector (defended = server pushed back)\n");
    for vector in AttackVector::ALL {
        let runs: Vec<&AttackReport> = campaign
            .outcomes
            .iter()
            .filter_map(|o| o.report.as_ref())
            .filter(|r| r.vector == vector)
            .collect();
        if runs.is_empty() {
            continue;
        }
        let defended = runs.iter().filter(|r| r.defended).count();
        let max_cost = runs.iter().map(|r| r.server_cost).max().unwrap_or(0);
        let unit = runs[0].cost_unit;
        let _ = writeln!(
            out,
            "  {:<18} {:>4} runs  {:>4} defended  worst cost {max_cost} {unit}",
            vector.name(),
            runs.len(),
            defended,
        );
    }
    out
}

/// Renders the detector's confusion matrix and headline scores.
pub fn render_confusion(campaign: &AbuseCampaign) -> String {
    let m = &campaign.confusion;
    let mut out = String::new();
    out.push_str("Detector confusion matrix (positive = attacked)\n");
    let _ = writeln!(out, "  {:<22} {:>10} {:>10}", "", "flagged", "passed");
    let _ = writeln!(
        out,
        "  {:<22} {:>10} {:>10}",
        "attacked", m.true_positives, m.false_negatives
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>10} {:>10}",
        "benign", m.false_positives, m.true_negatives
    );
    let _ = writeln!(out, "  precision          {:.4}", m.precision());
    let _ = writeln!(out, "  recall             {:.4}", m.recall());
    let _ = writeln!(out, "  vector label acc.  {:.4}", m.label_accuracy());
    out
}

/// The full stdout report, in fixed section order.
pub fn render_report(campaign: &AbuseCampaign) -> String {
    format!(
        "{}\n{}\n{}",
        render_robustness(&campaign.robustness),
        render_mix(campaign),
        render_confusion(campaign)
    )
}

/// Renders the machine-readable `ABUSE_campaign.json` document
/// (schema `h2attack-v1`). Key order is fixed and every value derives
/// from index-ordered data, so the bytes match at any thread count.
pub fn render_json(options: &AbuseOptions, campaign: &AbuseCampaign) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"h2attack-v1\",\n");
    let _ = writeln!(out, "  \"seed\": {},", options.seed);
    let _ = writeln!(out, "  \"connections\": {},", campaign.outcomes.len());
    let vectors: Vec<String> = options
        .vectors
        .iter()
        .map(|v| format!("\"{}\"", v.name()))
        .collect();
    let _ = writeln!(out, "  \"vectors\": [{}],", vectors.join(","));
    let _ = writeln!(
        out,
        "  \"mix\": {{\"benign\":{},\"attack\":{}}},",
        options.benign_share, options.attack_share
    );
    out.push_str("  \"robustness\": [\n");
    for (i, row) in campaign.robustness.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"server\":\"{}\",\"rst_rate\":\"{}\",\"settings_rate\":\"{}\",\"continuation\":\"{}\",\"stall\":\"{}\",\"header_list\":\"{}\",\"defenses\":{}}}",
            row.server,
            row.report.rst_rate,
            row.report.settings_rate,
            row.report.continuation_bound,
            row.report.stalled_stream,
            row.report.header_list_bound,
            row.defenses(),
        );
        out.push_str(if i + 1 < campaign.robustness.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    let m = &campaign.confusion;
    let _ = writeln!(
        out,
        "  \"confusion\": {{\"tp\":{},\"fp\":{},\"tn\":{},\"fn\":{},\"labels_correct\":{}}},",
        m.true_positives,
        m.false_positives,
        m.true_negatives,
        m.false_negatives,
        m.vector_labels_correct
    );
    let _ = writeln!(out, "  \"precision\": {:.6},", m.precision());
    let _ = writeln!(out, "  \"recall\": {:.6},", m.recall());
    let _ = writeln!(out, "  \"label_accuracy\": {:.6}", m.label_accuracy());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_options(threads: usize) -> AbuseOptions {
        AbuseOptions {
            scale: 0.01,
            threads,
            ..AbuseOptions::default()
        }
    }

    #[test]
    fn campaign_report_is_byte_identical_across_thread_counts() {
        let render = |threads: usize| {
            let options = smoke_options(threads);
            let campaign = run_campaign(&options);
            (render_report(&campaign), render_json(&options, &campaign))
        };
        let (report1, json1) = render(1);
        let (report4, json4) = render(4);
        let (report8, json8) = render(8);
        assert_eq!(report1, report4, "1 vs 4 threads");
        assert_eq!(report4, report8, "4 vs 8 threads");
        assert_eq!(json1, json4);
        assert_eq!(json4, json8);
    }

    #[test]
    fn detector_meets_the_pinned_precision_and_recall_floor() {
        // The acceptance fixture: seed 0, default mix, every vector.
        let options = smoke_options(4);
        let campaign = run_campaign(&options);
        let m = &campaign.confusion;
        assert!(
            m.true_positives + m.false_negatives > 0,
            "fixture must contain attacks"
        );
        assert!(m.true_negatives + m.false_positives > 0);
        assert!(
            m.precision() >= 0.95,
            "precision {:.4} below floor: {m:?}",
            m.precision()
        );
        assert!(
            m.recall() >= 0.95,
            "recall {:.4} below floor: {m:?}",
            m.recall()
        );
        assert!(m.label_accuracy() >= 0.95, "{m:?}");
    }

    #[test]
    fn mix_honors_the_requested_shares_and_vector_filter() {
        let options = AbuseOptions {
            vectors: vec![AttackVector::RapidReset, AttackVector::SettingsFlood],
            benign_share: 1,
            attack_share: 1,
            scale: 0.1,
            threads: 2,
            ..AbuseOptions::default()
        };
        let campaign = run_campaign(&options);
        let attacked = campaign
            .outcomes
            .iter()
            .filter(|o| matches!(o.class, SiteClass::Attack(_)))
            .count();
        let total = campaign.outcomes.len();
        // A 1:1 mix: the attack share lands within a loose band.
        assert!(
            attacked * 4 > total && attacked * 4 < total * 3,
            "{attacked}/{total}"
        );
        for outcome in &campaign.outcomes {
            if let SiteClass::Attack(v) = outcome.class {
                assert!(options.vectors.contains(&v), "{v:?} not requested");
            }
        }
    }

    #[test]
    fn degraded_benign_links_are_not_misflagged() {
        let options = smoke_options(4);
        let campaign = run_campaign(&options);
        let mut saw_degraded = false;
        for (outcome, verdict) in campaign.outcomes.iter().zip(&campaign.verdicts) {
            if outcome.class == SiteClass::BenignDegraded {
                saw_degraded = true;
                assert_eq!(*verdict, None, "site {} misflagged", outcome.index);
            }
        }
        assert!(saw_degraded, "fixture must include degraded benign sites");
    }

    #[test]
    fn different_seeds_draw_different_campaigns() {
        let a = run_campaign(&AbuseOptions {
            seed: 1,
            ..smoke_options(4)
        });
        let b = run_campaign(&AbuseOptions {
            seed: 2,
            ..smoke_options(4)
        });
        let classes = |c: &AbuseCampaign| c.outcomes.iter().map(|o| o.class).collect::<Vec<_>>();
        assert_ne!(classes(&a), classes(&b));
    }
}
